//! Overhead study: a miniature of the paper's Sect. 6.1 experiments, showing
//! how the relative overhead `|R*|/n` of the eager belief encoding depends
//! on annotation skew — runnable in seconds.
//!
//! ```text
//! cargo run --release --example overhead_study
//! ```

use beliefdb::gen::{generate_bdms, DepthDist, GeneratorConfig, Participation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1_000;
    println!("relative overhead |R*|/n for n = {n} annotations\n");
    println!(
        "{:<26} {:>7} {:>14} {:>9} {:>9}",
        "configuration", "worlds", "|R*| tuples", "|R*|/n", "theory"
    );
    println!("{}", "-".repeat(70));

    let configs: Vec<(&str, GeneratorConfig)> = vec![
        (
            "m=10  uniform d<=2",
            GeneratorConfig::new(10, n).with_depth(DepthDist::uniform_012()),
        ),
        (
            "m=10  Zipf    d<=2",
            GeneratorConfig::new(10, n)
                .with_depth(DepthDist::uniform_012())
                .with_participation(Participation::paper_zipf()),
        ),
        (
            "m=100 uniform d<=2",
            GeneratorConfig::new(100, n).with_depth(DepthDist::uniform_012()),
        ),
        (
            "m=100 Zipf    d<=2",
            GeneratorConfig::new(100, n)
                .with_depth(DepthDist::uniform_012())
                .with_participation(Participation::paper_zipf()),
        ),
        (
            "m=10  uniform shallow",
            GeneratorConfig::new(10, n).with_depth(DepthDist::skewed_shallow()),
        ),
        (
            "m=10  uniform depth-1",
            GeneratorConfig::new(10, n).with_depth(DepthDist::skewed_depth1()),
        ),
    ];

    for (label, cfg) in configs {
        let users = cfg.users;
        let max_d = cfg.depth.max_depth() as u32;
        let (bdms, report) = generate_bdms(&cfg)?;
        let stats = bdms.stats();
        // Sect. 5.4: the worst case is O(m^dmax).
        let bound = (users as f64).powi(max_d as i32);
        println!(
            "{:<26} {:>7} {:>14} {:>9.1} {:>9}",
            label,
            stats.worlds,
            stats.total_tuples,
            stats.relative_overhead(report.accepted),
            format!("<= {bound:.0}"),
        );
    }

    println!("\ntake-aways (matching the paper):");
    println!(" * more users + uniform participation  -> many belief worlds -> big overhead");
    println!(" * skewed (Zipf) participation          -> far fewer worlds   -> small overhead");
    println!(" * mostly depth-1 annotations           -> cheapest: little default-rule fan-out");
    println!(" * overhead never exceeds its O(m^dmax) bound");
    Ok(())
}
