//! NatureMapping: a collaborative curation workflow (the paper's motivating
//! application, Sect. 1–2) at a slightly larger scale.
//!
//! Volunteers report sightings; graduate students, technicians, and the
//! principal investigator annotate them with beliefs instead of waiting for
//! a single expert to curate every entry. The example walks through:
//! field reports → expert disagreement → higher-order explanations →
//! a curation review query → belief revision after discussion.
//!
//! ```text
//! cargo run --example naturemapping
//! ```

use beliefdb::core::ExternalSchema;
use beliefdb::sql::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = ExternalSchema::new()
        .with_relation("Sightings", &["sid", "uid", "species", "date", "location"])
        .with_relation("Comments", &["cid", "comment", "sid"]);
    let mut session = Session::new(schema)?;

    // The curation team and two volunteers.
    for name in [
        "Prof_Dvorak",
        "Grad_Gail",
        "Tech_Tom",
        "Vol_Vera",
        "Vol_Victor",
    ] {
        session.add_user(name)?;
    }

    println!("== 1. Volunteers file field reports (base data) ==\n");
    let reports = [
        "insert into Sightings values ('r1','Vol_Vera','pileated woodpecker','5-02-09','Cedar Grove')",
        "insert into Sightings values ('r2','Vol_Vera','gray wolf','5-02-09','North Ridge')",
        "insert into Sightings values ('r3','Vol_Victor','mountain beaver','5-03-09','Wet Meadow')",
        "insert into Sightings values ('r4','Vol_Victor','golden eagle','5-04-09','North Ridge')",
    ];
    for sql in reports {
        session.execute(sql)?;
        println!("  {sql}");
    }

    println!("\n== 2. Experts annotate: agreement, doubt, and alternatives ==\n");
    // Tom doubts the wolf (likely a coyote) and says why.
    session.execute(
        "insert into BELIEF 'Tech_Tom' Sightings values \
         ('r2','Vol_Vera','coyote','5-02-09','North Ridge')",
    )?;
    session.execute(
        "insert into BELIEF 'Tech_Tom' Comments values \
         ('n1','track size 6cm, too small for wolf','r2')",
    )?;
    // Gail doubts the golden eagle outright (no alternative: a pure negative).
    session.execute(
        "insert into BELIEF 'Grad_Gail' not Sightings values \
         ('r4','Vol_Victor','golden eagle','5-04-09','North Ridge')",
    )?;
    // The professor trusts Tom's coyote call and adds a higher-order
    // explanation: Vera believed the tracks were large.
    session.execute(
        "insert into BELIEF 'Prof_Dvorak' Sightings values \
         ('r2','Vol_Vera','coyote','5-02-09','North Ridge')",
    )?;
    session.execute(
        "insert into BELIEF 'Prof_Dvorak' BELIEF 'Vol_Vera' Comments values \
         ('n2','tracks looked large in mud','r2')",
    )?;
    println!("  (5 belief statements recorded)");

    println!("\n== 3. Curation review: where do experts disagree with reports? ==\n");
    let review = "select U.name, S.sid, S.species \
                  from Users as U, BELIEF U.uid Sightings as S, Sightings as R \
                  where S.sid = R.sid and S.species <> R.species";
    println!("> {review}");
    println!("{}\n", session.query(review)?);

    println!("== 4. What does each expert believe about r2? ==\n");
    for expert in ["Prof_Dvorak", "Grad_Gail", "Tech_Tom"] {
        let q = format!(
            "select S.species from Users as U, BELIEF U.uid Sightings as S \
             where U.name = '{expert}' and S.sid = 'r2'"
        );
        let result = session.query(&q)?;
        let species: Vec<String> = result.rows().iter().map(|r| r[0].to_string()).collect();
        println!("  {expert:<12} believes r2 is: {}", species.join(", "));
    }

    println!("\n== 5. Vera concedes after seeing the track note ==\n");
    // She updates her own belief world — the base report stays untouched,
    // which is the whole point of annotations.
    session.execute(
        "insert into BELIEF 'Vol_Vera' Sightings values \
         ('r2','Vol_Vera','coyote','5-02-09','North Ridge')",
    )?;
    let consensus = "select U.name from Users as U, BELIEF U.uid Sightings as S \
                     where S.sid = 'r2' and S.species = 'coyote'";
    println!("> {consensus}");
    println!("{}\n", session.query(consensus)?);

    println!("== 6. Gail retracts her doubt about the golden eagle ==\n");
    session.execute("delete from BELIEF 'Grad_Gail' not Sightings where sid = 'r4'")?;
    let gail = "select S.species from Users as U, BELIEF U.uid Sightings as S \
                where U.name = 'Grad_Gail' and S.sid = 'r4'";
    println!("> {gail}   -- the default belief returns");
    println!("{}\n", session.query(gail)?);

    let stats = session.bdms().stats();
    println!(
        "final state: {} explicit worlds over {} users, {} internal tuples",
        stats.worlds, stats.users, stats.total_tuples
    );
    Ok(())
}
