//! Quickstart: the paper's running example (Sect. 2) in BeliefSQL.
//!
//! Little Carol reports a bald eagle; Bob disagrees and explains why Alice's
//! crow was probably a raven. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use beliefdb::core::ExternalSchema;
use beliefdb::sql::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // External schema of the NatureMapping scenario (the Users relation is
    // managed by the BDMS itself).
    let schema = ExternalSchema::new()
        .with_relation("Sightings", &["sid", "uid", "species", "date", "location"])
        .with_relation("Comments", &["cid", "comment", "sid"]);
    let mut session = Session::new(schema)?;
    session.add_user("Alice")?;
    session.add_user("Bob")?;
    session.add_user("Carol")?;

    // The eight belief statements i1–i8 of the paper.
    let inserts = [
        // i1: Carol reports her sighting as base data.
        "insert into Sightings values ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
        // i2, i3: Bob does not believe either eagle alternative.
        "insert into BELIEF 'Bob' not Sightings values ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
        "insert into BELIEF 'Bob' not Sightings values ('s1','Carol','fish eagle','6-14-08','Lake Forest')",
        // i4, i5: Alice believes she saw a crow and comments on the feathers.
        "insert into BELIEF 'Alice' Sightings values ('s2','Alice','crow','6-14-08','Lake Placid')",
        "insert into BELIEF 'Alice' Comments values ('c1','found feathers','s2')",
        // i6: Bob believes Alice saw a raven.
        "insert into BELIEF 'Bob' Sightings values ('s2','Alice','raven','6-14-08','Lake Placid')",
        // i7: higher-order: Bob believes that ALICE believes the feathers
        //     were black — his explanation of her mistake.
        "insert into BELIEF 'Bob' BELIEF 'Alice' Comments values ('c2','black feathers','s2')",
        // i8: ... while he believes they were purple-black.
        "insert into BELIEF 'Bob' Comments values ('c2','purple-black feathers','s2')",
    ];
    for sql in inserts {
        println!("> {sql}");
        println!("{}\n", session.execute(sql)?);
    }

    // q1: sightings at Lake Placid that Bob believes.
    let q1 = "select S.sid, S.uid, S.species \
              from Users as U, BELIEF U.uid Sightings as S \
              where U.name = 'Bob' and S.location = 'Lake Placid'";
    println!("> {q1}");
    println!("{}\n", session.query(q1)?);

    // q2: entries on which users disagree with what Alice believes.
    let q2 = "select U2.name, S1.species, S2.species \
              from Users as U1, Users as U2, \
                   BELIEF U1.uid Sightings as S1, \
                   BELIEF U2.uid Sightings as S2 \
              where U1.name = 'Alice' and S1.sid = S2.sid \
                and S1.species <> S2.species";
    println!("> {q2}");
    println!("{}\n", session.query(q2)?);

    // The message-board assumption at work: Dora joins late and believes
    // everything stated — including that Bob disagrees with Carol.
    session.add_user("Dora")?;
    let q3 = "select S.species \
              from Users as U, BELIEF U.uid Sightings as S \
              where U.name = 'Dora'";
    println!("> {q3}   -- Dora's default beliefs");
    println!("{}\n", session.query(q3)?);

    // Internal representation sizes (Fig. 5's tables).
    let stats = session.bdms().stats();
    println!(
        "internal representation: {} tuples across {} tables, {} belief worlds",
        stats.total_tuples,
        stats.per_table.len(),
        stats.worlds,
    );
    for (table, rows) in &stats.per_table {
        println!("  {table:<18} {rows:>4} rows");
    }
    Ok(())
}
