//! An interactive BeliefSQL shell over the NatureMapping schema.
//!
//! ```text
//! cargo run --example shell
//! ```
//!
//! Meta-commands: `\user <name>` registers a user, `\stats` prints the
//! internal representation sizes, `\worlds` lists the belief worlds,
//! `\help`, `\quit`. Everything else is parsed as BeliefSQL.
//!
//! Example session:
//!
//! ```text
//! beliefdb> \user Alice
//! beliefdb> \user Bob
//! beliefdb> insert into Sightings values ('s1','Alice','crow','6-14-08','Lake Placid')
//! beliefdb> insert into BELIEF 'Bob' Sightings values ('s1','Alice','raven','6-14-08','Lake Placid')
//! beliefdb> select U.name, S.species from Users as U, BELIEF U.uid Sightings as S
//! ```

use beliefdb::core::ExternalSchema;
use beliefdb::sql::Session;
use std::io::{BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = ExternalSchema::new()
        .with_relation("Sightings", &["sid", "uid", "species", "date", "location"])
        .with_relation("Comments", &["cid", "comment", "sid"]);
    let mut session = Session::new(schema)?;

    println!("beliefdb shell — BeliefSQL over Sightings/Comments. \\help for help.");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("beliefdb> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("quit") | Some("q") => break,
                Some("help") => {
                    println!("  \\user <name>   register a user");
                    println!(
                        "  \\stats         internal representation sizes + plan-cache counters"
                    );
                    println!("  \\worlds        list belief worlds");
                    println!(
                        "  \\explain <q>   show the BCQ + Datalog translation + physical plans"
                    );
                    println!("  \\quit          exit");
                    println!("  anything else is BeliefSQL, e.g.:");
                    println!("    insert into BELIEF 'Bob' not Sightings values (...)");
                    println!(
                        "    select U.name, S.species from Users as U, BELIEF U.uid Sightings as S"
                    );
                    println!("    explain select S.species from BELIEF 'Bob' Sightings as S");
                }
                Some("user") => match parts.next() {
                    Some(name) => match session.add_user(name) {
                        Ok(id) => println!("registered user {name} (uid {id})"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("usage: \\user <name>"),
                },
                Some("stats") => {
                    let stats = session.bdms().stats();
                    println!(
                        "{} tuples, {} worlds, {} users",
                        stats.total_tuples, stats.worlds, stats.users
                    );
                    for (table, rows) in &stats.per_table {
                        println!("  {table:<20} {rows:>6}");
                    }
                    let cache = session.bdms().plan_cache_stats();
                    println!(
                        "plan cache: {} hits, {} misses ({:.0}% hit rate), \
                         {} cached program(s), {} embedded row(s)",
                        cache.hits,
                        cache.misses,
                        cache.hit_rate() * 100.0,
                        cache.entries,
                        cache.embedded_rows
                    );
                }
                Some("explain") => {
                    let rest: Vec<&str> = parts.collect();
                    match session.explain(&rest.join(" ")) {
                        Ok(text) => println!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Some("worlds") => {
                    for (wid, path) in session.bdms().internal().directory().iter() {
                        println!("  #{wid} {path}");
                    }
                }
                other => println!("unknown meta-command {other:?}; try \\help"),
            }
            continue;
        }
        // SELECTs stream: each row is printed the moment the executor
        // produces it (the streaming pipeline never collects the result),
        // with the column header and count as a footer. DML and EXPLAIN
        // go through the collecting path.
        if line
            .get(..6)
            .is_some_and(|h| h.eq_ignore_ascii_case("select"))
        {
            match session.query_streaming(line, |row| println!("{row}")) {
                Ok((columns, n)) => println!(
                    "({n} row{} of {})",
                    if n == 1 { "" } else { "s" },
                    columns.join(", ")
                ),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match session.execute(line) {
            Ok(result) => println!("{result}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
