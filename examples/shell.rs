//! An interactive BeliefSQL shell over the NatureMapping schema.
//!
//! ```text
//! cargo run --example shell
//! ```
//!
//! Meta-commands: `\user <name>` registers a user, `\stats` prints the
//! unified introspection view (sizes, plan cache, WAL, engine
//! counters), `\worlds` lists the belief worlds, `\profile <select>`
//! runs `EXPLAIN ANALYZE`, `\metrics` dumps the metrics registry,
//! `\statements` shows the top statement fingerprints by cumulative
//! time, `\slowlog` shows captured slow statements, `\open <dir>`
//! switches to a durable database (recovering it if it exists,
//! creating it otherwise), `\checkpoint` snapshots it, `\wal` prints
//! the WAL section of `\stats`, `\help`, `\quit`. Everything else is
//! parsed as BeliefSQL — including scans of the `sys.*` system catalog
//! (`sys.metrics`, `sys.statements`, `sys.tables`, `sys.plan_cache`,
//! `sys.slowlog`, `sys.wal`), which the introspection meta-commands
//! are thin renderers over.
//!
//! Example session:
//!
//! ```text
//! beliefdb> \user Alice
//! beliefdb> \user Bob
//! beliefdb> insert into Sightings values ('s1','Alice','crow','6-14-08','Lake Placid')
//! beliefdb> insert into BELIEF 'Bob' Sightings values ('s1','Alice','raven','6-14-08','Lake Placid')
//! beliefdb> select U.name, S.species from Users as U, BELIEF U.uid Sightings as S
//! ```

use beliefdb::core::ExternalSchema;
use beliefdb::sql::Session;
use beliefdb::storage::{Row, Value};
use std::io::{BufRead, Write};

fn naturemapping() -> ExternalSchema {
    ExternalSchema::new()
        .with_relation("Sightings", &["sid", "uid", "species", "date", "location"])
        .with_relation("Comments", &["cid", "comment", "sid"])
}

/// Parse a byte-size spec: `Some(None)` = unlimited (`off`/`unlimited`),
/// `Some(Some(n))` = n bytes (`k`/`m`/`g` suffixes), `None` = unparsable.
fn parse_bytes(spec: &str) -> Option<Option<usize>> {
    let spec = spec.trim().to_ascii_lowercase();
    if spec == "off" || spec == "unlimited" || spec == "none" {
        return Some(None);
    }
    let (digits, mult) = match spec.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match spec.as_bytes()[spec.len() - 1] {
                b'k' => 1usize << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            },
        ),
        None => (spec.as_str(), 1),
    };
    digits
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .map(Some)
}

/// Run a `sys.*` catalog scan and collect its rows; the introspection
/// meta-commands below are thin renderers over these queries, so they
/// show exactly what any client would get from the same SELECT.
fn sys_rows(session: &Session, sql: &str) -> Vec<Row> {
    match session.query(sql) {
        Ok(result) => result.rows().to_vec(),
        Err(e) => {
            println!("error: {e}");
            Vec::new()
        }
    }
}

/// A counter cell from a `sys.*` row.
fn as_u64(v: &Value) -> u64 {
    match v {
        Value::Int(i) => *i as u64,
        _ => 0,
    }
}

/// The WAL section of `\stats` (and the whole of its `\wal` alias),
/// rendered from `sys.wal` (empty for in-memory sessions).
fn print_wal(session: &Session) {
    match sys_rows(session, "select * from sys.wal").first() {
        Some(row) => {
            let v = row.values();
            println!(
                "wal: {} segment(s), {} frame(s), {} byte(s)",
                v[0], v[1], v[2]
            );
            println!(
                "     next lsn {}, snapshot covers < {}, {} checkpoint(s) this session",
                v[3], v[4], v[5]
            );
        }
        None => println!("in-memory session (use \\open <dir> for durability)"),
    }
}

/// Dump the metrics registry from a `sys.metrics` scan, plus the
/// query-latency histogram summary (a distribution, so it lives on the
/// snapshot API rather than in the counter relation). `nonzero_only`
/// hides untouched counters (the `\stats` view); `\metrics` shows all.
fn print_metrics(session: &Session, nonzero_only: bool) {
    for row in sys_rows(session, "select name, value from sys.metrics") {
        let v = row.values();
        if !nonzero_only || as_u64(&v[1]) > 0 {
            println!("  {:<24} {:>10}", v[0].to_string(), v[1].to_string());
        }
    }
    let snap = session.bdms().metrics();
    let n = snap.latency_count();
    if n > 0 {
        println!(
            "  query latency: n={n}, mean {:.2} ms, p50 {:.2} ms, p99 {:.2} ms",
            snap.latency_mean_nanos() as f64 / 1e6,
            snap.latency_quantile_nanos(0.50) as f64 / 1e6,
            snap.latency_quantile_nanos(0.99) as f64 / 1e6,
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new(naturemapping())?;

    println!("beliefdb shell — BeliefSQL over Sightings/Comments. \\help for help.");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("beliefdb> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("quit") | Some("q") => break,
                Some("help") => {
                    println!("  \\user <name>   register a user");
                    println!("  \\stats         unified introspection: representation sizes,");
                    println!("                 plan-cache counters, WAL state, engine counters");
                    println!("  \\worlds        list belief worlds");
                    println!(
                        "  \\explain <q>   show the BCQ + Datalog translation + physical plans"
                    );
                    println!("  \\lint <q>      static analysis: lint the SELECT's Datalog");
                    println!("                 translation without running it (safety, types,");
                    println!("                 provably-empty conditions) as [BDxxx] diagnostics");
                    println!("  \\profile <q>   EXPLAIN ANALYZE: run the SELECT and annotate each");
                    println!("                 plan operator with actual rows/chunks, kernel vs");
                    println!("                 fallback rows, spill bytes/partitions, and time");
                    println!("  \\metrics       dump the full metrics registry (all counters +");
                    println!("                 query-latency histogram); renders sys.metrics");
                    println!("  \\statements [n]");
                    println!("                 top n statement fingerprints by cumulative time");
                    println!("                 (default 10); renders sys.statements");
                    println!("  \\slowlog       show captured slow statements (spans + profiles);");
                    println!("                 renders sys.slowlog");
                    println!("  \\set memory <n[k|m|g]|off>");
                    println!("                 per-query memory budget for joins/sorts/");
                    println!("                 aggregates/distincts — past it they spill to");
                    println!("                 disk (grace hash join, external merge sort)");
                    println!("  \\set magic <on|off>");
                    println!("                 magic-sets / SIP rewrite: evaluate bound belief");
                    println!("                 queries demand-driven (on by default; off runs");
                    println!("                 the unrewritten Algorithm 1 rule stack)");
                    println!("  \\set verify <on|off>");
                    println!("                 plan verifier: re-check structural invariants");
                    println!("                 after every optimizer pass (on by default in");
                    println!("                 debug builds, off in release)");
                    println!("  \\set slowlog <ms|off>");
                    println!("                 capture statements slower than <ms> into the");
                    println!("                 slow-query log (with spans + full profile);");
                    println!("                 \\set alone shows the current settings");
                    println!("  \\open <dir>    switch to a durable database in <dir> (recover it");
                    println!("                 if present, create it with the NatureMapping");
                    println!("                 schema otherwise); mutations are WAL-logged");
                    println!("  \\checkpoint    snapshot the durable database, truncate the WAL");
                    println!("  \\wal           the WAL section of \\stats on its own");
                    println!("  \\quit (\\q)     exit");
                    println!("  system catalog: sys.metrics, sys.statements, sys.tables,");
                    println!("                 sys.plan_cache, sys.slowlog, sys.wal are ordinary");
                    println!("                 read-only relations — select from them directly,");
                    println!("                 e.g. select * from sys.statements");
                    println!("                      order by total_time_ns desc limit 5");
                    println!("  anything else is BeliefSQL, e.g.:");
                    println!("    insert into BELIEF 'Bob' not Sightings values (...)");
                    println!(
                        "    select U.name, S.species from Users as U, BELIEF U.uid Sightings as S"
                    );
                    println!(
                        "    explain analyze select S.species from BELIEF 'Bob' Sightings as S"
                    );
                }
                Some("user") => match parts.next() {
                    Some(name) => match session.add_user(name) {
                        Ok(id) => println!("registered user {name} (uid {id})"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("usage: \\user <name>"),
                },
                Some("stats") => {
                    let stats = session.bdms().stats();
                    println!(
                        "{} tuples, {} worlds, {} users",
                        stats.total_tuples, stats.worlds, stats.users
                    );
                    for row in sys_rows(&session, "select name, rows from sys.tables order by name")
                    {
                        let v = row.values();
                        println!("  {:<20} {:>6}", v[0].to_string(), v[1].to_string());
                    }
                    if let Some(row) = sys_rows(&session, "select * from sys.plan_cache").first() {
                        let v = row.values();
                        let (hits, misses) = (as_u64(&v[0]), as_u64(&v[1]));
                        let rate = if hits + misses == 0 {
                            0.0
                        } else {
                            hits as f64 / (hits + misses) as f64
                        };
                        println!(
                            "plan cache: {hits} hits, {misses} misses ({:.0}% hit rate), \
                             {} cached program(s), {} embedded row(s)",
                            rate * 100.0,
                            v[2],
                            v[3]
                        );
                    }
                    print_wal(&session);
                    println!("engine counters (nonzero; \\metrics for all):");
                    print_metrics(&session, true);
                }
                Some("set") => match (parts.next(), parts.next()) {
                    (None, _) => {
                        match session.memory_budget() {
                            Some(b) => println!("memory budget: {b} bytes per query"),
                            None => println!("memory budget: unlimited"),
                        }
                        println!(
                            "magic rewrite: {}",
                            if session.magic_enabled() { "on" } else { "off" }
                        );
                        match session.slowlog_threshold_ms() {
                            Some(ms) => println!("slowlog: capturing statements over {ms} ms"),
                            None => println!("slowlog: off"),
                        }
                        println!(
                            "plan verifier: {}",
                            if session.verify_enabled() {
                                "on"
                            } else {
                                "off"
                            }
                        );
                    }
                    (Some("memory"), Some(spec)) => match parse_bytes(spec) {
                        Some(None) => {
                            session.set_memory_budget(None);
                            println!("memory budget: unlimited");
                        }
                        Some(Some(bytes)) => {
                            session.set_memory_budget(Some(bytes));
                            println!(
                                "memory budget: {bytes} bytes per query \
                                 (materialization points spill past their share)"
                            );
                        }
                        None => println!("usage: \\set memory <n[k|m|g]|off>"),
                    },
                    (Some("magic"), Some(spec)) => match spec.to_ascii_lowercase().as_str() {
                        "on" => {
                            session.set_magic(true);
                            println!("magic rewrite: on");
                        }
                        "off" => {
                            session.set_magic(false);
                            println!("magic rewrite: off (unrewritten Algorithm 1 plans)");
                        }
                        _ => println!("usage: \\set magic <on|off>"),
                    },
                    (Some("verify"), Some(spec)) => match spec.to_ascii_lowercase().as_str() {
                        "on" => {
                            session.set_verify(true);
                            println!("plan verifier: on (every rewrite pass is re-checked)");
                        }
                        "off" => {
                            session.set_verify(false);
                            println!("plan verifier: off");
                        }
                        _ => println!("usage: \\set verify <on|off>"),
                    },
                    (Some("slowlog"), Some(spec)) => {
                        if spec.eq_ignore_ascii_case("off") {
                            session.set_slowlog_threshold_ms(None);
                            println!("slowlog: off");
                        } else {
                            match spec.parse::<u64>() {
                                Ok(ms) => {
                                    session.set_slowlog_threshold_ms(Some(ms));
                                    println!("slowlog: capturing statements over {ms} ms");
                                }
                                Err(_) => println!("usage: \\set slowlog <ms|off>"),
                            }
                        }
                    }
                    _ => println!(
                        "usage: \\set memory <n[k|m|g]|off> | \\set magic <on|off> | \
                         \\set verify <on|off> | \\set slowlog <ms|off>"
                    ),
                },
                Some("explain") => {
                    let rest: Vec<&str> = parts.collect();
                    match session.explain(&rest.join(" ")) {
                        Ok(text) => println!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Some("lint") => {
                    let rest: Vec<&str> = parts.collect();
                    match session.lint(&rest.join(" ")) {
                        Ok(diags) if diags.is_empty() => println!("no diagnostics"),
                        Ok(diags) => {
                            for d in &diags {
                                println!("{d}");
                            }
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                Some("profile") => {
                    let rest: Vec<&str> = parts.collect();
                    match session.explain_analyze(&rest.join(" ")) {
                        Ok(text) => println!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Some("metrics") => print_metrics(&session, false),
                Some("statements") => {
                    let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(10);
                    match session.query(&format!(
                        "select statement, calls, errors, mean_time_ns, total_time_ns, \
                         rows_returned from sys.statements order by total_time_ns desc limit {n}"
                    )) {
                        Ok(result) => println!("{result}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Some("slowlog") => {
                    match session.slowlog_threshold_ms() {
                        Some(ms) => println!("slowlog: capturing statements over {ms} ms"),
                        None => println!("slowlog: off (\\set slowlog <ms> to arm)"),
                    }
                    let rows = sys_rows(&session, "select * from sys.slowlog");
                    if rows.is_empty() {
                        println!("no captures");
                    }
                    // Full operator profiles stay on the trace API; the
                    // sys.slowlog relation carries statement/time/spans.
                    let entries = session.slowlog_entries();
                    for (i, row) in rows.iter().enumerate() {
                        let v = row.values();
                        println!("-- {:.2} ms  {}", as_u64(&v[1]) as f64 / 1e6, v[0]);
                        for span in v[2].to_string().split_whitespace() {
                            if let Some((name, ns)) = span.split_once('=') {
                                println!(
                                    "   {name:<12} {:.2} ms",
                                    ns.parse::<u64>().unwrap_or(0) as f64 / 1e6
                                );
                            }
                        }
                        if let Some(profile) = entries.get(i).and_then(|t| t.profile.as_ref()) {
                            print!("{profile}");
                        }
                    }
                }
                Some("worlds") => {
                    for (wid, path) in session.bdms().internal().directory().iter() {
                        println!("  #{wid} {path}");
                    }
                }
                Some("open") => match parts.next() {
                    Some(dir) => {
                        let path = std::path::Path::new(dir);
                        let result = if beliefdb::storage::PersistEngine::exists(path) {
                            Session::open(path)
                        } else {
                            Session::create(path, naturemapping())
                        };
                        match result {
                            Ok(mut s) => {
                                // Memory budget and magic toggle are
                                // session settings: they survive
                                // switching databases.
                                s.set_memory_budget(session.memory_budget());
                                s.set_magic(session.magic_enabled());
                                session = s;
                                let stats = session.bdms().stats();
                                println!(
                                    "opened {dir}: {} tuples, {} worlds, {} users",
                                    stats.total_tuples, stats.worlds, stats.users
                                );
                                if let Some(wal) = session.bdms().wal_stats() {
                                    if wal.truncated_on_open {
                                        println!("note: recovery truncated a torn WAL tail");
                                    }
                                }
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    None => println!("usage: \\open <dir>"),
                },
                Some("checkpoint") => match session.checkpoint() {
                    Ok(hwm) => println!("checkpoint written (covers LSN < {hwm})"),
                    Err(e) => println!("error: {e}"),
                },
                Some("wal") => print_wal(&session),
                other => println!("unknown meta-command {other:?}; try \\help"),
            }
            continue;
        }
        // SELECTs stream: each row is printed the moment the executor
        // produces it (the streaming pipeline never collects the result),
        // with the column header and count as a footer. DML and EXPLAIN
        // go through the collecting path.
        if line
            .get(..6)
            .is_some_and(|h| h.eq_ignore_ascii_case("select"))
        {
            match session.query_streaming(line, |row| println!("{row}")) {
                Ok((columns, n)) => println!(
                    "({n} row{} of {})",
                    if n == 1 { "" } else { "s" },
                    columns.join(", ")
                ),
                // sys.* scans and ORDER BY / LIMIT refuse the streaming
                // path; collect those instead and print the table.
                Err(e) if e.to_string().contains("use query()") => match session.query(line) {
                    Ok(result) => println!("{result}"),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match session.execute(line) {
            Ok(result) => println!("{result}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
