//! Conflict analysis: Example 18 of the paper — disputed empirical samples —
//! using the programmatic BCQ API rather than BeliefSQL.
//!
//! A lab classifies samples into categories with an origin; researchers
//! disagree. We run the paper's "disputed samples" query through both the
//! Algorithm 1 translation and the naive Def. 14 evaluator and show the
//! translated Datalog program.
//!
//! ```text
//! cargo run --example conflict_analysis
//! ```

use beliefdb::core::bcq::dsl::*;
use beliefdb::core::bcq::Bcq;
use beliefdb::core::{Bdms, BeliefPath, ExternalSchema, Sign};
use beliefdb::storage::row;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 18's relation R(sample, category, origin).
    let schema = ExternalSchema::new().with_relation("R", &["sample", "category", "origin"]);
    let mut bdms = Bdms::new(schema)?;
    let ana = bdms.add_user("Ana")?;
    let ben = bdms.add_user("Ben")?;
    let cleo = bdms.add_user("Cleo")?;
    let r = bdms.schema().relation_id("R")?;

    // Ana classifies three samples.
    for (s, c, o) in [
        ("a", "fungus", "soil"),
        ("b", "moss", "rock"),
        ("c", "lichen", "bark"),
    ] {
        bdms.insert(BeliefPath::user(ana), r, row![s, c, o], Sign::Pos)?;
    }
    // Ben re-classifies sample a's origin and disputes c entirely.
    bdms.insert(
        BeliefPath::user(ben),
        r,
        row!["a", "fungus", "bark"],
        Sign::Pos,
    )?;
    bdms.insert(
        BeliefPath::user(ben),
        r,
        row!["c", "lichen", "bark"],
        Sign::Neg,
    )?;
    // Cleo agrees with Ana on b (default) but thinks a is a different category.
    bdms.insert(
        BeliefPath::user(cleo),
        r,
        row!["a", "mold", "soil"],
        Sign::Pos,
    )?;

    // Example 18: disputed samples — q(x, y, z) :- [y]R+(x,u,v), [z]R−(x,u,v).
    let disputed = Bcq::builder(vec![qv("x"), qv("y"), qv("z")])
        .positive(vec![pv("y")], r, vec![qv("x"), qv("u"), qv("v")])
        .negative(vec![pv("z")], r, vec![qv("x"), qv("u"), qv("v")])
        .pred(qv("y"), beliefdb::storage::CmpOp::Ne, qv("z"))
        .build(bdms.schema())?;

    println!("query: {disputed}\n");

    // Show the Algorithm 1 translation (non-recursive Datalog).
    let translated = bdms.translate(&disputed)?;
    println!(
        "Algorithm 1 produces {} Datalog rules:",
        translated.program.rules.len()
    );
    for rule in &translated.program.rules {
        println!(
            "  {} :- {} body literals",
            rule.head.relation,
            rule.body.len()
        );
    }
    println!();

    // Run both evaluators and cross-check.
    let via_translation = bdms.query(&disputed)?;
    let via_naive = bdms.query_naive(&disputed)?;
    assert_eq!(via_translation, via_naive, "evaluators must agree");

    println!("disputed samples (sample, believer, disbeliever):");
    for row in &via_translation {
        let believer = bdms.user_name(beliefdb::core::UserId(row[1].as_int().unwrap() as u32))?;
        let disbeliever =
            bdms.user_name(beliefdb::core::UserId(row[2].as_int().unwrap() as u32))?;
        println!(
            "  sample {:<2} believed by {believer:<5} disputed by {disbeliever}",
            row[0]
        );
    }

    // Agreement analysis: pairs of users believing the same tuple.
    let agree = Bcq::builder(vec![qv("x"), qv("y"), qv("z")])
        .positive(vec![pv("y")], r, vec![qv("x"), qv("u"), qv("v")])
        .positive(vec![pv("z")], r, vec![qv("x"), qv("u"), qv("v")])
        .pred(qv("y"), beliefdb::storage::CmpOp::Lt, qv("z"))
        .build(bdms.schema())?;
    println!("\nagreements (sample, user, user):");
    for row in bdms.query(&agree)? {
        println!("  sample {:<2} users {} and {}", row[0], row[1], row[2]);
    }

    // Every sample's status per user, via entailment checks.
    println!("\nbelief matrix (+ believed, - impossible, ? open):");
    print!("{:<16}", "");
    for u in [ana, ben, cleo] {
        print!("{:>6}", bdms.user_name(u)?);
    }
    println!();
    for (s, c, o) in [
        ("a", "fungus", "soil"),
        ("a", "fungus", "bark"),
        ("a", "mold", "soil"),
        ("b", "moss", "rock"),
        ("c", "lichen", "bark"),
    ] {
        print!("{:<16}", format!("{s}/{c}/{o}"));
        for u in [ana, ben, cleo] {
            let t = beliefdb::core::GroundTuple::new(r, row![s, c, o]);
            let pos = bdms.entails(&beliefdb::core::BeliefStatement::positive(
                BeliefPath::user(u),
                t.clone(),
            ))?;
            let neg = bdms.entails(&beliefdb::core::BeliefStatement::negative(
                BeliefPath::user(u),
                t,
            ))?;
            print!(
                "{:>6}",
                if pos {
                    "+"
                } else if neg {
                    "-"
                } else {
                    "?"
                }
            );
        }
        println!();
    }
    Ok(())
}
