//! Offline stand-in for the parts of `proptest` this workspace's test
//! suites use. The build environment has no network access, so the real
//! crate cannot be fetched; this shim keeps the property-test sources
//! unchanged.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its generated inputs
//!   (via `Debug` in the panic message where available) but is not
//!   minimized;
//! * sampling is plain pseudo-random from a fixed per-test seed, so runs
//!   are deterministic;
//! * `prop_assume!` rejections retry the case, with a global retry cap.
//!
//! Supported surface: `Strategy` (`prop_map`, `prop_flat_map`,
//! `prop_filter_map`, `boxed`), integer-range and tuple strategies,
//! `Just`, `prop_oneof!` (weighted and unweighted), `collection::vec`,
//! `bool::ANY`, `ProptestConfig::with_cases`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!` macros.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies (re-exported so the macro can construct one).
pub type TestRng = StdRng;

/// Construct the deterministic RNG for one test run (used by `proptest!`;
/// a function so the expanded macro never names the `rand` shim, which the
/// calling crate does not depend on).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Why a sampled case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: resample, don't count the case.
    Reject(String),
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// `sample` returns `None` when the strategy (or a `prop_filter_map`
/// upstream) rejected the draw; the harness resamples.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter_map<U, F>(self, _whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.sample(rng)
    }
}

/// A type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.sample_dyn(rng)
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// `Strategy::prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<T::Value> {
        let mid = self.inner.sample(rng)?;
        (self.f)(mid).sample(rng)
    }
}

/// `Strategy::prop_filter_map` adapter.
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// Integer ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                if self.start >= self.end {
                    return None;
                }
                Some(rng.gen_range(self.start..self.end))
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                if lo > hi {
                    return None;
                }
                if lo == hi {
                    return Some(lo);
                }
                // Sample lo..hi, then fold the inclusive upper bound back in
                // with its fair share of the probability mass.
                let span = (hi - lo) as u64 + 1;
                if rng.gen_range(0u64..span) == 0 {
                    return Some(hi);
                }
                Some(rng.gen_range(lo..hi))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize, i64);

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Weighted union of boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one arm with weight > 0"
        );
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let mut pick = rng.gen_range(0u32..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size ranges accepted by [`vec`].
    pub trait SizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Vector of samples with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = if self.min == self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max + 1)
            };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                // Retry rejected elements a few times before giving up on
                // the whole draw.
                let mut element = None;
                for _ in 0..16 {
                    if let Some(v) = self.element.sample(rng) {
                        element = Some(v);
                        break;
                    }
                }
                out.push(element?);
            }
            Some(out)
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.gen::<bool>())
        }
    }
}

/// Deterministic per-test seed derived from the test's module path + name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    // Weighted arms: `w => strategy, ...`
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($arm))),+
        ])
    };
    // Unweighted arms.
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($arm))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// The harness macro. Parses an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items, and expands each to a looping test.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::__run_proptest_case!(config, $name, ($($pat in $strategy),+), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name ( $($pat in $strategy),+ ) $body )*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __run_proptest_case {
    ($config:expr, $name:ident, ($($pat:pat in $strategy:expr),+), $body:block) => {{
        let cases = $config.cases.max(1);
        let max_attempts = cases.saturating_mul(20).max(1000);
        let mut rng: $crate::TestRng = $crate::new_rng($crate::seed_for(concat!(
            module_path!(),
            "::",
            stringify!($name)
        )));
        let mut completed = 0u32;
        let mut attempts = 0u32;
        while completed < cases {
            attempts += 1;
            if attempts > max_attempts {
                panic!(
                    "proptest '{}' exhausted {} attempts with only {}/{} cases \
                     accepted (too many rejections)",
                    stringify!($name), max_attempts, completed, cases
                );
            }
            let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                $(
                    let $pat = match $crate::Strategy::sample(&($strategy), &mut rng) {
                        Some(v) => v,
                        None => {
                            return ::std::result::Result::Err(
                                $crate::TestCaseError::reject("filtered draw"),
                            )
                        }
                    };
                )+
                let __body_unit: () = $body;
                let _ = __body_unit;
                ::std::result::Result::Ok(())
            })();
            match result {
                Ok(()) => completed += 1,
                Err($crate::TestCaseError::Reject(_)) => continue,
                Err($crate::TestCaseError::Fail(msg)) => panic!(
                    "proptest '{}' failed after {} cases: {}",
                    stringify!($name),
                    completed,
                    msg
                ),
            }
        }
    }};
}
