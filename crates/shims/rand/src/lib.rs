//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. The workload generator only needs a seedable,
//! deterministic PRNG with uniform `f64`, integer-range, and Bernoulli
//! draws; this shim provides exactly that surface (`Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `rngs::StdRng`, `SeedableRng`).
//!
//! The generator core is xoshiro256++ seeded through splitmix64 — the same
//! construction `rand`'s small-rng family uses. Streams are deterministic
//! per seed but do **not** bit-match the real `StdRng` (ChaCha12); nothing
//! in this workspace depends on the exact stream, only on determinism and
//! uniformity.

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Uniform: Sized {
    fn from_u64(bits: u64) -> Self;
}

impl Uniform for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}

impl Uniform for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_u64(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for bool {
    fn from_u64(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait RangeSample: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_offset(base: Self, offset: u64) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_offset(base: Self, offset: u64) -> Self {
                base + offset as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize, i32, i64);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (`f64` in `[0,1)`, full-width integers).
    fn gen<T: Uniform>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Uniform sample in a half-open range `lo..hi`.
    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range called with an empty range");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span,
        // irrelevant for workload generation.
        let offset = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_offset(range.start, offset)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable PRNGs (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (API-compatible stand-in for
    /// `rand::rngs::StdRng` at the call sites this workspace has).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "observed {p}");
    }
}
