//! Offline stand-in for the parts of `criterion` this workspace's benches
//! use. The build environment has no network access, so the real crate
//! cannot be fetched; this shim keeps the bench sources unchanged and
//! still produces real wall-clock measurements.
//!
//! Semantics: each benchmark is warmed up once, then run for a fixed
//! number of timed samples (`sample_size`, default 10). The shim reports
//! min / median / mean per benchmark id on stdout. Like real criterion,
//! the produced binaries ignore `--test` invocations quickly so that
//! `cargo test` stays fast.

use std::time::{Duration, Instant};

/// Re-export-style black box (benches mostly use `std::hint::black_box`,
/// but the real crate exposes one too).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Throughput annotation (recorded, reported as elements/sec).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, repeating it `sample_size` times after one warm-up call.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let mut line = format!(
        "{label:<48} min {:>12?}  median {:>12?}  mean {:>12?}",
        min, median, mean
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            line.push_str(&format!("  ({:.0} elem/s)", n as f64 / secs));
        }
    }
    println!("{line}");
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, label),
            &b.samples,
            self.throughput,
        );
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report(&name.to_string(), &b.samples, None);
        self
    }

    /// Real criterion exits fast when the bench binary is invoked by
    /// `cargo test` (with `--test`); mirror that so test runs stay cheap.
    pub fn should_run() -> bool {
        !std::env::args().any(|a| a == "--test")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::Criterion::should_run() {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("q1").to_string(), "q1");
    }
}
