//! The Belief Database Management System facade.
//!
//! `Bdms` is the paper's prototype system: an external schema, a user
//! registry, statement-level updates (Algorithms 2–4) against the
//! materialized relational representation, and BCQ evaluation through the
//! Algorithm 1 translation. This is the type applications interact with;
//! `beliefdb-sql` layers the BeliefSQL surface syntax on top of it.

use crate::bcq::{self, Bcq};
use crate::canonical::CanonicalKripke;
use crate::database::BeliefDatabase;
use crate::error::{BeliefError, Result};
use crate::ids::{RelId, UserId};
use crate::internal::{InsertOutcome, InternalStore};
use crate::path::BeliefPath;
use crate::persist::{Durability, LogRecord, PersistOptions, SnapshotData, WalStats};
use crate::schema::ExternalSchema;
use crate::statement::{BeliefStatement, GroundTuple, Sign};
use crate::world::BeliefWorld;
use beliefdb_storage::persist::PersistEngine;
use beliefdb_storage::{
    metrics, Database, Metric, MetricsSnapshot, QueryTrace, Recorder, Row, SlowLog, StorageError,
};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Size report for the internal database (`|R*|` of Sect. 5.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeStats {
    /// Total internal tuples — the paper's size measure.
    pub total_tuples: usize,
    /// Per-table breakdown, sorted by table name.
    pub per_table: Vec<(String, usize)>,
    /// Number of belief worlds (states of the canonical structure).
    pub worlds: usize,
    /// Number of registered users.
    pub users: usize,
}

impl SizeStats {
    /// The relative overhead `|R*| / n` for a given annotation count.
    pub fn relative_overhead(&self, annotations: usize) -> f64 {
        if annotations == 0 {
            return 0.0;
        }
        self.total_tuples as f64 / annotations as f64
    }
}

/// Counters of the Datalog plan cache consulted by [`Bdms::query`] and
/// [`Bdms::query_streaming`], so cache behavior is observable without a
/// debugger (the shell's `\stats` prints these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Queries served from cached answer plans.
    pub hits: u64,
    /// Queries that had to plan from scratch.
    pub misses: u64,
    /// Programs currently cached.
    pub entries: usize,
    /// Rows pinned inside cached plans as `Values` leaves.
    pub embedded_rows: usize,
}

impl PlanCacheStats {
    /// Hits over total lookups (0.0 when nothing was looked up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A Belief Database Management System instance.
///
/// In-memory by default ([`Bdms::new`]); durable when opened over a
/// directory ([`Bdms::create`] / [`Bdms::open`]), in which case every
/// mutation is appended to a write-ahead log before it is applied and
/// snapshots bound recovery time (see `docs/persistence.md`).
pub struct Bdms {
    store: InternalStore,
    /// `Arc<Mutex<_>>` so the `sys.wal` virtual table can poll WAL
    /// counters at scan time; mutations lock it only briefly to append.
    persist: Option<Arc<Mutex<Durability>>>,
    /// Per-query memory budget (bytes) for the chunked executor's
    /// materialization points; past it they spill to disk (grace hash
    /// join, external merge sort, partitioned aggregate/distinct).
    /// `None` = unlimited.
    memory_budget: Option<usize>,
    /// Apply the magic-sets / sideways-information-passing rewrite to
    /// translated programs, so bound queries derive only demanded
    /// tuples. On by default; off evaluates the Algorithm 1 rule stack
    /// exactly as the pre-rewrite engine did.
    magic: bool,
    /// Slow-query ring buffer. Off by default (one relaxed load per
    /// query); when a threshold is set, queries run with profiling on
    /// and crossings are captured with their full span + profile trace.
    /// `Arc`-shared with the `sys.slowlog` virtual table.
    slowlog: Arc<SlowLog>,
}

impl std::fmt::Debug for Bdms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bdms")
            .field("users", &self.store.user_count())
            .field("worlds", &self.store.directory().len())
            .field("total_tuples", &self.store.total_tuples())
            .field("durable", &self.persist.is_some())
            .finish()
    }
}

impl Bdms {
    /// Create an in-memory BDMS over an external schema.
    pub fn new(schema: ExternalSchema) -> Result<Self> {
        let mut bdms = Bdms {
            store: InternalStore::new(schema)?,
            persist: None,
            memory_budget: None,
            magic: true,
            slowlog: Arc::new(SlowLog::new()),
        };
        bdms.register_system_tables();
        Ok(bdms)
    }

    /// Initialize a durable BDMS in `dir` (created if missing; must not
    /// already hold a belief database). An initial snapshot is written
    /// immediately, so [`Bdms::open`] always finds the schema.
    pub fn create(dir: impl AsRef<Path>, schema: ExternalSchema) -> Result<Self> {
        Bdms::create_with_options(dir, schema, PersistOptions::default())
    }

    /// [`Bdms::create`] with explicit WAL segment / auto-checkpoint
    /// tuning.
    pub fn create_with_options(
        dir: impl AsRef<Path>,
        schema: ExternalSchema,
        options: PersistOptions,
    ) -> Result<Self> {
        let store = InternalStore::new(schema)?;
        let engine = PersistEngine::create(dir.as_ref(), options)?;
        let mut durability = Durability { engine };
        durability.checkpoint(&store)?;
        let mut bdms = Bdms {
            store,
            persist: Some(Arc::new(Mutex::new(durability))),
            memory_budget: None,
            magic: true,
            slowlog: Arc::new(SlowLog::new()),
        };
        bdms.register_system_tables();
        Ok(bdms)
    }

    /// Recover a durable BDMS from `dir`: load the latest valid
    /// snapshot, then replay the WAL tail through the normal update
    /// algorithms. A torn or corrupt log tail is truncated, never
    /// applied; everything up to the last durable record is restored
    /// exactly (wids, tids, and `SizeStats` included).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Bdms::open_with_options(dir, PersistOptions::default())
    }

    /// [`Bdms::open`] with explicit WAL segment / auto-checkpoint
    /// tuning.
    pub fn open_with_options(dir: impl AsRef<Path>, options: PersistOptions) -> Result<Self> {
        let recovered = PersistEngine::open(dir.as_ref(), options)?;
        let snapshot = recovered.snapshot.ok_or_else(|| {
            BeliefError::Storage(StorageError::Corrupt(format!(
                "{}: no valid snapshot — not a belief database directory?",
                dir.as_ref().display()
            )))
        })?;
        let mut store = SnapshotData::decode(&snapshot)?.restore()?;
        for payload in &recovered.tail {
            LogRecord::decode(payload)?.apply(&mut store)?;
        }
        let mut bdms = Bdms {
            store,
            persist: Some(Arc::new(Mutex::new(Durability {
                engine: recovered.engine,
            }))),
            memory_budget: None,
            magic: true,
            slowlog: Arc::new(SlowLog::new()),
        };
        bdms.register_system_tables();
        // Fold a long replayed tail into a snapshot now, so the *next*
        // open is fast again.
        bdms.auto_checkpoint()?;
        Ok(bdms)
    }

    /// Register the `sys.*` virtual tables in the store's catalog so
    /// they are queryable as ordinary relations. Called by every
    /// constructor (including [`Bdms::open`], so a reopened database
    /// gets fresh providers bound to *this* instance's cache/WAL/slowlog
    /// handles). Providers snapshot their source at scan time; they hold
    /// no row storage and are never WAL or mutation targets.
    fn register_system_tables(&mut self) {
        use beliefdb_storage::obs::{
            metrics_table, plan_cache_table, slowlog_table, statements_table, tables_table,
            wal_table,
        };
        let cache = self.store.plan_cache_handle();
        let slowlog = Arc::clone(&self.slowlog);
        let persist = self.persist.clone();
        let db = self.store.database_mut();
        db.register_virtual(metrics_table());
        db.register_virtual(statements_table());
        db.register_virtual(tables_table());
        db.register_virtual(plan_cache_table(cache));
        db.register_virtual(slowlog_table(slowlog));
        db.register_virtual(wal_table(move || {
            persist
                .as_ref()
                .map(|d| d.lock().expect("durability poisoned").engine.stats())
        }));
    }

    /// Whether this BDMS writes through to a durable directory.
    pub fn is_durable(&self) -> bool {
        self.persist.is_some()
    }

    /// Bound the memory each query's materialization points (hash-join
    /// builds, aggregates, sorts, distincts) may hold; past the budget
    /// they spill to disk — grace hash join, external merge sort,
    /// partitioned aggregate/distinct (`beliefdb_storage::exec::spill`).
    /// `None` (the default) keeps everything in memory. Affects
    /// [`Bdms::query`], [`Bdms::query_streaming`], and EXPLAIN tags;
    /// the differential/naive paths are unaffected.
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.memory_budget = bytes;
    }

    /// The per-query memory budget in effect (`None` = unlimited).
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// Toggle the magic-sets / SIP rewrite (on by default). With it off,
    /// [`Bdms::query`], [`Bdms::query_streaming`], and
    /// [`Bdms::explain_query`] run the unrewritten Algorithm 1 rule
    /// stack — plans, EXPLAIN output, and cache entries are byte-for-byte
    /// those of the pre-rewrite engine. The differential/naive paths
    /// never rewrite regardless.
    pub fn set_magic(&mut self, on: bool) {
        self.magic = on;
    }

    /// Whether the magic-sets rewrite is applied to queries.
    pub fn magic_enabled(&self) -> bool {
        self.magic
    }

    /// The [`EvalOptions`](bcq::translate::EvalOptions) the query paths
    /// run under (memory budget + magic toggle).
    fn eval_options(&self) -> bcq::translate::EvalOptions {
        bcq::translate::EvalOptions {
            memory_budget: self.memory_budget,
            magic: self.magic,
        }
    }

    /// Write a snapshot of the current state and truncate the WAL it
    /// covers. Returns the snapshot's high-water mark (the LSN of the
    /// next record). Errors on an in-memory BDMS.
    pub fn checkpoint(&mut self) -> Result<u64> {
        match &self.persist {
            Some(durability) => durability
                .lock()
                .expect("durability poisoned")
                .checkpoint(&self.store),
            None => Err(BeliefError::Storage(StorageError::Io(
                "checkpoint: this BDMS has no durable directory".into(),
            ))),
        }
    }

    /// WAL/snapshot counters (`None` for an in-memory BDMS).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.persist
            .as_ref()
            .map(|d| d.lock().expect("durability poisoned").engine.stats())
    }

    /// Append a validated record before applying it.
    fn log(&mut self, rec: &LogRecord) -> Result<()> {
        if let Some(durability) = &self.persist {
            durability
                .lock()
                .expect("durability poisoned")
                .append(rec)?;
        }
        Ok(())
    }

    /// Checkpoint automatically once the live log passes the threshold.
    fn auto_checkpoint(&mut self) -> Result<()> {
        if let Some(durability) = &self.persist {
            let mut durability = durability.lock().expect("durability poisoned");
            if durability.engine.needs_checkpoint() {
                durability.checkpoint(&self.store)?;
            }
        }
        Ok(())
    }

    /// Create a BDMS preloaded with a logical belief database.
    pub fn from_belief_database(db: &BeliefDatabase) -> Result<Self> {
        let mut bdms = Bdms::new(db.schema().clone())?;
        for u in db.users() {
            bdms.add_user(db.user_name(u)?.to_string())?;
        }
        for stmt in db.statements() {
            bdms.insert_statement(&stmt)?;
        }
        Ok(bdms)
    }

    pub fn schema(&self) -> &ExternalSchema {
        self.store.schema()
    }

    /// Register a new user (Sect. 5.3). Durable instances append the
    /// registration to the WAL before applying it.
    pub fn add_user(&mut self, name: impl Into<String>) -> Result<UserId> {
        let name = name.into();
        if self.persist.is_some() {
            // Validate before logging so the record replays cleanly.
            if self.store.user_by_name(&name).is_ok() {
                return Err(BeliefError::DuplicateUser(name));
            }
            self.log(&LogRecord::AddUser(name.clone()))?;
        }
        let id = self.store.add_user(name)?;
        self.auto_checkpoint()?;
        Ok(id)
    }

    pub fn user_by_name(&self, name: &str) -> Result<UserId> {
        self.store.user_by_name(name)
    }

    pub fn user_name(&self, id: UserId) -> Result<&str> {
        self.store.user_name(id)
    }

    pub fn users(&self) -> Vec<UserId> {
        self.store.users().collect()
    }

    /// Insert a belief statement `w t^s` (Algorithm 4). Durable
    /// instances append the statement to the WAL before applying it
    /// ("append-then-apply"); outcomes — including rejection by the
    /// consistency gate — are deterministic, so replay reproduces the
    /// same state bit for bit.
    pub fn insert(
        &mut self,
        path: BeliefPath,
        rel: RelId,
        row: Row,
        sign: Sign,
    ) -> Result<InsertOutcome> {
        let stmt = BeliefStatement::new(path, GroundTuple::new(rel, row), sign);
        self.insert_statement(&stmt)
    }

    /// Insert a prebuilt statement.
    pub fn insert_statement(&mut self, stmt: &BeliefStatement) -> Result<InsertOutcome> {
        if self.persist.is_some() {
            self.store.check_statement(&stmt.path, &stmt.tuple)?;
            self.log(&LogRecord::Insert(stmt.clone()))?;
        }
        let outcome = self.store.insert_statement(stmt)?;
        self.auto_checkpoint()?;
        Ok(outcome)
    }

    /// Delete an explicit statement; returns whether it was present.
    pub fn delete(&mut self, path: BeliefPath, rel: RelId, row: Row, sign: Sign) -> Result<bool> {
        let stmt = BeliefStatement::new(path, GroundTuple::new(rel, row), sign);
        self.delete_statement(&stmt)
    }

    pub fn delete_statement(&mut self, stmt: &BeliefStatement) -> Result<bool> {
        if self.persist.is_some() {
            self.store.check_statement(&stmt.path, &stmt.tuple)?;
            self.log(&LogRecord::Delete(stmt.clone()))?;
        }
        let present = self.store.delete_statement(stmt)?;
        self.auto_checkpoint()?;
        Ok(present)
    }

    /// Update: replace an explicit positive tuple at `path` by a new tuple
    /// with the same key (the conflicting-alternative semantics of Sect. 2).
    /// If the old tuple was only implicit, the new tuple simply overrides
    /// it. Returns the outcome of the final insert. Logged as a single
    /// WAL record on durable instances.
    pub fn update(
        &mut self,
        path: BeliefPath,
        rel: RelId,
        old_row: Row,
        new_row: Row,
    ) -> Result<InsertOutcome> {
        let old = GroundTuple::new(rel, old_row);
        let new = GroundTuple::new(rel, new_row);
        if self.persist.is_some() {
            self.store.check_statement(&path, &old)?;
            self.store.check_statement(&path, &new)?;
            self.log(&LogRecord::Update {
                path: path.clone(),
                rel,
                old_row: old.row.clone(),
                new_row: new.row.clone(),
            })?;
        }
        self.store.delete(&path, &old, Sign::Pos)?;
        let outcome = self.store.insert(&path, &new, Sign::Pos)?;
        // Count the pair as one logical update on the content table
        // (the delete/insert halves already bumped their own counters).
        if let Ok(def) = self.store.schema().relation(rel) {
            let star = crate::internal::star_table(def.name());
            if let Ok(t) = self.store.database().table(&star) {
                t.note_update();
            }
        }
        self.auto_checkpoint()?;
        Ok(outcome)
    }

    /// Evaluate a belief conjunctive query via the Algorithm 1 translation.
    /// Rule plans are optimized by the storage layer's cost-based optimizer.
    ///
    /// Every call bumps `query.executed` and feeds the latency histogram
    /// in the global metrics registry ([`Bdms::metrics`]). When the
    /// slow-query log is armed ([`Bdms::set_slowlog_threshold_ms`]) the
    /// query runs with profiling on and a crossing is captured with its
    /// span timings and full `EXPLAIN ANALYZE` report.
    pub fn query(&self, q: &Bcq) -> Result<Vec<Row>> {
        if self.slowlog.enabled() {
            let mut rec = Recorder::enabled(q.to_string());
            let rows = self.query_traced(q, &mut rec)?;
            if let Some(trace) = rec.finish() {
                self.slowlog.observe(trace);
            }
            Ok(rows)
        } else {
            self.query_traced(q, &mut Recorder::disabled())
        }
    }

    /// [`Bdms::query`] with caller-owned span recording: an enabled
    /// recorder gets `translate` / `cache_lookup` / `execute` / `sort`
    /// spans plus the full `EXPLAIN ANALYZE` report attached; a disabled
    /// recorder makes this exactly the plain query path (no profiling).
    pub fn query_traced(&self, q: &Bcq, rec: &mut Recorder) -> Result<Vec<Row>> {
        metrics().incr(Metric::QueriesExecuted);
        let t0 = Instant::now();
        let out = if rec.is_enabled() {
            bcq::translate::evaluate_analyze_with_options(&self.store, q, &self.eval_options(), rec)
                .map(|(rows, report)| {
                    rec.set_profile(report);
                    rows
                })
        } else {
            bcq::translate::evaluate_with_options(&self.store, q, &self.eval_options())
        };
        metrics().record_latency(t0.elapsed().as_nanos() as u64);
        out
    }

    /// `EXPLAIN ANALYZE`: run the query with per-operator profiling on
    /// and return the answer rows plus the report — every operator of
    /// every answer-rule plan annotated with estimated *and* actual
    /// rows, chunks, wall time, kernel-vs-fallback filter rows, and
    /// spill traffic. Shares the plan cache with [`Bdms::query`].
    pub fn explain_analyze_query(&self, q: &Bcq) -> Result<(Vec<Row>, String)> {
        metrics().incr(Metric::QueriesExecuted);
        let t0 = Instant::now();
        let out = bcq::translate::evaluate_analyze_with_options(
            &self.store,
            q,
            &self.eval_options(),
            &mut Recorder::disabled(),
        );
        metrics().record_latency(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Evaluate a BCQ, streaming answer rows into `sink` as the final
    /// Datalog rule produces them: the answer is never collected into a
    /// `Vec` (and is therefore *unsorted*, unlike [`Bdms::query`]). Rows
    /// are deduplicated. This is the path interactive consumers (the
    /// BeliefSQL shell) use to show first results before the query
    /// finishes.
    pub fn query_streaming(&self, q: &Bcq, sink: impl FnMut(Row)) -> Result<()> {
        bcq::translate::evaluate_streaming_with_options(&self.store, q, &self.eval_options(), sink)
    }

    /// Evaluate via the Algorithm 1 translation with the optimizer off:
    /// plans execute exactly as emitted (differential testing / benches).
    pub fn query_unoptimized(&self, q: &Bcq) -> Result<Vec<Row>> {
        bcq::translate::evaluate_unoptimized(&self.store, q)
    }

    /// Evaluate with the materializing (operator-at-a-time) executor
    /// instead of the streaming one — the reference side of the
    /// streaming-vs-materializing differential suite and the
    /// `exec_streaming` bench baseline.
    pub fn query_materialized(&self, q: &Bcq) -> Result<Vec<Row>> {
        bcq::translate::evaluate_materialized(&self.store, q)
    }

    /// Evaluate with the row-at-a-time streaming executor (the PR 2
    /// tuple pipeline) instead of the vectorized chunk-at-a-time one —
    /// the baseline the `exec_vectorized` bench measures against, and
    /// the third voice of the chunked/row/materialized differential
    /// suite.
    pub fn query_row_at_a_time(&self, q: &Bcq) -> Result<Vec<Row>> {
        bcq::translate::evaluate_rows(&self.store, q)
    }

    /// `EXPLAIN`: the optimized physical plan of every Datalog rule the
    /// Algorithm 1 translation produces for this query.
    pub fn explain_query(&self, q: &Bcq) -> Result<String> {
        bcq::translate::explain_with_options(&self.store, q, &self.eval_options())
    }

    /// Evaluate via the naive Def. 14 evaluator (reference semantics; used
    /// by tests and the evaluation-strategy ablation).
    pub fn query_naive(&self, q: &Bcq) -> Result<Vec<Row>> {
        let logical = self.store.to_belief_database()?;
        let mut rows = bcq::naive::evaluate(&logical, q)?;
        rows.sort();
        Ok(rows)
    }

    /// Translate a query without executing it (for inspection).
    pub fn translate(&self, q: &Bcq) -> Result<bcq::translate::TranslatedQuery> {
        bcq::translate::translate(&self.store, q)
    }

    /// World-level entailment `D |= ϕ` (Thm. 17 walk + Prop. 7 check).
    pub fn entails(&self, stmt: &BeliefStatement) -> Result<bool> {
        self.store.entails(&stmt.path, &stmt.tuple, stmt.sign)
    }

    /// Materialize the entailed belief world at a path.
    pub fn world(&self, path: &BeliefPath) -> Result<BeliefWorld> {
        self.store.world(path)
    }

    /// The explicit statements recorded at a path.
    pub fn explicit_statements_at(&self, path: &BeliefPath) -> Result<Vec<BeliefStatement>> {
        self.store.explicit_statements_at(path)
    }

    /// Snapshot of the Datalog plan-cache counters (hits, misses, cached
    /// programs, embedded rows). Takes the cache lock briefly.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.store.with_plan_cache(|cache| PlanCacheStats {
            hits: cache.hits(),
            misses: cache.misses(),
            entries: cache.len(),
            embedded_rows: cache.embedded_row_count(),
        })
    }

    /// Snapshot of the process-wide metrics registry: query counts and
    /// latency quantiles, plan-cache hits/misses, WAL appends/syncs/
    /// checkpoints, spill run files, buffer-pool recycling, rows
    /// scanned/emitted, slow-query captures. Counters are cumulative
    /// since process start; diff two snapshots with
    /// [`MetricsSnapshot::since`] for per-session deltas.
    pub fn metrics(&self) -> MetricsSnapshot {
        metrics().snapshot()
    }

    /// Arm (or disarm, with `None`) the slow-query log: queries whose
    /// total wall time crosses the threshold are captured with span
    /// timings and their full `EXPLAIN ANALYZE` report. A threshold of
    /// 0 ms captures every query. While armed, queries run with
    /// profiling on.
    pub fn set_slowlog_threshold_ms(&self, ms: Option<u64>) {
        self.slowlog.set_threshold_ms(ms);
    }

    /// The slow-query capture threshold in ms (`None` = off).
    pub fn slowlog_threshold_ms(&self) -> Option<u64> {
        self.slowlog.threshold_ms()
    }

    /// Captured slow queries, oldest first (bounded ring).
    pub fn slowlog_entries(&self) -> Vec<QueryTrace> {
        self.slowlog.entries()
    }

    /// Drop all captured slow queries (the threshold is unchanged).
    pub fn clear_slowlog(&self) {
        self.slowlog.clear();
    }

    /// The slow-query log itself — callers running their own
    /// [`Recorder`] (the BeliefSQL session does) hand finished traces to
    /// [`SlowLog::observe`] through this.
    pub fn slowlog(&self) -> &SlowLog {
        &self.slowlog
    }

    /// Size statistics (`|R*|`, Sect. 5.4 / Sect. 6.1).
    pub fn stats(&self) -> SizeStats {
        SizeStats {
            total_tuples: self.store.total_tuples(),
            per_table: self.store.table_sizes(),
            worlds: self.store.directory().len(),
            users: self.store.user_count(),
        }
    }

    /// Read-only access to the internal relational database.
    pub fn storage(&self) -> &Database {
        self.store.database()
    }

    /// Read-only access to the internal store (advanced / benches).
    pub fn internal(&self) -> &InternalStore {
        &self.store
    }

    /// Extract the logical belief database (explicit statements).
    pub fn to_belief_database(&self) -> Result<BeliefDatabase> {
        self.store.to_belief_database()
    }

    /// Build the in-memory canonical Kripke structure for the current
    /// contents (Def. 16) — the logical counterpart of what the store
    /// materializes relationally.
    pub fn canonical_kripke(&self) -> Result<CanonicalKripke> {
        Ok(CanonicalKripke::build(&self.to_belief_database()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcq::dsl::*;
    use crate::database::running_example;
    use crate::path::path;
    use beliefdb_storage::row;

    fn running_bdms() -> (Bdms, UserId, UserId, UserId) {
        let (db, a, b, c) = running_example();
        (Bdms::from_belief_database(&db).unwrap(), a, b, c)
    }

    #[test]
    fn from_belief_database_round_trips() {
        let (db, ..) = running_example();
        let bdms = Bdms::from_belief_database(&db).unwrap();
        let back = bdms.to_belief_database().unwrap();
        assert_eq!(back.statements(), db.statements());
        assert_eq!(back.user_count(), 3);
    }

    #[test]
    fn store_worlds_match_closure_worlds() {
        // The central differential test: every state's V-slice equals the
        // closure's entailed world.
        let (bdms, ..) = running_bdms();
        let logical = bdms.to_belief_database().unwrap();
        let mut closure = crate::closure::Closure::new(&logical);
        for p in logical.states() {
            let materialized = bdms.world(&p).unwrap();
            let reference = closure.entailed_world(&p).clone();
            assert_eq!(materialized, reference, "world mismatch at {p}");
        }
    }

    #[test]
    fn queries_q1_and_q2_of_sect2() {
        let (bdms, alice, bob, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        // q1: sightings believed by Bob.
        let q1 = Bcq::builder(vec![qv("sid"), qv("uid"), qv("species")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qv("uid"), qv("species"), qany(), qany()],
            )
            .build(bdms.schema())
            .unwrap();
        assert_eq!(bdms.query(&q1).unwrap(), vec![row!["s2", "Alice", "raven"]]);

        // q2: entries on which users disagree with what Alice believes.
        let q2 = Bcq::builder(vec![qv("u2"), qv("sp1"), qv("sp2")])
            .positive(
                vec![pu(alice)],
                s,
                vec![qv("sid"), qany(), qv("sp1"), qany(), qany()],
            )
            .positive(
                vec![pv("u2")],
                s,
                vec![qv("sid"), qany(), qv("sp2"), qany(), qany()],
            )
            .pred(qv("sp1"), beliefdb_storage::CmpOp::Ne, qv("sp2"))
            .build(bdms.schema())
            .unwrap();
        assert_eq!(bdms.query(&q2).unwrap(), vec![row![2, "crow", "raven"]]);
    }

    #[test]
    fn translated_matches_naive_on_running_example() {
        let (bdms, alice, bob, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let args = vec![qv("y"), qv("z"), qv("u"), qv("v"), qv("w")];
        let queries = vec![
            Bcq::builder(vec![qv("x")])
                .negative(vec![pv("x")], s, args.clone())
                .positive(vec![pu(alice)], s, args.clone())
                .build(bdms.schema())
                .unwrap(),
            Bcq::builder(vec![qv("y"), qv("u")])
                .positive(vec![pu(bob), pu(alice)], s, args.clone())
                .build(bdms.schema())
                .unwrap(),
        ];
        for q in queries {
            assert_eq!(
                bdms.query(&q).unwrap(),
                bdms.query_naive(&q).unwrap(),
                "on {q}"
            );
        }
    }

    #[test]
    fn update_replaces_tuple() {
        let (mut bdms, _, bob, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        // Bob revises raven → heron.
        let outcome = bdms
            .update(
                BeliefPath::user(bob),
                s,
                row!["s2", "Alice", "raven", "6-14-08", "Lake Placid"],
                row!["s2", "Alice", "heron", "6-14-08", "Lake Placid"],
            )
            .unwrap();
        assert_eq!(outcome, InsertOutcome::Inserted);
        let heron = GroundTuple::new(s, row!["s2", "Alice", "heron", "6-14-08", "Lake Placid"]);
        let raven = GroundTuple::new(s, row!["s2", "Alice", "raven", "6-14-08", "Lake Placid"]);
        assert!(bdms
            .entails(&BeliefStatement::positive(BeliefPath::user(bob), heron))
            .unwrap());
        assert!(bdms
            .entails(&BeliefStatement::negative(BeliefPath::user(bob), raven))
            .unwrap());
    }

    #[test]
    fn query_streaming_matches_collected_query() {
        let (bdms, alice, _, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let args = vec![qv("y"), qv("z"), qv("u"), qv("v"), qv("w")];
        let q = Bcq::builder(vec![qv("x")])
            .negative(vec![pv("x")], s, args.clone())
            .positive(vec![pu(alice)], s, args)
            .build(bdms.schema())
            .unwrap();
        let mut streamed = Vec::new();
        bdms.query_streaming(&q, |row| streamed.push(row)).unwrap();
        streamed.sort();
        assert_eq!(streamed, bdms.query(&q).unwrap());
    }

    #[test]
    fn query_materialized_matches_streaming_executor() {
        let (bdms, alice, bob, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let args = vec![qv("y"), qv("z"), qv("u"), qv("v"), qv("w")];
        let queries = vec![
            Bcq::builder(vec![qv("y"), qv("u")])
                .positive(vec![pu(bob), pu(alice)], s, args.clone())
                .build(bdms.schema())
                .unwrap(),
            Bcq::builder(vec![qv("x")])
                .negative(vec![pv("x")], s, args.clone())
                .positive(vec![pu(alice)], s, args)
                .build(bdms.schema())
                .unwrap(),
        ];
        for q in &queries {
            assert_eq!(
                bdms.query(q).unwrap(),
                bdms.query_materialized(q).unwrap(),
                "executors disagree on {q}"
            );
            assert_eq!(
                bdms.query(q).unwrap(),
                bdms.query_row_at_a_time(q).unwrap(),
                "chunked and row-at-a-time executors disagree on {q}"
            );
        }
    }

    #[test]
    fn plan_cache_stats_are_observable() {
        let (bdms, _, bob, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qany(), qany(), qany(), qany()],
            )
            .build(bdms.schema())
            .unwrap();
        let before = bdms.plan_cache_stats();
        assert_eq!((before.hits, before.misses, before.entries), (0, 0, 0));
        assert_eq!(before.hit_rate(), 0.0);
        bdms.query(&q).unwrap();
        bdms.query(&q).unwrap();
        let after = bdms.plan_cache_stats();
        assert_eq!((after.hits, after.misses), (1, 1));
        assert_eq!(after.entries, 1);
        assert!((after.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn repeat_queries_hit_the_plan_cache_and_mutations_invalidate() {
        let (mut bdms, _, bob, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid"), qv("species")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qany(), qv("species"), qany(), qany()],
            )
            .build(bdms.schema())
            .unwrap();
        let first = bdms.query(&q).unwrap();
        let (h0, m0) = bdms.internal().with_plan_cache(|c| (c.hits(), c.misses()));
        assert_eq!((h0, m0), (0, 1));
        // Repeat: served from the cache, identical answer.
        assert_eq!(bdms.query(&q).unwrap(), first);
        let (h1, m1) = bdms.internal().with_plan_cache(|c| (c.hits(), c.misses()));
        assert_eq!((h1, m1), (1, 1));
        // A mutation bumps table versions: the stale plans must not be
        // served, and the answer reflects the new statement.
        bdms.insert(
            BeliefPath::user(bob),
            s,
            row!["s9", "Bob", "owl", "7-1-08", "Ridge"],
            Sign::Pos,
        )
        .unwrap();
        let after = bdms.query(&q).unwrap();
        let (h2, m2) = bdms.internal().with_plan_cache(|c| (c.hits(), c.misses()));
        assert_eq!((h2, m2), (1, 2));
        assert!(after.contains(&row!["s9", "owl"]), "{after:?}");

        // The streaming path shares the cache: this repeat is a hit and
        // returns the same rows.
        let mut streamed = Vec::new();
        bdms.query_streaming(&q, |row| streamed.push(row)).unwrap();
        streamed.sort();
        assert_eq!(streamed, after);
        let (h3, _) = bdms.internal().with_plan_cache(|c| (c.hits(), c.misses()));
        assert_eq!(h3, 2);
    }

    #[test]
    fn memory_budget_spills_without_changing_answers() {
        let (mut bdms, alice, _, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        // A join-heavy query (two subgoals share sid) plus the content
        // query: both must be identical under a zero budget, where every
        // materialization point spills.
        let q = Bcq::builder(vec![qv("u2"), qv("sp1"), qv("sp2")])
            .positive(
                vec![pu(alice)],
                s,
                vec![qv("sid"), qany(), qv("sp1"), qany(), qany()],
            )
            .positive(
                vec![pv("u2")],
                s,
                vec![qv("sid"), qany(), qv("sp2"), qany(), qany()],
            )
            .build(bdms.schema())
            .unwrap();
        let want = bdms.query(&q).unwrap();
        assert_eq!(bdms.memory_budget(), None);
        bdms.set_memory_budget(Some(0));
        assert_eq!(bdms.memory_budget(), Some(0));
        assert_eq!(bdms.query(&q).unwrap(), want);
        let mut streamed = Vec::new();
        bdms.query_streaming(&q, |row| streamed.push(row)).unwrap();
        streamed.sort();
        assert_eq!(streamed, want);
        // EXPLAIN reports the spill budget at materialization points —
        // and stops once the budget is lifted.
        let text = bdms.explain_query(&q).unwrap();
        assert!(text.contains("[spill budget=0 partitions="), "{text}");
        bdms.set_memory_budget(None);
        assert!(!bdms.explain_query(&q).unwrap().contains("[spill"));
    }

    #[test]
    fn magic_toggle_preserves_answers_and_marks_plans() {
        let (mut bdms, alice, _, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        // A bound probe joined to a second subgoal through `sid`: the
        // rewrite seeds the second temp's demand from the first (SIP),
        // so its rule carries a magic guard.
        let q = Bcq::builder(vec![qv("u2"), qv("sp1"), qv("sp2")])
            .positive(
                vec![pu(alice)],
                s,
                vec![qv("sid"), qany(), qv("sp1"), qany(), qany()],
            )
            .positive(
                vec![pv("u2")],
                s,
                vec![qv("sid"), qany(), qv("sp2"), qany(), qany()],
            )
            .build(bdms.schema())
            .unwrap();
        assert!(bdms.magic_enabled());
        let with_magic = bdms.query(&q).unwrap();
        let magic_explain = bdms.explain_query(&q).unwrap();
        assert!(magic_explain.contains("[magic"), "{magic_explain}");
        bdms.set_magic(false);
        assert!(!bdms.magic_enabled());
        assert_eq!(bdms.query(&q).unwrap(), with_magic);
        let plain_explain = bdms.explain_query(&q).unwrap();
        assert!(!plain_explain.contains("[magic"), "{plain_explain}");
        // The naive reference agrees with both.
        assert_eq!(bdms.query_naive(&q).unwrap(), with_magic);
        // Streaming shares the toggle.
        bdms.set_magic(true);
        let mut streamed = Vec::new();
        bdms.query_streaming(&q, |row| streamed.push(row)).unwrap();
        streamed.sort();
        assert_eq!(streamed, with_magic);
    }

    #[test]
    fn explain_analyze_runs_and_reports_actuals() {
        let (bdms, _, bob, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid"), qv("species")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qany(), qv("species"), qany(), qany()],
            )
            .build(bdms.schema())
            .unwrap();
        let (rows, report) = bdms.explain_analyze_query(&q).unwrap();
        assert_eq!(rows, bdms.query(&q).unwrap());
        assert!(report.contains("| actual rows="), "{report}");
        assert!(report.contains("time="), "{report}");
        // The repeat ran from the plan cache and still profiles.
        let (rows2, report2) = bdms.explain_analyze_query(&q).unwrap();
        assert_eq!(rows2, rows);
        assert!(report2.contains("| actual rows="), "{report2}");
    }

    #[test]
    fn slowlog_captures_threshold_crossings_with_profiles() {
        let (bdms, _, bob, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qany(), qany(), qany(), qany()],
            )
            .build(bdms.schema())
            .unwrap();
        assert_eq!(bdms.slowlog_threshold_ms(), None);
        bdms.query(&q).unwrap();
        assert!(bdms.slowlog_entries().is_empty());

        // Threshold 0: every query is captured, with spans + profile.
        bdms.set_slowlog_threshold_ms(Some(0));
        assert_eq!(bdms.slowlog_threshold_ms(), Some(0));
        bdms.query(&q).unwrap();
        let entries = bdms.slowlog_entries();
        assert_eq!(entries.len(), 1);
        let trace = &entries[0];
        assert!(!trace.statement.is_empty());
        assert!(
            trace.spans.iter().any(|sp| sp.name == "execute"),
            "{trace:?}"
        );
        assert!(
            trace.profile.as_deref().unwrap().contains("| actual"),
            "{trace:?}"
        );

        bdms.clear_slowlog();
        assert!(bdms.slowlog_entries().is_empty());
        bdms.set_slowlog_threshold_ms(None);
        bdms.query(&q).unwrap();
        assert!(bdms.slowlog_entries().is_empty());
    }

    #[test]
    fn metrics_snapshot_counts_queries_and_latency() {
        let (bdms, _, bob, _) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qany(), qany(), qany(), qany()],
            )
            .build(bdms.schema())
            .unwrap();
        let before = bdms.metrics();
        bdms.query(&q).unwrap();
        bdms.query(&q).unwrap();
        // The registry is process-global (other tests run concurrently):
        // assert on the delta, with >= where others may contribute.
        let delta = bdms.metrics().since(&before);
        assert!(delta.get(Metric::QueriesExecuted) >= 2, "{delta:?}");
        assert!(delta.get(Metric::PlanCacheMisses) >= 1, "{delta:?}");
        assert!(delta.get(Metric::PlanCacheHits) >= 1, "{delta:?}");
        assert!(delta.get(Metric::RowsScanned) >= 1, "{delta:?}");
    }

    #[test]
    fn stats_report_sizes() {
        let (bdms, ..) = running_bdms();
        let stats = bdms.stats();
        assert_eq!(stats.users, 3);
        assert_eq!(stats.worlds, 4);
        assert!(
            stats.total_tuples > 8,
            "internal size exceeds annotation count"
        );
        assert!(stats.relative_overhead(8) > 1.0);
        assert_eq!(stats.per_table.len(), bdms.storage().table_names().len());
        // Fig. 5 check: E has 9 rows for this example.
        let e = stats.per_table.iter().find(|(n, _)| n == "E").unwrap();
        assert_eq!(e.1, 9);
    }

    #[test]
    fn canonical_kripke_agrees_with_store() {
        let (bdms, alice, bob, _) = running_bdms();
        let k = bdms.canonical_kripke().unwrap();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let raven = GroundTuple::new(s, row!["s2", "Alice", "raven", "6-14-08", "Lake Placid"]);
        for p in [
            BeliefPath::root(),
            BeliefPath::user(alice),
            BeliefPath::user(bob),
            path(&[2, 1]),
            path(&[1, 2]),
            path(&[3, 2, 1]),
        ] {
            for sign in [Sign::Pos, Sign::Neg] {
                let stmt = BeliefStatement::new(p.clone(), raven.clone(), sign);
                assert_eq!(bdms.entails(&stmt).unwrap(), k.entails(&stmt), "on {stmt}");
            }
        }
    }

    #[test]
    fn user_atoms_join_the_catalog() {
        // Paper q1: select sightings believed by the user *named* Bob.
        let (bdms, ..) = running_bdms();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid"), qv("species")])
            .user(qv("u"), qc("Bob"))
            .positive(
                vec![pv("u")],
                s,
                vec![qv("sid"), qany(), qv("species"), qany(), qany()],
            )
            .build(bdms.schema())
            .unwrap();
        assert_eq!(bdms.query(&q).unwrap(), vec![row!["s2", "raven"]]);
        assert_eq!(bdms.query_naive(&q).unwrap(), vec![row!["s2", "raven"]]);

        // Selecting user names via the catalog: who disagrees with Alice?
        let args = vec![qv("y"), qv("z"), qv("u2"), qv("v"), qv("w")];
        let q = Bcq::builder(vec![qv("name")])
            .user(qv("x"), qv("name"))
            .negative(vec![pv("x")], s, args.clone())
            .positive(vec![pu(UserId(1))], s, args)
            .build(bdms.schema())
            .unwrap();
        assert_eq!(bdms.query(&q).unwrap(), vec![row!["Bob"]]);
        assert_eq!(bdms.query_naive(&q).unwrap(), vec![row!["Bob"]]);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "beliefdb-bdms-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn durable_round_trip_reproduces_state_and_stats() {
        let dir = temp_dir("roundtrip");
        let (db, ..) = running_example();
        {
            let mut bdms = Bdms::create(&dir, db.schema().clone()).unwrap();
            assert!(bdms.is_durable());
            for u in db.users() {
                bdms.add_user(db.user_name(u).unwrap().to_string()).unwrap();
            }
            for stmt in db.statements() {
                bdms.insert_statement(&stmt).unwrap();
            }
            // Interior checkpoint plus post-checkpoint mutations.
            bdms.checkpoint().unwrap();
            let s = bdms.schema().relation_id("Sightings").unwrap();
            bdms.insert(
                BeliefPath::user(UserId(2)),
                s,
                row!["s9", "Bob", "owl", "7-1-08", "Ridge"],
                Sign::Pos,
            )
            .unwrap();
            let reopened = Bdms::open(&dir).unwrap();
            assert_eq!(reopened.stats(), bdms.stats());
            assert_eq!(
                reopened.to_belief_database().unwrap().statements(),
                bdms.to_belief_database().unwrap().statements()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_replays_rejected_inserts_and_deletes_exactly() {
        let dir = temp_dir("sideeffects");
        let schema = ExternalSchema::new().with_relation("S", &["sid", "species"]);
        let mut bdms = Bdms::create(&dir, schema).unwrap();
        let alice = bdms.add_user("Alice").unwrap();
        let bob = bdms.add_user("Bob").unwrap();
        let s = bdms.schema().relation_id("S").unwrap();
        bdms.insert(BeliefPath::user(alice), s, row!["s1", "crow"], Sign::Pos)
            .unwrap();
        // Bob-believes-Alice overrides the inherited crow with a raven.
        let out = bdms
            .insert(path(&[2, 1]), s, row!["s1", "raven"], Sign::Pos)
            .unwrap();
        assert_eq!(out, InsertOutcome::Inserted);
        // Rejected insert (conflicts with the explicit raven): still
        // creates the owl's R* row, which replay must reproduce.
        let out = bdms
            .insert(path(&[2, 1]), s, row!["s1", "owl"], Sign::Pos)
            .unwrap();
        assert_eq!(out, InsertOutcome::Rejected);
        bdms.delete(BeliefPath::user(alice), s, row!["s1", "crow"], Sign::Pos)
            .unwrap();
        bdms.update(
            BeliefPath::user(bob),
            s,
            row!["s2", "owl"],
            row!["s2", "heron"],
        )
        .unwrap();
        let reopened = Bdms::open(&dir).unwrap();
        assert_eq!(reopened.stats(), bdms.stats());
        assert_eq!(
            reopened.internal().directory().len(),
            bdms.internal().directory().len()
        );
        // Errors never reach the log: a bad statement fails both here
        // and after reopen, with no phantom record.
        assert!(bdms
            .insert(crate::path::path(&[9]), s, row!["x", "y"], Sign::Pos)
            .is_err());
        assert!(bdms.add_user("Alice").is_err());
        let again = Bdms::open(&dir).unwrap();
        assert_eq!(again.stats(), bdms.stats());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_bdms_has_no_wal() {
        let (bdms, ..) = running_bdms();
        assert!(!bdms.is_durable());
        assert!(bdms.wal_stats().is_none());
        let (mut bdms, ..) = running_bdms();
        assert!(bdms.checkpoint().is_err());
    }

    #[test]
    fn wal_stats_track_appends_and_checkpoints() {
        let dir = temp_dir("stats");
        let schema = ExternalSchema::new().with_relation("S", &["sid", "species"]);
        let mut bdms = Bdms::create(&dir, schema).unwrap();
        let hwm0 = bdms.wal_stats().unwrap().snapshot_hwm;
        assert_eq!(hwm0, 0);
        bdms.add_user("Alice").unwrap();
        let s = bdms.schema().relation_id("S").unwrap();
        bdms.insert(
            BeliefPath::user(UserId(1)),
            s,
            row!["s1", "crow"],
            Sign::Pos,
        )
        .unwrap();
        let stats = bdms.wal_stats().unwrap();
        assert_eq!(stats.next_lsn, 2);
        assert_eq!(stats.frames, 2);
        let hwm = bdms.checkpoint().unwrap();
        assert_eq!(hwm, 2);
        let stats = bdms.wal_stats().unwrap();
        assert_eq!(stats.snapshot_hwm, 2);
        assert_eq!(stats.frames, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dora_joins_and_gets_default_beliefs() {
        let (mut bdms, _, bob, _) = running_bdms();
        let dora = bdms.add_user("Dora").unwrap();
        let s = bdms.schema().relation_id("Sightings").unwrap();
        let s11 = GroundTuple::new(
            s,
            row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
        );
        assert!(bdms
            .entails(&BeliefStatement::positive(
                BeliefPath::user(dora),
                s11.clone()
            ))
            .unwrap());
        let dora_bob = BeliefPath::new(vec![dora, bob]).unwrap();
        assert!(bdms
            .entails(&BeliefStatement::negative(dora_bob, s11))
            .unwrap());
    }
}
