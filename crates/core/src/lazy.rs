//! Lazy default-rule evaluation — the paper's Sect. 6.3 proposal,
//! implemented as an extension.
//!
//! "Our current canonical Kripke structure stores `D̄`, the set of all
//! entailed beliefs, which means that it applies eagerly all instances of
//! the default rule to `D`; this causes the database to increase. An
//! alternative approach is to apply the default rule [...] only during
//! query evaluation. This will complicate the query translation, but, at
//! the same time, will drastically reduce the size of the database."
//!
//! [`LazyBdms`] stores only the *explicit* statements (size `O(n)` instead
//! of `O(n·N)`), keeps the world directory, and materializes entailed
//! worlds on demand with memoization. Inserts are O(1) — no dependent-world
//! propagation — at the price of query-time closure walks. The
//! `ablation_lazy` bench quantifies the trade-off the paper predicts.

use crate::bcq::{naive, Bcq};
use crate::database::BeliefDatabase;
use crate::error::{BeliefError, Result};
use crate::ids::UserId;
use crate::internal::InsertOutcome;
use crate::path::BeliefPath;
use crate::schema::ExternalSchema;
use crate::statement::{BeliefStatement, GroundTuple, Sign};
use crate::world::BeliefWorld;
use beliefdb_storage::Row;
use std::collections::HashMap;

/// A belief database that applies the message-board default rule lazily.
pub struct LazyBdms {
    db: BeliefDatabase,
    /// Memoized entailed worlds; invalidated wholesale on update (an update
    /// of key `k` could refine this to per-key invalidation — kept simple,
    /// as the mode trades update cost for query cost anyway).
    cache: HashMap<BeliefPath, BeliefWorld>,
}

impl LazyBdms {
    pub fn new(schema: ExternalSchema) -> Self {
        LazyBdms {
            db: BeliefDatabase::new(schema),
            cache: HashMap::new(),
        }
    }

    /// Wrap an existing logical database.
    pub fn from_belief_database(db: BeliefDatabase) -> Self {
        LazyBdms {
            db,
            cache: HashMap::new(),
        }
    }

    pub fn schema(&self) -> &ExternalSchema {
        self.db.schema()
    }

    pub fn add_user(&mut self, name: impl Into<String>) -> Result<UserId> {
        // New users change default beliefs everywhere (they believe all
        // stated beliefs) — but entailed worlds of *existing paths* are
        // untouched, so the cache stays valid.
        self.db.add_user(name)
    }

    pub fn user_by_name(&self, name: &str) -> Result<UserId> {
        self.db.user_by_name(name)
    }

    /// Insert a statement. O(depth) — no propagation.
    pub fn insert(
        &mut self,
        path: BeliefPath,
        rel: crate::ids::RelId,
        row: Row,
        sign: Sign,
    ) -> Result<InsertOutcome> {
        self.insert_statement(&BeliefStatement::new(
            path,
            GroundTuple::new(rel, row),
            sign,
        ))
    }

    pub fn insert_statement(&mut self, stmt: &BeliefStatement) -> Result<InsertOutcome> {
        match self.db.insert(stmt.clone()) {
            Ok(true) => {
                self.cache.clear();
                Ok(InsertOutcome::Inserted)
            }
            Ok(false) => Ok(InsertOutcome::AlreadyExplicit),
            Err(BeliefError::Inconsistent(_)) => Ok(InsertOutcome::Rejected),
            Err(e) => Err(e),
        }
    }

    /// Delete an explicit statement. O(depth).
    pub fn delete_statement(&mut self, stmt: &BeliefStatement) -> Result<bool> {
        let removed = self.db.remove(stmt);
        if removed {
            self.cache.clear();
        }
        Ok(removed)
    }

    /// The entailed world at a path, computed on demand (suffix-chain
    /// overriding union) and memoized until the next update.
    pub fn world(&mut self, path: &BeliefPath) -> &BeliefWorld {
        if !self.cache.contains_key(path) {
            let world = if path.is_root() {
                self.db.explicit_world(path)
            } else {
                let parent = self.world(&path.drop_first()).clone();
                self.db.explicit_world(path).override_with(&parent)
            };
            self.cache.insert(path.clone(), world);
        }
        &self.cache[path]
    }

    /// World-level entailment, resolved lazily.
    pub fn entails(&mut self, stmt: &BeliefStatement) -> bool {
        self.world(&stmt.path).entails(&stmt.tuple, stmt.sign)
    }

    /// Evaluate a BCQ. The default rule is applied during evaluation —
    /// exactly the strategy sketched in Sect. 6.3. Path variables cost one
    /// world materialization per candidate user assignment.
    pub fn query(&self, q: &Bcq) -> Result<Vec<Row>> {
        let mut rows = naive::evaluate(&self.db, q)?;
        rows.sort();
        Ok(rows)
    }

    /// Storage footprint of the lazy representation: explicit statements
    /// plus the catalog — the `O(n)` the paper predicts ("drastically
    /// reduce the size of the database").
    pub fn stored_tuples(&self) -> usize {
        // One V row per explicit statement, one R* row per distinct tuple,
        // one U row per user, D/S/E for the states only.
        let states = self.db.states().len();
        let users = self.db.user_count();
        self.db.len()
            + self.db.mentioned_tuples().len()
            + users
            + states // D
            + states.saturating_sub(1) // S
            + states * users // E upper bound
    }

    pub fn database(&self) -> &BeliefDatabase {
        &self.db
    }

    /// Number of memoized worlds (for observability in benches).
    pub fn cached_worlds(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcq::dsl::*;
    use crate::bdms::Bdms;
    use crate::database::running_example;
    use crate::path::path;
    use beliefdb_storage::row;

    fn lazy_running_example() -> LazyBdms {
        let (db, ..) = running_example();
        LazyBdms::from_belief_database(db)
    }

    #[test]
    fn lazy_entailment_matches_eager() {
        let (db, ..) = running_example();
        let eager = Bdms::from_belief_database(&db).unwrap();
        let mut lazy = LazyBdms::from_belief_database(db.clone());
        for t in db.mentioned_tuples() {
            for p in [
                path(&[1]),
                path(&[2]),
                path(&[2, 1]),
                path(&[1, 2]),
                path(&[3, 2, 1]),
            ] {
                for sign in [Sign::Pos, Sign::Neg] {
                    let stmt = BeliefStatement::new(p.clone(), t.clone(), sign);
                    assert_eq!(
                        lazy.entails(&stmt),
                        eager.entails(&stmt).unwrap(),
                        "lazy vs eager on {stmt}"
                    );
                }
            }
        }
        assert!(lazy.cached_worlds() >= 5);
    }

    #[test]
    fn lazy_queries_match_eager_queries() {
        let (db, alice, _, _) = running_example();
        let eager = Bdms::from_belief_database(&db).unwrap();
        let lazy = LazyBdms::from_belief_database(db.clone());
        let s = db.schema().relation_id("Sightings").unwrap();
        let args = vec![qv("y"), qv("z"), qv("u"), qv("v"), qv("w")];
        let q = Bcq::builder(vec![qv("x")])
            .negative(vec![pv("x")], s, args.clone())
            .positive(vec![pu(alice)], s, args)
            .build(db.schema())
            .unwrap();
        assert_eq!(lazy.query(&q).unwrap(), eager.query(&q).unwrap());
    }

    #[test]
    fn lazy_inserts_are_cheap_and_invalidate() {
        let mut lazy = lazy_running_example();
        let s = lazy.schema().relation_id("Sightings").unwrap();
        let heron = GroundTuple::new(s, row!["s9", "Alice", "heron", "7-01-08", "Lake Placid"]);
        // Warm the cache.
        let _ = lazy.world(&path(&[2, 1]));
        assert!(lazy.cached_worlds() > 0);
        let out = lazy
            .insert_statement(&BeliefStatement::positive(
                BeliefPath::root(),
                heron.clone(),
            ))
            .unwrap();
        assert_eq!(out, InsertOutcome::Inserted);
        assert_eq!(lazy.cached_worlds(), 0, "cache invalidated");
        // The new fact flows through defaults lazily.
        assert!(lazy.entails(&BeliefStatement::positive(path(&[2, 1]), heron)));
    }

    #[test]
    fn lazy_rejects_inconsistent_inserts() {
        let mut lazy = lazy_running_example();
        let s = lazy.schema().relation_id("Sightings").unwrap();
        // Bob explicitly believes raven@s2; a second positive on the same
        // key must be rejected, same as Algorithm 4.
        let heron = GroundTuple::new(s, row!["s2", "Alice", "heron", "6-14-08", "Lake Placid"]);
        let out = lazy
            .insert_statement(&BeliefStatement::positive(path(&[2]), heron))
            .unwrap();
        assert_eq!(out, InsertOutcome::Rejected);
        // Duplicates are reported as such.
        let raven = GroundTuple::new(s, row!["s2", "Alice", "raven", "6-14-08", "Lake Placid"]);
        let out = lazy
            .insert_statement(&BeliefStatement::positive(path(&[2]), raven))
            .unwrap();
        assert_eq!(out, InsertOutcome::AlreadyExplicit);
    }

    #[test]
    fn lazy_delete_restores_defaults() {
        let mut lazy = lazy_running_example();
        let s = lazy.schema().relation_id("Sightings").unwrap();
        let s11 = GroundTuple::new(
            s,
            row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
        );
        let stmt = BeliefStatement::negative(path(&[2]), s11.clone());
        assert!(lazy.delete_statement(&stmt).unwrap());
        assert!(!lazy.delete_statement(&stmt).unwrap());
        assert!(lazy.entails(&BeliefStatement::positive(path(&[2]), s11)));
    }

    #[test]
    fn lazy_footprint_is_much_smaller_than_eager() {
        // The headline claim of Sect. 6.3: explicit-only storage is O(n).
        let (db, ..) = running_example();
        let eager = Bdms::from_belief_database(&db).unwrap();
        let lazy = LazyBdms::from_belief_database(db);
        assert!(lazy.stored_tuples() <= eager.stats().total_tuples);
    }
}
