//! Typed identifiers.

use beliefdb_storage::Value;
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The identifier as a storage [`Value`].
            pub fn value(self) -> Value {
                Value::Int(self.0 as i64)
            }

            /// Recover the identifier from a storage [`Value`].
            pub fn from_value(v: &Value) -> Option<Self> {
                v.as_int().and_then(|i| u32::try_from(i).ok()).map($name)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type! {
    /// A user id (the paper's `U = {1, ..., m}`).
    UserId
}

id_type! {
    /// An external relation id (position in the external schema).
    RelId
}

id_type! {
    /// A belief-world id (`wid` in the internal schema, Fig. 5).
    /// The root world `ε` always has id 0.
    Wid
}

id_type! {
    /// An internal tuple id (`tid` in the internal schema, Fig. 5).
    Tid
}

impl Wid {
    /// The root world `ε`.
    pub const ROOT: Wid = Wid(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let u = UserId(42);
        assert_eq!(u.value(), Value::Int(42));
        assert_eq!(UserId::from_value(&u.value()), Some(u));
        assert_eq!(UserId::from_value(&Value::str("x")), None);
        assert_eq!(UserId::from_value(&Value::Int(-1)), None);
    }

    #[test]
    fn root_world() {
        assert_eq!(Wid::ROOT, Wid(0));
        assert_eq!(Wid::ROOT.value(), Value::Int(0));
    }

    #[test]
    fn ids_are_distinct_types() {
        // Won't compile if the macro generated a shared type:
        let _: UserId = UserId(1);
        let _: Wid = Wid(1);
        let _: Tid = Tid(1);
        let _: RelId = RelId(1);
        assert_eq!(format!("{}", Tid(7)), "7");
    }
}
