//! Belief paths (the paper's `Û*`, Sect. 3.2).
//!
//! A belief path `w = w[1]···w[d]` is a sequence of user ids in which the
//! same user never appears in adjacent positions: `Û* = {w ∈ U* | w[i] ≠
//! w[i+1]}`. The empty path `ε` denotes the database-content world.
//!
//! This module provides the path algebra the canonical Kripke construction
//! relies on: prefixes (`States(D)` is prefix-closed), suffixes (edges go to
//! the *deepest suffix state*), and the `drop_first` operation `w ↦ w[2,d]`
//! along which implicit beliefs flow (user `i` prefixes statements of world
//! `w` into world `i·w`).

use crate::error::{BeliefError, Result};
use crate::ids::UserId;
use std::fmt;

/// A validated belief path in `Û*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BeliefPath(Vec<UserId>);

impl BeliefPath {
    /// The empty path `ε` (the database-content world).
    pub fn root() -> Self {
        BeliefPath(Vec::new())
    }

    /// Build a path, validating the adjacent-distinctness invariant.
    pub fn new(users: impl Into<Vec<UserId>>) -> Result<Self> {
        let users = users.into();
        for pair in users.windows(2) {
            if pair[0] == pair[1] {
                return Err(BeliefError::InvalidPath(format!(
                    "user {} repeated in adjacent positions",
                    pair[0]
                )));
            }
        }
        Ok(BeliefPath(users))
    }

    /// Single-user path.
    pub fn user(u: UserId) -> Self {
        BeliefPath(vec![u])
    }

    /// Depth `d = |w|` (the paper's nesting depth).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    pub fn users(&self) -> &[UserId] {
        &self.0
    }

    /// First user `w[1]`, if any.
    pub fn first(&self) -> Option<UserId> {
        self.0.first().copied()
    }

    /// Last user `w[d]`, if any.
    pub fn last(&self) -> Option<UserId> {
        self.0.last().copied()
    }

    /// Prefix `w[1,len]`.
    pub fn prefix(&self, len: usize) -> BeliefPath {
        BeliefPath(self.0[..len.min(self.0.len())].to_vec())
    }

    /// The suffix `w[2,d]` (drop the first user). Implicit beliefs at `w`
    /// are inherited from the world at `w[2,d]` (Def. 9: `iϕ` lands in
    /// world `i·v` when `ϕ` is in world `v`).
    pub fn drop_first(&self) -> BeliefPath {
        BeliefPath(self.0.get(1..).unwrap_or(&[]).to_vec())
    }

    /// The suffix `w[p,d]` using the paper's 1-based indexing (`p = 1` is
    /// the whole path; `p = d+1` is `ε`).
    pub fn suffix_from(&self, p: usize) -> BeliefPath {
        let start = p.saturating_sub(1).min(self.0.len());
        BeliefPath(self.0[start..].to_vec())
    }

    /// All suffixes from longest (the path itself) to shortest (`ε`).
    pub fn suffixes(&self) -> impl Iterator<Item = BeliefPath> + '_ {
        (0..=self.0.len()).map(move |i| BeliefPath(self.0[i..].to_vec()))
    }

    /// All proper prefixes plus the path itself, from `ε` to `w`.
    pub fn prefixes(&self) -> impl Iterator<Item = BeliefPath> + '_ {
        (0..=self.0.len()).map(move |i| BeliefPath(self.0[..i].to_vec()))
    }

    /// True iff `self` is a suffix of `other`.
    pub fn is_suffix_of(&self, other: &BeliefPath) -> bool {
        other.0.ends_with(&self.0)
    }

    /// True iff `self` is a *proper* suffix of `other`.
    pub fn is_proper_suffix_of(&self, other: &BeliefPath) -> bool {
        self.0.len() < other.0.len() && self.is_suffix_of(other)
    }

    /// True iff `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &BeliefPath) -> bool {
        other.0.starts_with(&self.0)
    }

    /// Append a user: `w · i`. Fails if `i` equals the last user.
    pub fn push(&self, u: UserId) -> Result<BeliefPath> {
        if self.last() == Some(u) {
            return Err(BeliefError::InvalidPath(format!(
                "cannot extend path {self} with user {u}: adjacent repetition"
            )));
        }
        let mut v = self.0.clone();
        v.push(u);
        Ok(BeliefPath(v))
    }

    /// Prepend a user: `i · w` (the default-rule direction of Def. 9).
    /// Fails if `i` equals the first user.
    pub fn prepend(&self, u: UserId) -> Result<BeliefPath> {
        if self.first() == Some(u) {
            return Err(BeliefError::InvalidPath(format!(
                "cannot prepend user {u} to path {self}: adjacent repetition"
            )));
        }
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(u);
        v.extend_from_slice(&self.0);
        Ok(BeliefPath(v))
    }

    /// Can `w · i` be formed (i.e. `i ≠ last(w)`)?
    pub fn can_push(&self, u: UserId) -> bool {
        self.last() != Some(u)
    }
}

impl fmt::Display for BeliefPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        for (i, u) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{u}")?;
        }
        Ok(())
    }
}

impl From<UserId> for BeliefPath {
    fn from(u: UserId) -> Self {
        BeliefPath::user(u)
    }
}

/// Build a path from raw user numbers, panicking on invalid input.
/// Intended for tests and examples.
pub fn path(users: &[u32]) -> BeliefPath {
    BeliefPath::new(users.iter().map(|&u| UserId(u)).collect::<Vec<_>>())
        .expect("invalid belief path literal")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_adjacent_repeats() {
        assert!(BeliefPath::new(vec![UserId(1), UserId(2), UserId(1)]).is_ok());
        assert!(matches!(
            BeliefPath::new(vec![UserId(1), UserId(1)]),
            Err(BeliefError::InvalidPath(_))
        ));
        assert!(BeliefPath::new(vec![]).is_ok());
    }

    #[test]
    fn push_and_prepend() {
        let w = path(&[1, 2]);
        assert_eq!(w.push(UserId(1)).unwrap(), path(&[1, 2, 1]));
        assert!(w.push(UserId(2)).is_err());
        assert!(w.can_push(UserId(3)));
        assert!(!w.can_push(UserId(2)));
        assert_eq!(w.prepend(UserId(2)).unwrap(), path(&[2, 1, 2]));
        assert!(w.prepend(UserId(1)).is_err());
        assert_eq!(BeliefPath::root().push(UserId(5)).unwrap(), path(&[5]));
    }

    #[test]
    fn prefixes_and_suffixes() {
        let w = path(&[2, 1, 3]);
        let prefixes: Vec<_> = w.prefixes().collect();
        assert_eq!(
            prefixes,
            vec![path(&[]), path(&[2]), path(&[2, 1]), path(&[2, 1, 3])]
        );
        let suffixes: Vec<_> = w.suffixes().collect();
        assert_eq!(
            suffixes,
            vec![path(&[2, 1, 3]), path(&[1, 3]), path(&[3]), path(&[])]
        );
        assert_eq!(w.prefix(2), path(&[2, 1]));
        assert_eq!(w.prefix(99), w);
        assert_eq!(w.drop_first(), path(&[1, 3]));
        assert_eq!(BeliefPath::root().drop_first(), BeliefPath::root());
    }

    #[test]
    fn paper_suffix_indexing() {
        // w[p,d] with 1-based p: w[1,d] = w, w[2,d] drops the first user,
        // w[d+1,d] = ε.
        let w = path(&[2, 1, 3]);
        assert_eq!(w.suffix_from(1), w);
        assert_eq!(w.suffix_from(2), path(&[1, 3]));
        assert_eq!(w.suffix_from(3), path(&[3]));
        assert_eq!(w.suffix_from(4), path(&[]));
    }

    #[test]
    fn suffix_and_prefix_relations() {
        let w = path(&[2, 1, 3]);
        assert!(path(&[1, 3]).is_suffix_of(&w));
        assert!(path(&[1, 3]).is_proper_suffix_of(&w));
        assert!(w.is_suffix_of(&w));
        assert!(!w.is_proper_suffix_of(&w));
        assert!(!path(&[2, 1]).is_suffix_of(&w));
        assert!(path(&[2, 1]).is_prefix_of(&w));
        assert!(BeliefPath::root().is_suffix_of(&w));
        assert!(BeliefPath::root().is_prefix_of(&w));
    }

    #[test]
    fn accessors_and_display() {
        let w = path(&[2, 1]);
        assert_eq!(w.depth(), 2);
        assert_eq!(w.first(), Some(UserId(2)));
        assert_eq!(w.last(), Some(UserId(1)));
        assert!(!w.is_root());
        assert!(BeliefPath::root().is_root());
        assert_eq!(w.to_string(), "2·1");
        assert_eq!(BeliefPath::root().to_string(), "ε");
        let single: BeliefPath = UserId(4).into();
        assert_eq!(single, path(&[4]));
    }

    #[test]
    #[should_panic(expected = "invalid belief path literal")]
    fn path_literal_panics_on_invalid() {
        let _ = path(&[1, 1]);
    }
}
