//! # beliefdb-core
//!
//! A faithful implementation of **belief databases** — "Believe It or Not:
//! Adding Belief Annotations to Databases" (Gatterbauer, Balazinska,
//! Khoussainova, Suciu; VLDB 2009).
//!
//! A belief database annotates ordinary relational tuples with *belief
//! statements* `w t^s`: a belief path `w` (a sequence of users, e.g.
//! "Bob believes Alice believes"), a ground tuple `t`, and a sign. The
//! semantics is a fragment of multi-agent epistemic logic with the
//! *message-board assumption*: by default every user believes every stated
//! belief, unless they explicitly contradict it.
//!
//! ## Layer map (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | Sect. 3.1 belief worlds, Γ1/Γ2, Prop. 7 | [`world`] |
//! | Sect. 3.2 belief databases, `Û*` paths | [`database`], [`path`], [`statement`] |
//! | Def. 9–12 message-board closure `D̄` | [`closure`] |
//! | Sect. 4 Kripke structures, Def. 16/Thm. 17 | [`kripke`], [`canonical`] |
//! | Sect. 5.1 internal schema `R*` + Alg. 2–4 | [`internal`] |
//! | Sect. 3.3 / 5.2 BCQ + Algorithm 1 | [`bcq`] |
//! | The prototype BDMS | [`bdms`] |
//!
//! ## Quick start
//!
//! ```
//! use beliefdb_core::prelude::*;
//! use beliefdb_storage::row;
//!
//! let schema = ExternalSchema::new().with_relation("S", &["sid", "species"]);
//! let mut bdms = Bdms::new(schema).unwrap();
//! let alice = bdms.add_user("Alice").unwrap();
//! let bob = bdms.add_user("Bob").unwrap();
//!
//! // Alice believes she saw a crow; Bob believes it was a raven.
//! let s = bdms.schema().relation_id("S").unwrap();
//! bdms.insert(BeliefPath::user(alice), s, row!["s1", "crow"], Sign::Pos).unwrap();
//! bdms.insert(BeliefPath::user(bob), s, row!["s1", "raven"], Sign::Pos).unwrap();
//!
//! // Bob's world entails the *unstated* negative for the crow tuple.
//! let crow = GroundTuple::new(s, row!["s1", "crow"]);
//! assert!(bdms.entails(&BeliefStatement::negative(BeliefPath::user(bob), crow)).unwrap());
//! ```

pub mod bcq;
pub mod bdms;
pub mod canonical;
pub mod closure;
pub mod database;
pub mod error;
pub mod ids;
pub mod internal;
pub mod kripke;
pub mod lazy;
pub mod path;
pub mod persist;
pub mod schema;
pub mod statement;
pub mod world;

pub use bdms::{Bdms, PlanCacheStats};
pub use canonical::CanonicalKripke;
pub use closure::Closure;
pub use database::{running_example, BeliefDatabase};
pub use error::{BeliefError, Result};
pub use ids::{RelId, Tid, UserId, Wid};
pub use kripke::Kripke;
pub use lazy::LazyBdms;
pub use path::BeliefPath;
pub use persist::{PersistOptions, WalStats};
pub use schema::{naturemapping_schema, ExternalSchema, RelationDef};
pub use statement::{BeliefStatement, GroundTuple, Sign};
pub use world::BeliefWorld;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::bcq::{Bcq, PathElem, QueryTerm, Subgoal, UserAtom};
    pub use crate::bdms::Bdms;
    pub use crate::canonical::CanonicalKripke;
    pub use crate::closure::Closure;
    pub use crate::database::BeliefDatabase;
    pub use crate::error::{BeliefError, Result};
    pub use crate::ids::{RelId, Tid, UserId, Wid};
    pub use crate::path::BeliefPath;
    pub use crate::schema::{ExternalSchema, RelationDef};
    pub use crate::statement::{BeliefStatement, GroundTuple, Sign};
    pub use crate::world::BeliefWorld;
}
