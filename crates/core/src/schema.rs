//! The external schema `R = (R1, ..., Rr)` (Sect. 3).
//!
//! This is how users see the non-annotated data. Each relation's *first*
//! attribute is its distinguished primary key (`key_i`). The internal
//! schema `R*` derived from it lives in [`crate::internal`].

use crate::error::{BeliefError, Result};
use crate::ids::RelId;
use beliefdb_storage::Row;

/// One external relation `Ri(key, att2, ..., attl)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDef {
    name: String,
    columns: Vec<String>,
}

impl RelationDef {
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        let name = name.into();
        assert!(
            !columns.is_empty(),
            "relation `{name}` needs at least a key column"
        );
        RelationDef {
            name,
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Name of the distinguished key attribute (always the first column).
    pub fn key_column(&self) -> &str {
        &self.columns[0]
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// The external schema: an ordered list of relations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExternalSchema {
    relations: Vec<RelationDef>,
}

impl ExternalSchema {
    pub fn new() -> Self {
        ExternalSchema::default()
    }

    /// Add a relation; its first column is the primary key.
    pub fn add_relation(&mut self, name: impl Into<String>, columns: &[&str]) -> Result<RelId> {
        let def = RelationDef::new(name, columns);
        if self.relations.iter().any(|r| r.name == def.name) {
            return Err(BeliefError::DuplicateRelation(def.name));
        }
        self.relations.push(def);
        Ok(RelId((self.relations.len() - 1) as u32))
    }

    /// Builder-style variant of [`ExternalSchema::add_relation`].
    pub fn with_relation(mut self, name: impl Into<String>, columns: &[&str]) -> Self {
        self.add_relation(name, columns)
            .expect("duplicate relation in schema literal");
        self
    }

    pub fn relations(&self) -> &[RelationDef] {
        &self.relations
    }

    pub fn relation(&self, id: RelId) -> Result<&RelationDef> {
        self.relations
            .get(id.0 as usize)
            .ok_or_else(|| BeliefError::NoSuchRelation(format!("#{id}")))
    }

    pub fn relation_id(&self, name: &str) -> Result<RelId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(|i| RelId(i as u32))
            .ok_or_else(|| BeliefError::NoSuchRelation(name.to_string()))
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Validate that `row` fits relation `rel`.
    pub fn check_tuple(&self, rel: RelId, row: &Row) -> Result<()> {
        let def = self.relation(rel)?;
        if row.arity() != def.arity() {
            return Err(BeliefError::ArityMismatch {
                relation: def.name.clone(),
                expected: def.arity(),
                got: row.arity(),
            });
        }
        Ok(())
    }
}

/// The running example's schema (Sect. 2):
/// `Sightings(sid, uid, species, date, location)`,
/// `Comments(cid, comment, sid)`.
///
/// The `Users` relation of the paper is the user catalog and is managed by
/// the BDMS itself, not by the external schema.
pub fn naturemapping_schema() -> ExternalSchema {
    ExternalSchema::new()
        .with_relation("Sightings", &["sid", "uid", "species", "date", "location"])
        .with_relation("Comments", &["cid", "comment", "sid"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use beliefdb_storage::row;

    #[test]
    fn add_and_lookup() {
        let s = naturemapping_schema();
        assert_eq!(s.len(), 2);
        let sightings = s.relation_id("Sightings").unwrap();
        assert_eq!(sightings, RelId(0));
        let def = s.relation(sightings).unwrap();
        assert_eq!(def.name(), "Sightings");
        assert_eq!(def.arity(), 5);
        assert_eq!(def.key_column(), "sid");
        assert_eq!(def.column_index("species"), Some(2));
        assert_eq!(def.column_index("nope"), None);
        assert!(s.relation_id("Nope").is_err());
        assert!(s.relation(RelId(9)).is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = naturemapping_schema();
        assert!(matches!(
            s.add_relation("Sightings", &["sid"]),
            Err(BeliefError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn tuple_check() {
        let s = naturemapping_schema();
        let rel = s.relation_id("Comments").unwrap();
        assert!(s
            .check_tuple(rel, &row!["c1", "found feathers", "s2"])
            .is_ok());
        assert!(matches!(
            s.check_tuple(rel, &row!["c1"]),
            Err(BeliefError::ArityMismatch {
                expected: 3,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    #[should_panic(expected = "at least a key column")]
    fn empty_relation_panics() {
        let _ = RelationDef::new("T", &[]);
    }
}
