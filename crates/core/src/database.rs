//! The belief database `D`: a set of belief statements (Def. 8), organized
//! as explicit belief worlds `D_w`, plus the user registry `U`.

use crate::error::{BeliefError, Result};
use crate::ids::UserId;
use crate::path::BeliefPath;
use crate::schema::ExternalSchema;
use crate::statement::{BeliefStatement, GroundTuple};
use crate::world::BeliefWorld;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An in-memory belief database: the logical object of Sections 3–4,
/// independent of the relational encoding (which lives in
/// [`crate::internal`]).
#[derive(Debug, Clone)]
pub struct BeliefDatabase {
    schema: Arc<ExternalSchema>,
    users: Vec<(UserId, String)>,
    worlds: BTreeMap<BeliefPath, BeliefWorld>,
}

impl BeliefDatabase {
    pub fn new(schema: ExternalSchema) -> Self {
        BeliefDatabase {
            schema: Arc::new(schema),
            users: Vec::new(),
            worlds: BTreeMap::new(),
        }
    }

    pub fn schema(&self) -> &ExternalSchema {
        &self.schema
    }

    pub fn schema_arc(&self) -> Arc<ExternalSchema> {
        Arc::clone(&self.schema)
    }

    /// Register a user. Ids are assigned 1, 2, 3, ... (the paper's
    /// `U = {1, ..., m}`).
    pub fn add_user(&mut self, name: impl Into<String>) -> Result<UserId> {
        let name = name.into();
        if self.users.iter().any(|(_, n)| *n == name) {
            return Err(BeliefError::DuplicateUser(name));
        }
        let id = UserId(self.users.len() as u32 + 1);
        self.users.push((id, name));
        Ok(id)
    }

    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.users.iter().map(|(id, _)| *id)
    }

    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    pub fn user_name(&self, id: UserId) -> Result<&str> {
        self.users
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, n)| n.as_str())
            .ok_or_else(|| BeliefError::NoSuchUser(format!("#{id}")))
    }

    pub fn user_by_name(&self, name: &str) -> Result<UserId> {
        self.users
            .iter()
            .find(|(_, n)| n == name)
            .map(|(i, _)| *i)
            .ok_or_else(|| BeliefError::NoSuchUser(name.to_string()))
    }

    pub fn has_user(&self, id: UserId) -> bool {
        self.users.iter().any(|(i, _)| *i == id)
    }

    fn check_statement(&self, stmt: &BeliefStatement) -> Result<()> {
        self.schema.check_tuple(stmt.tuple.rel, &stmt.tuple.row)?;
        for u in stmt.path.users() {
            if !self.has_user(*u) {
                return Err(BeliefError::NoSuchUser(format!("#{u}")));
            }
        }
        Ok(())
    }

    /// Insert a belief statement, rejecting it if it would make the explicit
    /// world at its path inconsistent (Γ1/Γ2 of Prop. 5) — the behaviour of
    /// Algorithm 4's consistency gate. Returns `false` if the statement was
    /// already present.
    pub fn insert(&mut self, stmt: BeliefStatement) -> Result<bool> {
        self.check_statement(&stmt)?;
        let world = self.worlds.entry(stmt.path.clone()).or_default();
        if world.contains(&stmt.tuple, stmt.sign) {
            return Ok(false);
        }
        if !world.can_accept(&stmt.tuple, stmt.sign) {
            return Err(BeliefError::Inconsistent(format!(
                "statement {stmt} conflicts with explicit beliefs at {}",
                stmt.path
            )));
        }
        world.add(stmt.tuple, stmt.sign);
        Ok(true)
    }

    /// Insert without the consistency gate (Def. 8 allows arbitrary sets;
    /// used to test consistency detection).
    pub fn insert_unchecked(&mut self, stmt: BeliefStatement) -> Result<bool> {
        self.check_statement(&stmt)?;
        let world = self.worlds.entry(stmt.path.clone()).or_default();
        Ok(world.add(stmt.tuple, stmt.sign))
    }

    /// Remove an explicit statement. Returns `true` iff it was present.
    pub fn remove(&mut self, stmt: &BeliefStatement) -> bool {
        if let Some(world) = self.worlds.get_mut(&stmt.path) {
            let removed = world.remove(&stmt.tuple, stmt.sign);
            if world.is_empty() {
                self.worlds.remove(&stmt.path);
            }
            removed
        } else {
            false
        }
    }

    /// The explicit belief world `D_w` (Def. 8(3)). Empty if no statement
    /// mentions `w`.
    pub fn explicit_world(&self, path: &BeliefPath) -> BeliefWorld {
        self.worlds.get(path).cloned().unwrap_or_default()
    }

    /// Borrow the explicit world at `w`, if non-empty.
    pub fn explicit_world_ref(&self, path: &BeliefPath) -> Option<&BeliefWorld> {
        self.worlds.get(path)
    }

    /// `Supp(D)`: belief paths with a non-empty explicit world.
    pub fn support(&self) -> impl Iterator<Item = &BeliefPath> {
        self.worlds.keys()
    }

    /// `States(D)`: all prefixes of support paths (prefix-closed, includes
    /// `ε`), in deterministic order.
    pub fn states(&self) -> Vec<BeliefPath> {
        let mut states = std::collections::BTreeSet::new();
        states.insert(BeliefPath::root());
        for w in self.worlds.keys() {
            for p in w.prefixes() {
                states.insert(p);
            }
        }
        states.into_iter().collect()
    }

    /// `dss(w)`: the deepest suffix of `w` that is a state of `D`.
    pub fn dss(&self, path: &BeliefPath) -> BeliefPath {
        let states: std::collections::BTreeSet<BeliefPath> = self.states().into_iter().collect();
        path.suffixes()
            .find(|s| states.contains(s))
            .unwrap_or_else(BeliefPath::root)
    }

    /// All explicit statements, in deterministic order.
    pub fn statements(&self) -> Vec<BeliefStatement> {
        let mut out = Vec::new();
        for (path, world) in &self.worlds {
            for (tuple, sign) in world.signed_tuples() {
                out.push(BeliefStatement::new(path.clone(), tuple, sign));
            }
        }
        out
    }

    /// Number of explicit statements `n = |D|`.
    pub fn len(&self) -> usize {
        self.worlds.values().map(|w| w.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Maximum nesting depth `d` over all statements.
    pub fn max_depth(&self) -> usize {
        self.worlds.keys().map(|p| p.depth()).max().unwrap_or(0)
    }

    /// Is every explicit world consistent (Def. 8(4))?
    pub fn is_consistent(&self) -> bool {
        self.worlds.values().all(|w| w.is_consistent())
    }

    /// Does `D` contain this exact statement?
    pub fn contains(&self, stmt: &BeliefStatement) -> bool {
        self.worlds
            .get(&stmt.path)
            .is_some_and(|w| w.contains(&stmt.tuple, stmt.sign))
    }

    /// Collect the tuple universe actually mentioned in `D` (used by the
    /// naive query evaluator to enumerate candidate tuples).
    pub fn mentioned_tuples(&self) -> Vec<GroundTuple> {
        let mut set = std::collections::BTreeSet::new();
        for world in self.worlds.values() {
            for (t, _) in world.signed_tuples() {
                set.insert(t);
            }
        }
        set.into_iter().collect()
    }
}

/// Build the running example of the paper (Sect. 2 / Fig. 2): users Alice,
/// Bob, Carol; statements i1–i8 over the NatureMapping schema.
///
/// Returns the database plus the user ids `(alice, bob, carol)`.
pub fn running_example() -> (BeliefDatabase, UserId, UserId, UserId) {
    use crate::schema::naturemapping_schema;
    use beliefdb_storage::row;

    let mut db = BeliefDatabase::new(naturemapping_schema());
    let alice = db.add_user("Alice").unwrap();
    let bob = db.add_user("Bob").unwrap();
    let carol = db.add_user("Carol").unwrap();

    let sightings = db.schema().relation_id("Sightings").unwrap();
    let comments = db.schema().relation_id("Comments").unwrap();

    let s11 = GroundTuple::new(
        sightings,
        row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
    );
    let s12 = GroundTuple::new(
        sightings,
        row!["s1", "Carol", "fish eagle", "6-14-08", "Lake Forest"],
    );
    let s21 = GroundTuple::new(
        sightings,
        row!["s2", "Alice", "crow", "6-14-08", "Lake Placid"],
    );
    let s22 = GroundTuple::new(
        sightings,
        row!["s2", "Alice", "raven", "6-14-08", "Lake Placid"],
    );
    let c11 = GroundTuple::new(comments, row!["c1", "found feathers", "s2"]);
    let c21 = GroundTuple::new(comments, row!["c2", "black feathers", "s2"]);
    let c22 = GroundTuple::new(comments, row!["c2", "purple-black feathers", "s2"]);

    let root = BeliefPath::root();
    let p_alice = BeliefPath::user(alice);
    let p_bob = BeliefPath::user(bob);
    let p_bob_alice = BeliefPath::new(vec![bob, alice]).unwrap();

    // i1: Carol inserts the bald-eagle sighting (root world).
    db.insert(BeliefStatement::positive(root, s11.clone()))
        .unwrap();
    // i2, i3: Bob disbelieves both eagle alternatives.
    db.insert(BeliefStatement::negative(p_bob.clone(), s11))
        .unwrap();
    db.insert(BeliefStatement::negative(p_bob.clone(), s12))
        .unwrap();
    // i4, i5: Alice believes the crow sighting and her comment.
    db.insert(BeliefStatement::positive(p_alice.clone(), s21))
        .unwrap();
    db.insert(BeliefStatement::positive(p_alice, c11)).unwrap();
    // i6: Bob believes Alice saw a raven.
    db.insert(BeliefStatement::positive(p_bob.clone(), s22))
        .unwrap();
    // i7: Bob believes Alice believes the feathers were black.
    db.insert(BeliefStatement::positive(p_bob_alice, c21))
        .unwrap();
    // i8: Bob believes the feathers were purple-black.
    db.insert(BeliefStatement::positive(p_bob, c22)).unwrap();

    (db, alice, bob, carol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelId;
    use crate::path::path;
    use beliefdb_storage::row;

    fn small_db() -> BeliefDatabase {
        let mut schema = ExternalSchema::new();
        schema.add_relation("S", &["sid", "species"]).unwrap();
        let mut db = BeliefDatabase::new(schema);
        db.add_user("Alice").unwrap();
        db.add_user("Bob").unwrap();
        db
    }

    fn t(key: &str, species: &str) -> GroundTuple {
        GroundTuple::new(RelId(0), row![key, species])
    }

    #[test]
    fn user_registry() {
        let mut db = small_db();
        assert_eq!(db.user_count(), 2);
        assert_eq!(db.user_by_name("Alice").unwrap(), UserId(1));
        assert_eq!(db.user_name(UserId(2)).unwrap(), "Bob");
        assert!(db.user_by_name("Dora").is_err());
        assert!(db.user_name(UserId(9)).is_err());
        assert!(matches!(
            db.add_user("Alice"),
            Err(BeliefError::DuplicateUser(_))
        ));
        let dora = db.add_user("Dora").unwrap();
        assert_eq!(dora, UserId(3));
    }

    #[test]
    fn insert_validates_statement() {
        let mut db = small_db();
        // unknown user in path
        let bad = BeliefStatement::positive(path(&[9]), t("s1", "crow"));
        assert!(matches!(db.insert(bad), Err(BeliefError::NoSuchUser(_))));
        // wrong arity
        let bad = BeliefStatement::positive(
            BeliefPath::root(),
            GroundTuple::new(RelId(0), row!["s1", "x", "extra"]),
        );
        assert!(matches!(
            db.insert(bad),
            Err(BeliefError::ArityMismatch { .. })
        ));
        // unknown relation
        let bad =
            BeliefStatement::positive(BeliefPath::root(), GroundTuple::new(RelId(7), row!["k"]));
        assert!(db.insert(bad).is_err());
    }

    #[test]
    fn insert_gates_consistency() {
        let mut db = small_db();
        db.insert(BeliefStatement::positive(path(&[1]), t("s1", "crow")))
            .unwrap();
        // conflicting positive on the same key: rejected
        let err = db
            .insert(BeliefStatement::positive(path(&[1]), t("s1", "raven")))
            .unwrap_err();
        assert!(matches!(err, BeliefError::Inconsistent(_)));
        // same tuple negative: rejected (Γ2)
        assert!(db
            .insert(BeliefStatement::negative(path(&[1]), t("s1", "crow")))
            .is_err());
        // different-key positive: fine; duplicate returns false
        assert!(db
            .insert(BeliefStatement::positive(path(&[1]), t("s2", "owl")))
            .unwrap());
        assert!(!db
            .insert(BeliefStatement::positive(path(&[1]), t("s2", "owl")))
            .unwrap());
        assert!(db.is_consistent());
    }

    #[test]
    fn unchecked_insert_can_create_inconsistency() {
        let mut db = small_db();
        db.insert_unchecked(BeliefStatement::positive(path(&[1]), t("s1", "crow")))
            .unwrap();
        db.insert_unchecked(BeliefStatement::positive(path(&[1]), t("s1", "raven")))
            .unwrap();
        assert!(!db.is_consistent());
    }

    #[test]
    fn remove_statements() {
        let mut db = small_db();
        let stmt = BeliefStatement::positive(path(&[1]), t("s1", "crow"));
        db.insert(stmt.clone()).unwrap();
        assert!(db.contains(&stmt));
        assert!(db.remove(&stmt));
        assert!(!db.remove(&stmt));
        assert!(!db.contains(&stmt));
        assert!(db.is_empty());
        // removing from a never-touched path
        assert!(!db.remove(&BeliefStatement::positive(path(&[2]), t("s9", "x"))));
    }

    #[test]
    fn support_and_states_are_prefix_closed() {
        let mut db = small_db();
        db.add_user("Carol").unwrap();
        db.insert(BeliefStatement::positive(path(&[2, 1, 3]), t("s1", "crow")))
            .unwrap();
        db.insert(BeliefStatement::positive(path(&[3]), t("s2", "owl")))
            .unwrap();
        let support: Vec<_> = db.support().cloned().collect();
        assert_eq!(support, vec![path(&[2, 1, 3]), path(&[3])]);
        let states = db.states();
        assert_eq!(
            states,
            vec![
                path(&[]),
                path(&[2]),
                path(&[2, 1]),
                path(&[2, 1, 3]),
                path(&[3])
            ]
        );
    }

    #[test]
    fn dss_finds_deepest_suffix_state() {
        let mut db = small_db();
        db.add_user("Carol").unwrap();
        db.insert(BeliefStatement::positive(path(&[2, 1]), t("s1", "crow")))
            .unwrap();
        // states: ε, 2, 2·1
        assert_eq!(db.dss(&path(&[2, 1])), path(&[2, 1]));
        assert_eq!(db.dss(&path(&[3, 2, 1])), path(&[2, 1]));
        assert_eq!(db.dss(&path(&[1])), path(&[]));
        assert_eq!(db.dss(&path(&[1, 2])), path(&[2]));
        assert_eq!(db.dss(&path(&[])), path(&[]));
    }

    #[test]
    fn statement_listing_and_counts() {
        let mut db = small_db();
        db.insert(BeliefStatement::positive(
            BeliefPath::root(),
            t("s1", "crow"),
        ))
        .unwrap();
        db.insert(BeliefStatement::negative(path(&[2]), t("s1", "crow")))
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.max_depth(), 1);
        let stmts = db.statements();
        assert_eq!(stmts.len(), 2);
        assert!(db.contains(&stmts[0]));
        assert!(db.contains(&stmts[1]));
        assert_eq!(db.mentioned_tuples(), vec![t("s1", "crow")]);
    }

    #[test]
    fn running_example_matches_fig2() {
        let (db, alice, bob, _carol) = running_example();
        assert!(db.is_consistent());
        assert_eq!(db.len(), 8);
        assert_eq!(db.max_depth(), 2);

        // Explicit worlds of Sect. 3.2:
        // D_Bob = ({s22, c22}, {s11, s12})
        let bob_world = db.explicit_world(&BeliefPath::user(bob));
        assert_eq!(bob_world.pos_len(), 2);
        assert_eq!(bob_world.neg_len(), 2);
        // D_Bob·Alice = ({c21}, ∅)
        let ba = db.explicit_world(&BeliefPath::new(vec![bob, alice]).unwrap());
        assert_eq!(ba.pos_len(), 1);
        assert_eq!(ba.neg_len(), 0);
        // states: ε, Alice(1), Bob(2), Bob·Alice(2·1)
        let states = db.states();
        assert_eq!(states.len(), 4);
    }
}
