//! Rooted Kripke structures (Sect. 4).
//!
//! `K = (V, (W_v)_{v∈V}, (E_i)_{i∈U}, v0)`: states carrying belief worlds,
//! per-user accessibility relations, and a root. Entailment is the standard
//! recursive definition:
//!
//! ```text
//! (K, v) |= t^s   iff  W_v |= t^s           (Def. 6 / Prop. 7)
//! (K, v) |= □_i ϕ iff  ∀(v,v') ∈ E_i. (K, v') |= ϕ
//! ```
//!
//! This module is the *generic* structure — arbitrary edge relations, used
//! to validate the canonical construction of [`crate::canonical`] (whose
//! edges are deterministic) against the textbook semantics.

use crate::ids::UserId;
use crate::statement::{BeliefStatement, GroundTuple, Sign};
use crate::world::BeliefWorld;
use std::collections::HashMap;

/// Index of a state in a [`Kripke`] structure.
pub type StateId = usize;

/// A rooted Kripke structure over belief worlds.
#[derive(Debug, Clone, Default)]
pub struct Kripke {
    worlds: Vec<BeliefWorld>,
    edges: HashMap<(StateId, UserId), Vec<StateId>>,
    root: StateId,
}

impl Kripke {
    pub fn new() -> Self {
        Kripke::default()
    }

    /// Add a state with its belief world; returns its id. The first state
    /// added becomes the root unless [`Kripke::set_root`] is called.
    pub fn add_state(&mut self, world: BeliefWorld) -> StateId {
        self.worlds.push(world);
        self.worlds.len() - 1
    }

    pub fn set_root(&mut self, root: StateId) {
        assert!(root < self.worlds.len(), "root must be an existing state");
        self.root = root;
    }

    pub fn root(&self) -> StateId {
        self.root
    }

    pub fn state_count(&self) -> usize {
        self.worlds.len()
    }

    pub fn world(&self, v: StateId) -> &BeliefWorld {
        &self.worlds[v]
    }

    /// Add an edge `(from, to)` to the accessibility relation `E_user`.
    pub fn add_edge(&mut self, from: StateId, user: UserId, to: StateId) {
        assert!(from < self.worlds.len() && to < self.worlds.len());
        self.edges.entry((from, user)).or_default().push(to);
    }

    /// Successors of `v` under user `i`.
    pub fn successors(&self, v: StateId, user: UserId) -> &[StateId] {
        self.edges
            .get(&(v, user))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|v| v.len()).sum()
    }

    /// `(K, v) |= ϕ` for a belief statement `ϕ = w t^s`, by structural
    /// recursion on the path. Note the ∀ over successors: a state with *no*
    /// `i`-successor vacuously satisfies every `□_i ϕ`.
    pub fn entails_at(&self, v: StateId, stmt: &BeliefStatement) -> bool {
        self.entails_rec(v, stmt.path.users(), &stmt.tuple, stmt.sign)
    }

    /// `K |= ϕ` — entailment at the root.
    pub fn entails(&self, stmt: &BeliefStatement) -> bool {
        self.entails_at(self.root, stmt)
    }

    fn entails_rec(&self, v: StateId, path: &[UserId], tuple: &GroundTuple, sign: Sign) -> bool {
        match path.split_first() {
            None => self.worlds[v].entails(tuple, sign),
            Some((first, rest)) => self
                .successors(v, *first)
                .iter()
                .all(|&v2| self.entails_rec(v2, rest, tuple, sign)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelId;
    use crate::path::{path, BeliefPath};
    use beliefdb_storage::row;

    fn t(key: &str, species: &str) -> GroundTuple {
        GroundTuple::new(RelId(0), row![key, species])
    }

    fn world(pos: &[GroundTuple], neg: &[GroundTuple]) -> BeliefWorld {
        let mut w = BeliefWorld::new();
        for p in pos {
            w.add_pos(p.clone());
        }
        for n in neg {
            w.add_neg(n.clone());
        }
        w
    }

    /// The canonical Kripke structure of Fig. 4, built by hand:
    /// #0 root {s11+}, #1 Alice {s11+, s21+, c11+}, #2 Bob {s11−, s12−,
    /// s22+, c22+}, #3 Bob·Alice {s11+, s21+, c11+, c21+} (tuples simplified
    /// to a 2-column schema for the test).
    fn fig4() -> Kripke {
        let alice = UserId(1);
        let bob = UserId(2);
        let carol = UserId(3);
        let s11 = t("s1", "bald eagle");
        let s12 = t("s1", "fish eagle");
        let s21 = t("s2", "crow");
        let s22 = t("s2", "raven");
        let c11 = t("c1", "found feathers");
        let c21 = t("c2", "black feathers");
        let c22 = t("c2", "purple-black feathers");

        let mut k = Kripke::new();
        let v0 = k.add_state(world(std::slice::from_ref(&s11), &[]));
        let v1 = k.add_state(world(&[s11.clone(), s21.clone(), c11.clone()], &[]));
        let v2 = k.add_state(world(
            &[s22.clone(), c22.clone()],
            &[s11.clone(), s12.clone()],
        ));
        let v3 = k.add_state(world(&[s11, s21, c11, c21], &[]));
        k.set_root(v0);
        // Edges as drawn in Fig. 4.
        k.add_edge(v0, alice, v1);
        k.add_edge(v0, bob, v2);
        k.add_edge(v0, carol, v0);
        k.add_edge(v1, bob, v2);
        k.add_edge(v1, carol, v0);
        k.add_edge(v2, alice, v3);
        k.add_edge(v2, carol, v0);
        k.add_edge(v3, bob, v2);
        k.add_edge(v3, carol, v0);
        k
    }

    #[test]
    fn ground_entailment_at_root() {
        let k = fig4();
        assert!(k.entails(&BeliefStatement::positive(
            BeliefPath::root(),
            t("s1", "bald eagle")
        )));
        assert!(!k.entails(&BeliefStatement::positive(
            BeliefPath::root(),
            t("s2", "crow")
        )));
    }

    #[test]
    fn modal_entailment_follows_edges() {
        let k = fig4();
        // Bob believes the raven tuple: K |= □2 s22+.
        assert!(k.entails(&BeliefStatement::positive(path(&[2]), t("s2", "raven"))));
        // Bob disbelieves the bald eagle (stated negative).
        assert!(k.entails(&BeliefStatement::negative(
            path(&[2]),
            t("s1", "bald eagle")
        )));
        // Bob believes Alice believes the crow.
        assert!(k.entails(&BeliefStatement::positive(path(&[2, 1]), t("s2", "crow"))));
        // Bob's unstated negative: crow conflicts with his raven.
        assert!(k.entails(&BeliefStatement::negative(path(&[2]), t("s2", "crow"))));
        // Carol's edge loops to the root: she believes the eagle.
        assert!(k.entails(&BeliefStatement::positive(
            path(&[3]),
            t("s1", "bald eagle")
        )));
        // Deeper loop: Carol believes Bob believes Alice believes the crow.
        assert!(k.entails(&BeliefStatement::positive(
            path(&[3, 2, 1]),
            t("s2", "crow")
        )));
    }

    #[test]
    fn missing_edges_are_vacuous() {
        let k = fig4();
        // No edge labelled 1 from state #1 (Alice's own world): □1 from
        // there is vacuously true for any statement... but paths are in Û*,
        // so this only shows through a user with no edges at all.
        let dora = UserId(9);
        assert!(k.entails(&BeliefStatement::positive(
            BeliefPath::user(dora),
            t("zz", "anything")
        )));
    }

    #[test]
    fn multiple_successors_require_all() {
        let alice = UserId(1);
        let mut k = Kripke::new();
        let v0 = k.add_state(BeliefWorld::new());
        let v1 = k.add_state(world(&[t("s1", "crow")], &[]));
        let v2 = k.add_state(world(&[t("s1", "crow"), t("s2", "owl")], &[]));
        k.set_root(v0);
        k.add_edge(v0, alice, v1);
        k.add_edge(v0, alice, v2);
        // crow holds in both successors; owl only in one.
        assert!(k.entails(&BeliefStatement::positive(path(&[1]), t("s1", "crow"))));
        assert!(!k.entails(&BeliefStatement::positive(path(&[1]), t("s2", "owl"))));
        assert_eq!(k.successors(v0, alice).len(), 2);
        assert_eq!(k.edge_count(), 2);
    }

    #[test]
    fn state_accessors() {
        let k = fig4();
        assert_eq!(k.state_count(), 4);
        assert_eq!(k.root(), 0);
        assert_eq!(k.world(1).pos_len(), 3);
        assert_eq!(k.edge_count(), 9);
        assert!(k.successors(1, UserId(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "root must be an existing state")]
    fn invalid_root_panics() {
        let mut k = Kripke::new();
        k.set_root(3);
    }
}
