//! The relational representation of a belief database (Sect. 5 of the
//! paper): internal schema `R* = (R*_1..R*_r, U, V_1..V_r, E, D, S)` over
//! the [`beliefdb_storage`] engine, with the update algorithms
//! `idWorld` (Alg. 2), `dss` (Alg. 3) and `insertTuple` (Alg. 4).
//!
//! ## Internal schema (Fig. 5)
//!
//! | Table | Columns | Key |
//! |---|---|---|
//! | `{R}__star` | `tid, key, att2, ...` | `tid` |
//! | `U` | `uid, name` | `uid` |
//! | `V__{R}` | `wid, tid, key, s, e` | multiset, index `(wid, key)` |
//! | `E` | `wid1, uid, wid2` | multiset, index `(wid1, uid)` |
//! | `D` | `wid, d` | `wid` |
//! | `S` | `wid1, wid2` | `wid1` |
//!
//! `s` is the sign (`'+'`/`'-'`), `e` records whether the tuple is explicit
//! (`'y'`) or implied by the message-board assumption (`'n'`).
//!
//! ## Fidelity notes
//!
//! * The world directory (`wid ↔ belief path`) is kept in memory as a cache
//!   of what `E`/`D` encode relationally; `dss` walks it directly instead of
//!   running Algorithm 3's `E*`-join + MAX query each time (same result,
//!   same information source).
//! * `insertTuple` is implemented as Algorithm 4 *reformulated per key
//!   slice*: an insert/delete of key `k` at world `w` recomputes the
//!   `(world, k)` slice of `V` for `w` and each dependent world (worlds
//!   having `w` as proper suffix) in ascending depth order, from the world's
//!   explicit tuples plus its suffix-parent slice (`S`). This follows the
//!   overriding-union characterization of Thm. 17(2a) / Fig. 9 and fixes a
//!   corner case in the paper's pseudo-code where a dependent world could
//!   retain a stale implicit tuple after its parent chain changed (the
//!   formal spec, Def. 9, always wins; see `slices.rs`). Deletes use the
//!   same machinery, which is why they "follow a similar semantics as
//!   inserts" (Sect. 5.3).
//! * Worlds are never destroyed by deletes; a state with an empty explicit
//!   world is transparent (its entailed world equals its suffix-parent's),
//!   so keeping it does not change any query answer.

mod ops;
mod slices;
mod worlds;

pub use worlds::WorldDirectory;

use crate::error::{BeliefError, Result};
use crate::ids::{RelId, Tid, UserId, Wid};
use crate::path::BeliefPath;
use crate::schema::ExternalSchema;
use crate::statement::{GroundTuple, Sign};
use crate::world::BeliefWorld;
use beliefdb_storage::{Database, Row, TableSchema, Value};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Result of an insert attempt (Algorithm 4's return value, refined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The statement was recorded and propagated.
    Inserted,
    /// The statement was already explicitly present (Alg. 4 line 3).
    AlreadyExplicit,
    /// The tuple was implicitly present with the same sign; it is now
    /// explicit (Alg. 4 line 4).
    MadeExplicit,
    /// The statement conflicts with explicit beliefs at the world (Γ1/Γ2)
    /// and was rejected (Alg. 4 line 5 failing).
    Rejected,
}

impl InsertOutcome {
    /// Did the database content change?
    pub fn changed(self) -> bool {
        matches!(self, InsertOutcome::Inserted | InsertOutcome::MadeExplicit)
    }

    /// Algorithm 4's boolean: was the statement accepted (present
    /// explicitly afterwards)?
    pub fn accepted(self) -> bool {
        !matches!(self, InsertOutcome::Rejected)
    }
}

/// Interned `'y'` / `'n'` values for the explicitness flag.
pub(crate) fn explicit_value(explicit: bool) -> Value {
    static YES: OnceLock<Arc<str>> = OnceLock::new();
    static NO: OnceLock<Arc<str>> = OnceLock::new();
    if explicit {
        Value::Str(YES.get_or_init(|| Arc::from("y")).clone())
    } else {
        Value::Str(NO.get_or_init(|| Arc::from("n")).clone())
    }
}

/// Name of the internal content table `R*_i` for external relation `name`.
pub fn star_table(name: &str) -> String {
    format!("{name}__star")
}

/// Name of the valuation table `V_i` for external relation `name`.
pub fn v_table(name: &str) -> String {
    format!("V__{name}")
}

/// Fixed internal table names.
pub const U_TABLE: &str = "U";
pub const E_TABLE: &str = "E";
pub const D_TABLE: &str = "D";
pub const S_TABLE: &str = "S";

/// Index name on every `V__{R}` table covering `(wid, key)`.
pub const V_BY_WID_KEY: &str = "by_wid_key";
/// Index name on every `V__{R}` table covering `(wid)` — used when copying
/// a whole world (Alg. 2 line 9) and for world dumps.
pub const V_BY_WID: &str = "by_wid";
/// Index name on `E` covering `(wid1, uid)`.
pub const E_BY_SRC_USER: &str = "by_src_user";
/// Index name on `E` covering `(wid1)` — the hop lookups of the `E*` walk.
pub const E_BY_SRC: &str = "by_src";

/// The materialized canonical representation: a [`Database`] holding the
/// internal schema, plus the in-memory mirrors (world directory, user list,
/// tuple-id cache) that the update algorithms consult.
pub struct InternalStore {
    pub(crate) db: Database,
    pub(crate) schema: Arc<ExternalSchema>,
    pub(crate) users: Vec<(UserId, String)>,
    pub(crate) dir: WorldDirectory,
    pub(crate) next_tid: u32,
    /// Reverse lookup `ground tuple → tid` (an in-memory unique index over
    /// `R*` minus the tid column).
    pub(crate) tid_cache: HashMap<GroundTuple, Tid>,
    /// Optimizer statistics, shared across queries and refreshed lazily
    /// (table versions detect staleness, so refresh is O(#tables) when the
    /// store has not mutated).
    pub(crate) stats: std::sync::Mutex<beliefdb_storage::StatsCatalog>,
    /// Optimized-plan cache for the Datalog programs BCQ translation
    /// emits, keyed by (program text, table versions): repeat queries
    /// against an unmutated store skip every optimizer rewrite pass.
    /// Invalidation is coarse — entries record every table's version,
    /// so any insert/delete makes *all* entries stale until re-planned.
    /// `Arc`-shared so the `sys.plan_cache` virtual table can snapshot
    /// it at scan time without a reference back into the store.
    pub(crate) plan_cache: Arc<std::sync::Mutex<beliefdb_storage::datalog::PlanCache>>,
}

impl InternalStore {
    /// Create the internal schema for an external one and initialize the
    /// root world (`wid 0`, depth 0).
    pub fn new(schema: ExternalSchema) -> Result<Self> {
        let schema = Arc::new(schema);
        let mut db = Database::new();

        for rel in schema.relations() {
            // R*_i(tid, key, att2, ...): one extra surrogate-key column.
            let mut cols: Vec<&str> = vec!["tid"];
            cols.extend(rel.columns().iter().map(|c| c.as_str()));
            db.create_table(TableSchema::with_key(star_table(rel.name()), &cols))?;

            // V_i(wid, tid, key, s, e): multiset with the slice index.
            let vt = db.create_table(TableSchema::keyless(
                v_table(rel.name()),
                &["wid", "tid", "key", "s", "e"],
            ))?;
            vt.create_index(V_BY_WID_KEY, &["wid", "key"])?;
            vt.create_index(V_BY_WID, &["wid"])?;
        }

        db.create_table(TableSchema::with_key(U_TABLE, &["uid", "name"]))?;
        let e = db.create_table(TableSchema::keyless(E_TABLE, &["wid1", "uid", "wid2"]))?;
        e.create_index(E_BY_SRC_USER, &["wid1", "uid"])?;
        e.create_index(E_BY_SRC, &["wid1"])?;
        db.create_table(TableSchema::with_key(D_TABLE, &["wid", "d"]))?;
        db.create_table(TableSchema::with_key(S_TABLE, &["wid1", "wid2"]))?;

        // Root world ε: D(0, 0). No S entry (ε has no suffix parent).
        let mut dir = WorldDirectory::new();
        let root = dir.insert(BeliefPath::root());
        debug_assert_eq!(root, Wid::ROOT);
        db.table_mut(D_TABLE)?
            .insert(Row::new(vec![Wid::ROOT.value(), Value::Int(0)]))?;

        Ok(InternalStore {
            db,
            schema,
            users: Vec::new(),
            dir,
            stats: std::sync::Mutex::new(beliefdb_storage::StatsCatalog::default()),
            plan_cache: Arc::new(std::sync::Mutex::new(
                beliefdb_storage::datalog::PlanCache::new(),
            )),
            next_tid: 0,
            tid_cache: HashMap::new(),
        })
    }

    pub fn schema(&self) -> &ExternalSchema {
        &self.schema
    }

    pub fn schema_arc(&self) -> Arc<ExternalSchema> {
        Arc::clone(&self.schema)
    }

    /// The underlying relational database (read-only).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database, for registering
    /// `sys.*` virtual-table providers at engine construction.
    pub(crate) fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// A shared handle to the optimized-plan cache (the `sys.plan_cache`
    /// provider holds one).
    pub(crate) fn plan_cache_handle(
        &self,
    ) -> Arc<std::sync::Mutex<beliefdb_storage::datalog::PlanCache>> {
        Arc::clone(&self.plan_cache)
    }

    /// An up-to-date optimizer statistics snapshot for the internal
    /// database. The snapshot is cached across queries; only tables whose
    /// mutation version changed are recomputed.
    pub fn stats_catalog(&self) -> beliefdb_storage::StatsCatalog {
        let mut cache = self.stats.lock().expect("stats lock poisoned");
        cache.refresh(&self.db);
        cache.clone()
    }

    /// Run `f` with exclusive access to the store's optimized-plan cache
    /// (see [`beliefdb_storage::datalog::PlanCache`]).
    pub fn with_plan_cache<R>(
        &self,
        f: impl FnOnce(&mut beliefdb_storage::datalog::PlanCache) -> R,
    ) -> R {
        let mut cache = self.plan_cache.lock().expect("plan cache lock poisoned");
        f(&mut cache)
    }

    pub fn directory(&self) -> &WorldDirectory {
        &self.dir
    }

    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.users.iter().map(|(u, _)| *u)
    }

    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    pub fn user_name(&self, id: UserId) -> Result<&str> {
        self.users
            .iter()
            .find(|(u, _)| *u == id)
            .map(|(_, n)| n.as_str())
            .ok_or_else(|| BeliefError::NoSuchUser(format!("#{id}")))
    }

    pub fn user_by_name(&self, name: &str) -> Result<UserId> {
        self.users
            .iter()
            .find(|(_, n)| n == name)
            .map(|(u, _)| *u)
            .ok_or_else(|| BeliefError::NoSuchUser(name.to_string()))
    }

    pub fn has_user(&self, id: UserId) -> bool {
        self.users.iter().any(|(u, _)| *u == id)
    }

    /// Register a new user (Sect. 5.3 "Other updates"): a `U` row plus an
    /// edge labelled by the new user from every world to the root (the new
    /// user has no states, so `dss(w·u) = ε` everywhere).
    pub fn add_user(&mut self, name: impl Into<String>) -> Result<UserId> {
        let name = name.into();
        if self.users.iter().any(|(_, n)| *n == name) {
            return Err(BeliefError::DuplicateUser(name));
        }
        let id = UserId(self.users.len() as u32 + 1);
        self.db
            .table_mut(U_TABLE)?
            .insert(Row::new(vec![id.value(), Value::str(&name)]))?;
        self.users.push((id, name));
        for wid in self.dir.wids() {
            let path = self.dir.path(wid).clone();
            let target = match path.push(id) {
                Ok(extended) => self.dir.dss(&extended),
                Err(_) => continue,
            };
            self.db.table_mut(E_TABLE)?.insert(Row::new(vec![
                wid.value(),
                id.value(),
                target.value(),
            ]))?;
        }
        Ok(id)
    }

    /// The internal tuple id for a ground tuple, creating the `R*` row on
    /// first sight (Alg. 4 line 1).
    pub(crate) fn tid_of_or_create(&mut self, tuple: &GroundTuple) -> Result<Tid> {
        if let Some(&tid) = self.tid_cache.get(tuple) {
            return Ok(tid);
        }
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        let rel_name = self.schema.relation(tuple.rel)?.name().to_string();
        let mut vals = Vec::with_capacity(tuple.row.arity() + 1);
        vals.push(tid.value());
        vals.extend(tuple.row.values().iter().cloned());
        self.db
            .table_mut(&star_table(&rel_name))?
            .insert(Row::new(vals))?;
        self.tid_cache.insert(tuple.clone(), tid);
        Ok(tid)
    }

    /// Look up the ground tuple for a tid.
    pub fn tuple_of(&self, rel: RelId, tid: Tid) -> Result<GroundTuple> {
        let rel_name = self.schema.relation(rel)?.name().to_string();
        let table = self.db.table(&star_table(&rel_name))?;
        let row = table.get_by_key(&tid.value()).ok_or_else(|| {
            BeliefError::MalformedQuery(format!("dangling tid {tid} in relation {rel_name}"))
        })?;
        Ok(GroundTuple::new(rel, row.suffix(1)))
    }

    /// Total number of tuples in the internal database — the paper's
    /// `|R*|` size measure.
    pub fn total_tuples(&self) -> usize {
        self.db.total_tuples()
    }

    /// Per-table sizes for reporting.
    pub fn table_sizes(&self) -> Vec<(String, usize)> {
        self.db
            .table_sizes()
            .into_iter()
            .map(|(n, c)| (n.to_string(), c))
            .collect()
    }

    /// Resolve a belief path to the state whose world carries its entailed
    /// content (`dss`, since non-state paths are transparent).
    pub fn resolve(&self, path: &BeliefPath) -> Wid {
        self.dir.dss(path)
    }

    /// Materialize the entailed belief world at a path from the `V` tables.
    pub fn world(&self, path: &BeliefPath) -> Result<BeliefWorld> {
        let wid = self.resolve(path);
        let mut world = BeliefWorld::new();
        for rel in self.schema.relations() {
            let rel_id = self.schema.relation_id(rel.name())?;
            let vt = self.db.table(&v_table(rel.name()))?;
            for row in vt.index_rows(V_BY_WID, &[wid.value()])? {
                let tid = Tid::from_value(&row[1]).expect("tid column");
                let tuple = self.tuple_of(rel_id, tid)?;
                let sign = Sign::from_value(&row[3]).expect("sign column");
                world.add(tuple, sign);
            }
        }
        Ok(world)
    }

    /// World-level entailment `D |= w t^s` directly off the `(wid, key)`
    /// slice — the fast path used by [`crate::bdms::Bdms::entails`].
    pub fn entails(&self, path: &BeliefPath, tuple: &GroundTuple, sign: Sign) -> Result<bool> {
        let wid = self.resolve(path);
        let rel_name = self.schema.relation(tuple.rel)?.name().to_string();
        let vt = self.db.table(&v_table(&rel_name))?;
        let slice = vt.index_rows(V_BY_WID_KEY, &[wid.value(), tuple.key().clone()])?;
        let tid = self.tid_cache.get(tuple).copied();
        match sign {
            Sign::Pos => {
                let Some(tid) = tid else { return Ok(false) };
                Ok(slice
                    .iter()
                    .any(|r| r[1] == tid.value() && r[3] == Sign::Pos.value()))
            }
            Sign::Neg => {
                // Stated negative: exact tid with '-'; unstated: any other
                // positive tid in the slice (Prop. 7).
                for r in slice {
                    if r[3] == Sign::Neg.value() {
                        if let Some(tid) = tid {
                            if r[1] == tid.value() {
                                return Ok(true);
                            }
                        }
                    } else if tid.is_none_or(|t| r[1] != t.value()) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Reconstruct the logical belief database (explicit statements only)
    /// from the `V` tables — the inverse of ingestion, used by the
    /// differential tests.
    pub fn to_belief_database(&self) -> Result<crate::database::BeliefDatabase> {
        let mut out = crate::database::BeliefDatabase::new((*self.schema).clone());
        for (_, name) in &self.users {
            out.add_user(name.clone())?;
        }
        for rel in self.schema.relations() {
            let rel_id = self.schema.relation_id(rel.name())?;
            let vt = self.db.table(&v_table(rel.name()))?;
            for (_, row) in vt.iter() {
                if row[4] != explicit_value(true) {
                    continue;
                }
                let wid = Wid::from_value(&row[0]).expect("wid column");
                let tid = Tid::from_value(&row[1]).expect("tid column");
                let sign = Sign::from_value(&row[3]).expect("sign column");
                let tuple = self.tuple_of(rel_id, tid)?;
                let path = self.dir.path(wid).clone();
                out.insert_unchecked(crate::statement::BeliefStatement::new(path, tuple, sign))?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beliefdb_storage::row;

    fn schema() -> ExternalSchema {
        ExternalSchema::new().with_relation("S", &["sid", "species"])
    }

    #[test]
    fn fresh_store_has_internal_schema_and_root() {
        let store = InternalStore::new(schema()).unwrap();
        let names = store.database().table_names();
        assert_eq!(names, vec!["D", "E", "S", "S__star", "U", "V__S"]);
        // Root world: exactly the D(0,0) row.
        assert_eq!(store.total_tuples(), 1);
        assert_eq!(store.resolve(&BeliefPath::root()), Wid::ROOT);
        assert_eq!(store.directory().len(), 1);
    }

    #[test]
    fn add_user_creates_back_edges() {
        let mut store = InternalStore::new(schema()).unwrap();
        let alice = store.add_user("Alice").unwrap();
        assert_eq!(alice, UserId(1));
        // E(0, 1, 0): Alice loops on the root.
        let e = store.database().table(E_TABLE).unwrap();
        assert_eq!(e.len(), 1);
        let rows = e.scan();
        assert_eq!(rows[0], row![0, 1, 0]);
        assert_eq!(store.user_by_name("Alice").unwrap(), alice);
        assert_eq!(store.user_name(alice).unwrap(), "Alice");
        assert!(store.add_user("Alice").is_err());
        assert!(store.user_by_name("Zoe").is_err());
    }

    #[test]
    fn tid_allocation_is_stable() {
        let mut store = InternalStore::new(schema()).unwrap();
        let rel = store.schema().relation_id("S").unwrap();
        let t1 = GroundTuple::new(rel, row!["s1", "crow"]);
        let t2 = GroundTuple::new(rel, row!["s1", "raven"]);
        let a = store.tid_of_or_create(&t1).unwrap();
        let b = store.tid_of_or_create(&t2).unwrap();
        let a2 = store.tid_of_or_create(&t1).unwrap();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(store.database().table("S__star").unwrap().len(), 2);
        assert_eq!(store.tuple_of(rel, a).unwrap(), t1);
        assert_eq!(store.tuple_of(rel, b).unwrap(), t2);
        assert!(store.tuple_of(rel, Tid(99)).is_err());
    }

    #[test]
    fn insert_outcome_helpers() {
        assert!(InsertOutcome::Inserted.changed());
        assert!(InsertOutcome::MadeExplicit.changed());
        assert!(!InsertOutcome::AlreadyExplicit.changed());
        assert!(!InsertOutcome::Rejected.changed());
        assert!(InsertOutcome::AlreadyExplicit.accepted());
        assert!(!InsertOutcome::Rejected.accepted());
    }

    #[test]
    fn naming_helpers() {
        assert_eq!(star_table("Sightings"), "Sightings__star");
        assert_eq!(v_table("Sightings"), "V__Sightings");
        assert_eq!(explicit_value(true), Value::str("y"));
        assert_eq!(explicit_value(false), Value::str("n"));
    }
}
