//! Statement-level updates: `insertTuple` (Algorithm 4) and deletes.

use super::slices::SliceEntry;
use super::{explicit_value, v_table, InsertOutcome, InternalStore};
use crate::error::{BeliefError, Result};
use crate::path::BeliefPath;
use crate::statement::{BeliefStatement, GroundTuple, Sign};
use beliefdb_storage::Row;

impl InternalStore {
    /// Validate a statement's relation arity and user ids without
    /// mutating anything. The durability layer calls this before
    /// appending a record, so a logged mutation always applies cleanly
    /// on replay.
    pub(crate) fn check_statement(&self, path: &BeliefPath, tuple: &GroundTuple) -> Result<()> {
        self.schema.check_tuple(tuple.rel, &tuple.row)?;
        for u in path.users() {
            if !self.has_user(*u) {
                return Err(BeliefError::NoSuchUser(format!("#{u}")));
            }
        }
        Ok(())
    }

    /// `insertTuple` (Algorithm 4): insert the signed tuple into world
    /// `path` if consistent with the world's *explicit* beliefs, then
    /// propagate through the dependent worlds.
    ///
    /// Like the paper's procedure, this creates the world (and the `R*`
    /// row) even when the statement itself ends up rejected.
    pub fn insert(
        &mut self,
        path: &BeliefPath,
        tuple: &GroundTuple,
        sign: Sign,
    ) -> Result<InsertOutcome> {
        self.check_statement(path, tuple)?;
        let wid = self.ensure_world(path)?;
        let tid = self.tid_of_or_create(tuple)?;
        let key = tuple.key().clone();

        // T1: the world's tuples with this key (Alg. 4 line 2).
        let slice = self.read_slice(tuple.rel, wid, &key)?;
        let mine = slice.iter().find(|e| e.tid == tid && e.sign == sign);
        match mine {
            // line 3: already explicitly present.
            Some(SliceEntry { explicit: true, .. }) => return Ok(InsertOutcome::AlreadyExplicit),
            // line 4: implicitly present — promote to explicit. Content of
            // this world and all dependents is unchanged.
            Some(SliceEntry {
                explicit: false, ..
            }) => {
                self.set_explicit_flag(tuple.rel, wid, tid, sign, true)?;
                return Ok(InsertOutcome::MadeExplicit);
            }
            None => {}
        }

        // line 5: consistency against *explicit* tuples only (implicit ones
        // are overridden by the new statement).
        let conflict = match sign {
            Sign::Pos => slice.iter().any(|e| {
                e.explicit && ((e.sign == Sign::Neg && e.tid == tid) || e.sign == Sign::Pos)
            }),
            Sign::Neg => slice
                .iter()
                .any(|e| e.explicit && e.sign == Sign::Pos && e.tid == tid),
        };
        if conflict {
            return Ok(InsertOutcome::Rejected);
        }

        // lines 6–7: record the explicit tuple; the slice rebuild evicts any
        // implicit tuples it overrides.
        let rel_name = self.schema.relation(tuple.rel)?.name().to_string();
        self.db
            .table_mut(&v_table(&rel_name))?
            .insert(Row::new(vec![
                wid.value(),
                tid.value(),
                key.clone(),
                sign.value(),
                explicit_value(true),
            ]))?;
        // lines 8–14: recompute this world's key slice and propagate to the
        // dependent worlds in ascending depth order.
        self.propagate_key(tuple.rel, path, &key)?;
        Ok(InsertOutcome::Inserted)
    }

    /// Insert a [`BeliefStatement`].
    pub fn insert_statement(&mut self, stmt: &BeliefStatement) -> Result<InsertOutcome> {
        self.insert(&stmt.path, &stmt.tuple, stmt.sign)
    }

    /// Delete an explicit statement ("deletes follow a similar semantics as
    /// inserts", Sect. 5.3): retract the explicit mark and recompute the key
    /// slice here and at all dependents — the tuple may be re-inherited
    /// from the suffix parent, or vanish entirely. Returns `true` iff the
    /// statement was explicitly present.
    pub fn delete(&mut self, path: &BeliefPath, tuple: &GroundTuple, sign: Sign) -> Result<bool> {
        self.check_statement(path, tuple)?;
        let Some(wid) = self.dir.get(path) else {
            return Ok(false);
        };
        let Some(&tid) = self.tid_cache.get(tuple) else {
            return Ok(false);
        };
        let key = tuple.key().clone();

        let slice = self.read_slice(tuple.rel, wid, &key)?;
        if !slice
            .iter()
            .any(|e| e.tid == tid && e.sign == sign && e.explicit)
        {
            return Ok(false);
        }
        let rel_name = self.schema.relation(tuple.rel)?.name().to_string();
        self.db
            .table_mut(&v_table(&rel_name))?
            .delete_by_index_where(super::V_BY_WID_KEY, &[wid.value(), key.clone()], |r| {
                r[1] == tid.value() && r[3] == sign.value() && r[4] == explicit_value(true)
            })?;
        self.propagate_key(tuple.rel, path, &key)?;
        Ok(true)
    }

    /// Delete a [`BeliefStatement`].
    pub fn delete_statement(&mut self, stmt: &BeliefStatement) -> Result<bool> {
        self.delete(&stmt.path, &stmt.tuple, stmt.sign)
    }

    /// Flip the explicitness flag of one `V` row in place.
    fn set_explicit_flag(
        &mut self,
        rel: crate::ids::RelId,
        wid: crate::ids::Wid,
        tid: crate::ids::Tid,
        sign: Sign,
        explicit: bool,
    ) -> Result<()> {
        let rel_name = self.schema.relation(rel)?.name().to_string();
        let key = self.tuple_of(rel, tid)?.key().clone();
        let vt = self.db.table_mut(&v_table(&rel_name))?;
        vt.delete_by_index_where(super::V_BY_WID_KEY, &[wid.value(), key.clone()], |r| {
            r[1] == tid.value() && r[3] == sign.value()
        })?;
        vt.insert(Row::new(vec![
            wid.value(),
            tid.value(),
            key,
            sign.value(),
            explicit_value(explicit),
        ]))?;
        Ok(())
    }

    /// The explicit statements at a path (for introspection and tests).
    pub fn explicit_statements_at(&self, path: &BeliefPath) -> Result<Vec<BeliefStatement>> {
        let Some(wid) = self.dir.get(path) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for rel in self.schema.relations() {
            let rel_id = self.schema.relation_id(rel.name())?;
            let vt = self.db.table(&v_table(rel.name()))?;
            for (_, row) in vt.iter() {
                if row[0] == wid.value() && row[4] == explicit_value(true) {
                    let tid = crate::ids::Tid::from_value(&row[1]).expect("tid column");
                    let sign = Sign::from_value(&row[3]).expect("sign column");
                    out.push(BeliefStatement::new(
                        path.clone(),
                        self.tuple_of(rel_id, tid)?,
                        sign,
                    ));
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{path, BeliefPath};
    use crate::schema::ExternalSchema;
    use beliefdb_storage::row;

    fn store() -> InternalStore {
        let schema = ExternalSchema::new().with_relation("S", &["sid", "species"]);
        let mut s = InternalStore::new(schema).unwrap();
        s.add_user("Alice").unwrap();
        s.add_user("Bob").unwrap();
        s
    }

    fn t(store: &InternalStore, key: &str, species: &str) -> GroundTuple {
        GroundTuple::new(store.schema().relation_id("S").unwrap(), row![key, species])
    }

    #[test]
    fn insert_then_entails() {
        let mut s = store();
        let crow = t(&s, "s1", "crow");
        let out = s.insert(&path(&[1]), &crow, Sign::Pos).unwrap();
        assert_eq!(out, InsertOutcome::Inserted);
        assert!(s.entails(&path(&[1]), &crow, Sign::Pos).unwrap());
        // Bob inherits by default.
        assert!(s.entails(&path(&[2, 1]), &crow, Sign::Pos).unwrap());
        // Root unaffected.
        assert!(!s.entails(&BeliefPath::root(), &crow, Sign::Pos).unwrap());
    }

    #[test]
    fn duplicate_insert_detected() {
        let mut s = store();
        let crow = t(&s, "s1", "crow");
        s.insert(&path(&[1]), &crow, Sign::Pos).unwrap();
        assert_eq!(
            s.insert(&path(&[1]), &crow, Sign::Pos).unwrap(),
            InsertOutcome::AlreadyExplicit
        );
    }

    #[test]
    fn implicit_promotion() {
        let mut s = store();
        let crow = t(&s, "s1", "crow");
        s.insert(&BeliefPath::root(), &crow, Sign::Pos).unwrap();
        // Alice's world exists and holds the implicit crow.
        s.ensure_world(&path(&[1])).unwrap();
        let out = s.insert(&path(&[1]), &crow, Sign::Pos).unwrap();
        assert_eq!(out, InsertOutcome::MadeExplicit);
        // Now explicit at Alice.
        let stmts = s.explicit_statements_at(&path(&[1])).unwrap();
        assert_eq!(stmts.len(), 1);
        // Promotion shields Alice from later root changes... (the root
        // cannot change this key anymore without deleting, but dependents
        // keep working):
        assert!(s.entails(&path(&[2, 1]), &crow, Sign::Pos).unwrap());
    }

    #[test]
    fn conflicting_insert_rejected() {
        let mut s = store();
        let crow = t(&s, "s1", "crow");
        let raven = t(&s, "s1", "raven");
        s.insert(&path(&[1]), &crow, Sign::Pos).unwrap();
        // second positive with the same key
        assert_eq!(
            s.insert(&path(&[1]), &raven, Sign::Pos).unwrap(),
            InsertOutcome::Rejected
        );
        // negative of the explicitly positive tuple
        assert_eq!(
            s.insert(&path(&[1]), &crow, Sign::Neg).unwrap(),
            InsertOutcome::Rejected
        );
        // the rejected raven must not have leaked into any world
        assert!(!s.entails(&path(&[1]), &raven, Sign::Pos).unwrap());
        assert!(!s.entails(&path(&[2, 1]), &raven, Sign::Pos).unwrap());
    }

    #[test]
    fn override_implicit_with_conflicting_belief() {
        let mut s = store();
        let crow = t(&s, "s1", "crow");
        let raven = t(&s, "s1", "raven");
        s.insert(&BeliefPath::root(), &crow, Sign::Pos).unwrap();
        // Bob disagrees with an alternative: implicit crow is evicted.
        assert_eq!(
            s.insert(&path(&[2]), &raven, Sign::Pos).unwrap(),
            InsertOutcome::Inserted
        );
        assert!(s.entails(&path(&[2]), &raven, Sign::Pos).unwrap());
        assert!(!s.entails(&path(&[2]), &crow, Sign::Pos).unwrap());
        assert!(
            s.entails(&path(&[2]), &crow, Sign::Neg).unwrap(),
            "unstated negative"
        );
        // Alice still believes the crow; Bob believes Alice believes it.
        assert!(s.entails(&path(&[1]), &crow, Sign::Pos).unwrap());
        assert!(s.entails(&path(&[2, 1]), &crow, Sign::Pos).unwrap());
    }

    #[test]
    fn negative_insert_blocks_default() {
        let mut s = store();
        let eagle = t(&s, "s1", "eagle");
        s.insert(&BeliefPath::root(), &eagle, Sign::Pos).unwrap();
        assert_eq!(
            s.insert(&path(&[2]), &eagle, Sign::Neg).unwrap(),
            InsertOutcome::Inserted
        );
        assert!(s.entails(&path(&[2]), &eagle, Sign::Neg).unwrap());
        assert!(!s.entails(&path(&[2]), &eagle, Sign::Pos).unwrap());
        // Alice believes Bob disbelieves it.
        assert!(s.entails(&path(&[1, 2]), &eagle, Sign::Neg).unwrap());
    }

    #[test]
    fn delete_reverts_to_default() {
        let mut s = store();
        let eagle = t(&s, "s1", "eagle");
        s.insert(&BeliefPath::root(), &eagle, Sign::Pos).unwrap();
        s.insert(&path(&[2]), &eagle, Sign::Neg).unwrap();
        assert!(!s.entails(&path(&[2]), &eagle, Sign::Pos).unwrap());
        // Bob retracts his disagreement: the default belief returns.
        assert!(s.delete(&path(&[2]), &eagle, Sign::Neg).unwrap());
        assert!(s.entails(&path(&[2]), &eagle, Sign::Pos).unwrap());
        // Deleting again is a no-op.
        assert!(!s.delete(&path(&[2]), &eagle, Sign::Neg).unwrap());
    }

    #[test]
    fn delete_root_fact_clears_all_worlds() {
        let mut s = store();
        let eagle = t(&s, "s1", "eagle");
        s.insert(&BeliefPath::root(), &eagle, Sign::Pos).unwrap();
        s.ensure_world(&path(&[1, 2])).unwrap();
        assert!(s.entails(&path(&[1, 2]), &eagle, Sign::Pos).unwrap());
        assert!(s.delete(&BeliefPath::root(), &eagle, Sign::Pos).unwrap());
        assert!(!s.entails(&BeliefPath::root(), &eagle, Sign::Pos).unwrap());
        assert!(!s.entails(&path(&[1]), &eagle, Sign::Pos).unwrap());
        assert!(!s.entails(&path(&[1, 2]), &eagle, Sign::Pos).unwrap());
    }

    #[test]
    fn delete_does_not_remove_other_users_statements() {
        let mut s = store();
        let eagle = t(&s, "s1", "eagle");
        s.insert(&BeliefPath::root(), &eagle, Sign::Pos).unwrap();
        s.insert(&path(&[1]), &eagle, Sign::Pos).unwrap(); // promote... no: already implicit → MadeExplicit
        assert!(s.delete(&BeliefPath::root(), &eagle, Sign::Pos).unwrap());
        // Alice made it explicit, so she keeps it; Bob loses the default.
        assert!(s.entails(&path(&[1]), &eagle, Sign::Pos).unwrap());
        assert!(!s.entails(&path(&[2]), &eagle, Sign::Pos).unwrap());
        // And Bob believes Alice believes it (chain through Alice).
        assert!(s.entails(&path(&[2, 1]), &eagle, Sign::Pos).unwrap());
    }

    #[test]
    fn insert_validates_inputs() {
        let mut s = store();
        let bad_user = t(&s, "s1", "crow");
        assert!(matches!(
            s.insert(&path(&[9]), &bad_user, Sign::Pos),
            Err(BeliefError::NoSuchUser(_))
        ));
        let bad_arity = GroundTuple::new(s.schema().relation_id("S").unwrap(), row!["k"]);
        assert!(matches!(
            s.insert(&BeliefPath::root(), &bad_arity, Sign::Pos),
            Err(BeliefError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn rejected_insert_still_creates_world_and_star_row() {
        // Faithful to Alg. 4: idWorld and the R* row precede the gate.
        let mut s = store();
        let crow = t(&s, "s1", "crow");
        let raven = t(&s, "s1", "raven");
        s.insert(&path(&[1]), &crow, Sign::Pos).unwrap();
        let before_worlds = s.directory().len();
        // 2·1 inherits crow implicitly; raven overrides it (conflicts are
        // only checked against explicit tuples). Creating 2·1 also creates
        // its prefix [2].
        assert_eq!(
            s.insert(&path(&[2, 1]), &raven, Sign::Pos).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(s.directory().len(), before_worlds + 2);
        // Now force an actual rejection at 2·1 and confirm no world change.
        let owl = t(&s, "s1", "owl");
        assert_eq!(
            s.insert(&path(&[2, 1]), &owl, Sign::Pos).unwrap(),
            InsertOutcome::Rejected
        );
        // owl's R* row exists even though rejected.
        assert!(s.tid_cache.contains_key(&owl));
    }

    #[test]
    fn explicit_statements_listing() {
        let mut s = store();
        let crow = t(&s, "s1", "crow");
        let owl = t(&s, "s2", "owl");
        s.insert(&path(&[1]), &crow, Sign::Pos).unwrap();
        s.insert(&path(&[1]), &owl, Sign::Neg).unwrap();
        let stmts = s.explicit_statements_at(&path(&[1])).unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(s.explicit_statements_at(&path(&[2, 1])).unwrap().is_empty());
        assert!(s.explicit_statements_at(&path(&[1, 2])).unwrap().is_empty());
    }
}
