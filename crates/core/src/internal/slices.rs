//! Per-key slice maintenance of the `V` relations.
//!
//! The message-board closure is *key-local*: whether a tuple `t^s` is
//! inherited by a world depends only on tuples with the same `(relation,
//! key)` already in that world (Γ1 compares keys, Γ2 compares whole tuples
//! — both within one key group). An insert or delete of key `k` at world
//! `w` therefore only changes the `(·, k)` slices of `w` and of its
//! dependent worlds (those with `w` as proper suffix).
//!
//! `recompute_slice` rebuilds one `(world, key)` slice from first
//! principles: the world's explicit tuples win; the suffix parent's slice
//! (read through `S`) contributes every tuple consistent with them — the
//! overriding union of Thm. 17(2a), restricted to one key. Processing
//! dependents in ascending depth order guarantees each world's parent slice
//! is already up to date.
//!
//! This is the behaviour Algorithm 4's dependent-world loop (lines 8–14)
//! aims for; rebuilding the slice instead of patching it also handles the
//! corner case where a dependent world must *drop* a stale implicit tuple
//! (e.g. parent's crow was overridden by raven, so the child's inherited
//! crow must disappear), which the literal pseudo-code misses. Def. 9 wins.

use super::{explicit_value, v_table, InternalStore, V_BY_WID_KEY};
use crate::error::Result;
use crate::ids::{RelId, Tid, Wid};
use crate::statement::Sign;
use beliefdb_storage::{Row, Value};

/// One `V` entry of a slice: `(tid, sign, explicit)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SliceEntry {
    pub tid: Tid,
    pub sign: Sign,
    pub explicit: bool,
}

impl InternalStore {
    /// Read the `(world, key)` slice of `V_rel`.
    pub(crate) fn read_slice(&self, rel: RelId, wid: Wid, key: &Value) -> Result<Vec<SliceEntry>> {
        let rel_name = self.schema.relation(rel)?.name().to_string();
        let vt = self.db.table(&v_table(&rel_name))?;
        let rows = vt.index_rows(V_BY_WID_KEY, &[wid.value(), key.clone()])?;
        Ok(rows
            .into_iter()
            .map(|r| SliceEntry {
                tid: Tid::from_value(&r[1]).expect("tid column"),
                sign: Sign::from_value(&r[3]).expect("sign column"),
                explicit: r[4] == explicit_value(true),
            })
            .collect())
    }

    /// Rebuild the `(world, key)` slice: explicit entries stay; the suffix
    /// parent's entries are inherited when consistent.
    pub(crate) fn recompute_slice(&mut self, rel: RelId, wid: Wid, key: &Value) -> Result<()> {
        let current = self.read_slice(rel, wid, key)?;
        let explicit: Vec<SliceEntry> = current.iter().copied().filter(|e| e.explicit).collect();

        let mut next: Vec<SliceEntry> = explicit;
        if wid != Wid::ROOT {
            let parent = self.suffix_parent(wid)?;
            let parent_slice = self.read_slice(rel, parent, key)?;
            // Positives before negatives keeps the loop order-independent in
            // spirit; within a consistent parent slice it cannot matter.
            for phase in [Sign::Pos, Sign::Neg] {
                for entry in parent_slice.iter().filter(|e| e.sign == phase) {
                    if next
                        .iter()
                        .any(|e| e.tid == entry.tid && e.sign == entry.sign)
                    {
                        continue; // already present (explicitly)
                    }
                    let ok = match entry.sign {
                        // Γ1: no positive occupies the key; Γ2: the tuple is
                        // not negative here.
                        Sign::Pos => !next.iter().any(|e| {
                            e.sign == Sign::Pos || (e.sign == Sign::Neg && e.tid == entry.tid)
                        }),
                        // Γ2 only: the exact tuple is not positive here.
                        Sign::Neg => !next
                            .iter()
                            .any(|e| e.sign == Sign::Pos && e.tid == entry.tid),
                    };
                    if ok {
                        next.push(SliceEntry {
                            tid: entry.tid,
                            sign: entry.sign,
                            explicit: false,
                        });
                    }
                }
            }
        }

        // No-op check as multisets: the stored order (heap/index order) and
        // the rebuilt order (explicit first) differ even when the content is
        // identical.
        let mut a = next.clone();
        let mut b = current;
        let entry_key = |e: &SliceEntry| (e.tid, e.sign, e.explicit);
        a.sort_by_key(entry_key);
        b.sort_by_key(entry_key);
        if a == b {
            return Ok(());
        }
        let rel_name = self.schema.relation(rel)?.name().to_string();
        let vt = self.db.table_mut(&v_table(&rel_name))?;
        vt.delete_by_index(V_BY_WID_KEY, &[wid.value(), key.clone()])?;
        for e in next {
            vt.insert(Row::new(vec![
                wid.value(),
                e.tid.value(),
                key.clone(),
                e.sign.value(),
                explicit_value(e.explicit),
            ]))?;
        }
        Ok(())
    }

    /// Recompute the key slice at `w` and at every dependent world, in
    /// ascending depth order (Alg. 4's propagation loop).
    pub(crate) fn propagate_key(
        &mut self,
        rel: RelId,
        path: &crate::path::BeliefPath,
        key: &Value,
    ) -> Result<()> {
        let wid = self
            .dir
            .get(path)
            .expect("world must exist before propagation");
        self.recompute_slice(rel, wid, key)?;
        for dep in self.dir.dependents(path) {
            self.recompute_slice(rel, dep, key)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{path, BeliefPath};
    use crate::schema::ExternalSchema;
    use crate::statement::GroundTuple;
    use beliefdb_storage::row;

    fn store() -> InternalStore {
        let schema = ExternalSchema::new().with_relation("S", &["sid", "species"]);
        let mut s = InternalStore::new(schema).unwrap();
        s.add_user("Alice").unwrap();
        s.add_user("Bob").unwrap();
        s
    }

    fn insert_explicit(
        store: &mut InternalStore,
        p: &crate::path::BeliefPath,
        key: &str,
        species: &str,
        sign: Sign,
    ) {
        let rel = store.schema().relation_id("S").unwrap();
        let tuple = GroundTuple::new(rel, row![key, species]);
        let wid = store.ensure_world(p).unwrap();
        let tid = store.tid_of_or_create(&tuple).unwrap();
        let vt = store.db.table_mut(&v_table("S")).unwrap();
        // remove a pre-existing implicit copy of the same tid+sign, if any
        vt.delete_where(|r| r[0] == wid.value() && r[1] == tid.value() && r[3] == sign.value())
            .unwrap();
        vt.insert(Row::new(vec![
            wid.value(),
            tid.value(),
            Value::str(key),
            sign.value(),
            explicit_value(true),
        ]))
        .unwrap();
        store.propagate_key(rel, p, &Value::str(key)).unwrap();
    }

    fn slice(
        store: &InternalStore,
        p: &crate::path::BeliefPath,
        key: &str,
    ) -> Vec<(u32, Sign, bool)> {
        let rel = store.schema().relation_id("S").unwrap();
        let wid = store.dir.get(p).unwrap();
        let mut s: Vec<_> = store
            .read_slice(rel, wid, &Value::str(key))
            .unwrap()
            .into_iter()
            .map(|e| (e.tid.0, e.sign, e.explicit))
            .collect();
        s.sort();
        s
    }

    #[test]
    fn root_insert_propagates_to_all_worlds() {
        let mut s = store();
        s.ensure_world(&path(&[1])).unwrap();
        s.ensure_world(&path(&[2, 1])).unwrap();
        insert_explicit(&mut s, &BeliefPath::root(), "s1", "crow", Sign::Pos);
        assert_eq!(
            slice(&s, &BeliefPath::root(), "s1"),
            vec![(0, Sign::Pos, true)]
        );
        assert_eq!(slice(&s, &path(&[1]), "s1"), vec![(0, Sign::Pos, false)]);
        assert_eq!(slice(&s, &path(&[2, 1]), "s1"), vec![(0, Sign::Pos, false)]);
    }

    #[test]
    fn explicit_override_replaces_inherited_tuple() {
        let mut s = store();
        s.ensure_world(&path(&[2, 1])).unwrap();
        insert_explicit(&mut s, &BeliefPath::root(), "s1", "crow", Sign::Pos);
        // Alice overrides with raven: her slice swaps tuples; the dependent
        // 2·1 follows her.
        insert_explicit(&mut s, &path(&[1]), "s1", "raven", Sign::Pos);
        assert_eq!(slice(&s, &path(&[1]), "s1"), vec![(1, Sign::Pos, true)]);
        assert_eq!(slice(&s, &path(&[2, 1]), "s1"), vec![(1, Sign::Pos, false)]);
        // Root unchanged.
        assert_eq!(
            slice(&s, &BeliefPath::root(), "s1"),
            vec![(0, Sign::Pos, true)]
        );
    }

    #[test]
    fn stale_implicit_is_dropped_when_parent_changes() {
        // The corner case the paper's pseudo-code misses: the child has an
        // explicit negative for the *new* tuple; the old inherited tuple
        // must still disappear (nothing implies it anymore).
        let mut s = store();
        s.ensure_world(&path(&[1])).unwrap();
        s.ensure_world(&path(&[2, 1])).unwrap();
        insert_explicit(&mut s, &BeliefPath::root(), "s1", "crow", Sign::Pos); // tid 0
                                                                               // child explicitly denies the raven (tid 1) before it exists upstream
        insert_explicit(&mut s, &path(&[2, 1]), "s1", "raven", Sign::Neg);
        assert_eq!(
            slice(&s, &path(&[2, 1]), "s1"),
            vec![(0, Sign::Pos, false), (1, Sign::Neg, true)]
        );
        // parent (Alice) now overrides crow with raven
        insert_explicit(&mut s, &path(&[1]), "s1", "raven", Sign::Pos);
        // the child: raven blocked (explicit negative), crow no longer
        // implied by anyone — slice must NOT retain the stale crow.
        assert_eq!(slice(&s, &path(&[2, 1]), "s1"), vec![(1, Sign::Neg, true)]);
    }

    #[test]
    fn negative_inherits_unless_blocked() {
        let mut s = store();
        s.ensure_world(&path(&[1])).unwrap();
        s.ensure_world(&path(&[2, 1])).unwrap();
        insert_explicit(&mut s, &path(&[1]), "s1", "crow", Sign::Neg);
        // 2·1 inherits the stated negative.
        assert_eq!(slice(&s, &path(&[2, 1]), "s1"), vec![(0, Sign::Neg, false)]);
        // but a world that explicitly believes crow does not:
        insert_explicit(&mut s, &path(&[2, 1]), "s1", "crow", Sign::Pos);
        assert_eq!(slice(&s, &path(&[2, 1]), "s1"), vec![(0, Sign::Pos, true)]);
    }

    #[test]
    fn multiple_negatives_coexist_in_slice() {
        let mut s = store();
        insert_explicit(&mut s, &path(&[2]), "s1", "bald eagle", Sign::Neg);
        insert_explicit(&mut s, &path(&[2]), "s1", "fish eagle", Sign::Neg);
        assert_eq!(
            slice(&s, &path(&[2]), "s1"),
            vec![(0, Sign::Neg, true), (1, Sign::Neg, true)]
        );
    }

    #[test]
    fn recompute_is_idempotent() {
        let mut s = store();
        s.ensure_world(&path(&[2, 1])).unwrap();
        insert_explicit(&mut s, &BeliefPath::root(), "s1", "crow", Sign::Pos);
        let rel = s.schema().relation_id("S").unwrap();
        let before = slice(&s, &path(&[2, 1]), "s1");
        s.propagate_key(rel, &BeliefPath::root(), &Value::str("s1"))
            .unwrap();
        s.propagate_key(rel, &BeliefPath::root(), &Value::str("s1"))
            .unwrap();
        assert_eq!(slice(&s, &path(&[2, 1]), "s1"), before);
    }

    #[test]
    fn unrelated_keys_untouched() {
        let mut s = store();
        insert_explicit(&mut s, &BeliefPath::root(), "s1", "crow", Sign::Pos);
        insert_explicit(&mut s, &BeliefPath::root(), "s2", "owl", Sign::Pos);
        insert_explicit(&mut s, &path(&[1]), "s1", "raven", Sign::Pos);
        // s2 slices everywhere still reflect the root fact (owl is tid 1).
        assert_eq!(slice(&s, &path(&[1]), "s2"), vec![(1, Sign::Pos, false)]);
    }
}
