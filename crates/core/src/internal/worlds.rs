//! World management: the world directory, `dss` (Algorithm 3) and
//! `idWorld` (Algorithm 2, with the tech-report errata applied).

use super::{InternalStore, D_TABLE, E_TABLE, S_TABLE};
use crate::error::Result;
use crate::ids::Wid;
use crate::path::BeliefPath;
use beliefdb_storage::{Row, Value};
use std::collections::HashMap;

/// Bidirectional mapping `wid ↔ belief path`.
///
/// This mirrors what the `E` and `D` relations encode (a path is the label
/// sequence of forward edges from the root); keeping it in memory turns
/// Algorithm 3's `E*`-join-plus-MAX query into a suffix walk.
#[derive(Debug, Clone, Default)]
pub struct WorldDirectory {
    paths: Vec<BeliefPath>,
    ids: HashMap<BeliefPath, Wid>,
}

impl WorldDirectory {
    pub fn new() -> Self {
        WorldDirectory::default()
    }

    /// Register a new world; ids are dense starting at 0 (the root).
    pub(crate) fn insert(&mut self, path: BeliefPath) -> Wid {
        debug_assert!(!self.ids.contains_key(&path), "world already exists");
        let wid = Wid(self.paths.len() as u32);
        self.ids.insert(path.clone(), wid);
        self.paths.push(path);
        wid
    }

    pub fn get(&self, path: &BeliefPath) -> Option<Wid> {
        self.ids.get(path).copied()
    }

    pub fn path(&self, wid: Wid) -> &BeliefPath {
        &self.paths[wid.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    pub fn wids(&self) -> Vec<Wid> {
        (0..self.paths.len() as u32).map(Wid).collect()
    }

    /// Iterate `(wid, path)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Wid, &BeliefPath)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (Wid(i as u32), p))
    }

    /// `dss(w)`: the id of the deepest suffix state of `w` (Algorithm 3).
    /// The root always matches, so this never fails.
    pub fn dss(&self, path: &BeliefPath) -> Wid {
        for suffix in path.suffixes() {
            if let Some(&wid) = self.ids.get(&suffix) {
                return wid;
            }
        }
        unreachable!("root world always exists")
    }

    /// Dependent worlds of `w`: states having `w` as *proper* suffix, in
    /// ascending depth order. An insert at `w` must be re-examined at
    /// exactly these worlds (Alg. 4 line 8).
    pub fn dependents(&self, path: &BeliefPath) -> Vec<Wid> {
        let mut deps: Vec<(usize, Wid)> = self
            .iter()
            .filter(|(_, p)| path.is_proper_suffix_of(p))
            .map(|(wid, p)| (p.depth(), wid))
            .collect();
        deps.sort_unstable();
        deps.into_iter().map(|(_, w)| w).collect()
    }
}

impl InternalStore {
    /// `idWorld` (Algorithm 2): return the id of world `w`, creating it —
    /// and every missing prefix — if needed.
    ///
    /// Creation performs the paper's steps:
    /// 1. recursively ensure the parent `w[1,d−1]` exists,
    /// 2. allocate `x`, insert `D(x, d)`,
    /// 3. redirect the parent's `w[d]`-edge from `dss(w)` to `x`,
    /// 4. add edges `E(x, u, dss(w·u))` for every user `u ≠ w[d]`,
    /// 5. redirect the `w[d]`-edge of every world `y = v·w[1,d−1]` whose
    ///    current target is shallower than `d` (those edges now reach `x`),
    /// 6. insert `S(x, dss(w[2,d]))` (errata version) and also repoint the
    ///    `S` entry of any world whose deepest suffix parent is now `x`,
    /// 7. copy all tuples of the suffix parent into `x` as implicit.
    pub fn ensure_world(&mut self, path: &BeliefPath) -> Result<Wid> {
        if let Some(wid) = self.dir.get(path) {
            return Ok(wid);
        }
        let d = path.depth();
        debug_assert!(d >= 1, "the root world always exists");
        let last = path.last().expect("non-root path");

        // (1) parent prefix w[1,d-1]
        let parent = self.ensure_world(&path.prefix(d - 1))?;

        // (2) allocate x
        let x = self.dir.insert(path.clone());
        self.db
            .table_mut(D_TABLE)?
            .insert(Row::new(vec![x.value(), Value::Int(d as i64)]))?;

        // (3) redirect the parent's w[d]-edge to x
        {
            let e = self.db.table_mut(E_TABLE)?;
            e.delete_by_index(super::E_BY_SRC_USER, &[parent.value(), last.value()])?;
            e.insert(Row::new(vec![parent.value(), last.value(), x.value()]))?;
        }

        // (4) outgoing edges of x: u-edge to dss(w·u) for u ≠ w[d]
        let users: Vec<_> = self.users().collect();
        for u in users {
            if u == last {
                continue;
            }
            let target = self.dir.dss(&path.push(u).expect("u ≠ last"));
            self.db.table_mut(E_TABLE)?.insert(Row::new(vec![
                x.value(),
                u.value(),
                target.value(),
            ]))?;
        }

        // (5) redirect w[d]-edges of deeper worlds that should now reach x:
        // y ends with w[1,d−1], can take a w[d]-edge, and its current target
        // is shallower than d.
        let w_prefix = path.prefix(d - 1);
        let redirect: Vec<Wid> = self
            .dir
            .iter()
            .filter(|(y, y_path)| {
                *y != x && *y != parent && w_prefix.is_suffix_of(y_path) && y_path.can_push(last)
            })
            .map(|(y, _)| y)
            .collect();
        for y in redirect {
            let current = self.edge_target(y, last)?;
            let current_depth = self.dir.path(current).depth();
            if current_depth < d {
                let e = self.db.table_mut(E_TABLE)?;
                e.delete_by_index(super::E_BY_SRC_USER, &[y.value(), last.value()])?;
                e.insert(Row::new(vec![y.value(), last.value(), x.value()]))?;
            }
        }

        // (6) S entry for x: the deepest suffix state of w[2,d] (errata),
        // and repoint S of worlds whose suffix parent is now x. Repointing
        // needs no content rebuild: x was just created with exactly the
        // entailed content of the old parent chain.
        let s_parent = self.dir.dss(&path.drop_first());
        self.db
            .table_mut(S_TABLE)?
            .insert(Row::new(vec![x.value(), s_parent.value()]))?;
        let repoint: Vec<Wid> = self
            .dir
            .iter()
            .filter(|(z, z_path)| *z != x && path.is_suffix_of(&z_path.drop_first()))
            .map(|(z, _)| z)
            .collect();
        for z in repoint {
            let current = self.suffix_parent(z)?;
            if self.dir.path(current).depth() < d {
                let s = self.db.table_mut(S_TABLE)?;
                if let Some(rid) = s.rid_by_key(&z.value()) {
                    s.delete(rid)?;
                }
                s.insert(Row::new(vec![z.value(), x.value()]))?;
            }
        }

        // (7) copy the suffix parent's tuples into x as implicit beliefs.
        self.copy_world_as_implicit(s_parent, x)?;

        Ok(x)
    }

    /// The unique `E` target of `(world, user)`.
    pub(crate) fn edge_target(&self, wid: Wid, user: crate::ids::UserId) -> Result<Wid> {
        let e = self.db.table(E_TABLE)?;
        let hits = e.index_rows(super::E_BY_SRC_USER, &[wid.value(), user.value()])?;
        debug_assert!(hits.len() <= 1, "E must be deterministic per (world, user)");
        match hits.first() {
            Some(row) => Ok(Wid::from_value(&row[2]).expect("wid column")),
            // No edge materialized (e.g. user registered after queries
            // started, or u = last(w)): fall back to the directory.
            None => {
                let path = self.dir.path(wid);
                match path.push(user) {
                    Ok(p) => Ok(self.dir.dss(&p)),
                    Err(_) => Ok(wid),
                }
            }
        }
    }

    /// The `S` parent of a world (None for the root).
    pub(crate) fn suffix_parent(&self, wid: Wid) -> Result<Wid> {
        if wid == Wid::ROOT {
            return Ok(Wid::ROOT);
        }
        let s = self.db.table(S_TABLE)?;
        match s.get_by_key(&wid.value()) {
            Some(row) => Ok(Wid::from_value(&row[1]).expect("wid column")),
            None => Ok(Wid::ROOT),
        }
    }

    /// Copy every `V` row of `from` into `to` with `e = 'n'` (Alg. 2
    /// line 9: a new world starts with the implicit content of its suffix
    /// parent).
    fn copy_world_as_implicit(&mut self, from: Wid, to: Wid) -> Result<()> {
        if from == to {
            return Ok(());
        }
        for rel in self.schema.relations().to_vec() {
            let vt_name = super::v_table(rel.name());
            let vt = self.db.table(&vt_name)?;
            let copies: Vec<Row> = vt
                .index_rows(super::V_BY_WID, &[from.value()])?
                .into_iter()
                .map(|r| {
                    Row::new(vec![
                        to.value(),
                        r[1].clone(),
                        r[2].clone(),
                        r[3].clone(),
                        super::explicit_value(false),
                    ])
                })
                .collect();
            let vt = self.db.table_mut(&vt_name)?;
            for row in copies {
                vt.insert(row)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;
    use crate::path::path;
    use crate::schema::ExternalSchema;

    fn store_with_users(n: u32) -> InternalStore {
        let schema = ExternalSchema::new().with_relation("S", &["sid", "species"]);
        let mut store = InternalStore::new(schema).unwrap();
        for i in 1..=n {
            store.add_user(format!("user{i}")).unwrap();
        }
        store
    }

    #[test]
    fn directory_basics() {
        let mut dir = WorldDirectory::new();
        let root = dir.insert(BeliefPath::root());
        assert_eq!(root, Wid(0));
        let w1 = dir.insert(path(&[1]));
        assert_eq!(dir.get(&path(&[1])), Some(w1));
        assert_eq!(dir.get(&path(&[2])), None);
        assert_eq!(dir.path(w1), &path(&[1]));
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.wids(), vec![Wid(0), Wid(1)]);
    }

    #[test]
    fn directory_dss() {
        let mut dir = WorldDirectory::new();
        dir.insert(BeliefPath::root());
        let w2 = dir.insert(path(&[2]));
        let w21 = dir.insert(path(&[2, 1]));
        assert_eq!(dir.dss(&path(&[2, 1])), w21);
        assert_eq!(dir.dss(&path(&[3, 2, 1])), w21);
        assert_eq!(dir.dss(&path(&[1, 2])), w2);
        assert_eq!(dir.dss(&path(&[1])), Wid(0));
        assert_eq!(dir.dss(&BeliefPath::root()), Wid(0));
    }

    #[test]
    fn directory_dependents_sorted_by_depth() {
        let mut dir = WorldDirectory::new();
        dir.insert(BeliefPath::root());
        let w1 = dir.insert(path(&[1]));
        let w21 = dir.insert(path(&[2, 1]));
        let w321 = dir.insert(path(&[3, 2, 1]));
        let w2 = dir.insert(path(&[2]));
        // dependents of ε: every other world, shallow first.
        let deps = dir.dependents(&BeliefPath::root());
        assert_eq!(deps.len(), 4);
        assert_eq!(deps[0], w1); // depth 1 worlds first (w1 inserted before w2)
        assert!(deps.contains(&w2));
        assert_eq!(*deps.last().unwrap(), w321);
        // dependents of [1]: 2·1 and 3·2·1, not [1] itself.
        assert_eq!(dir.dependents(&path(&[1])), vec![w21, w321]);
        // dependents of [2·1]: 3·2·1.
        assert_eq!(dir.dependents(&path(&[2, 1])), vec![w321]);
        assert!(dir.dependents(&path(&[3, 2, 1])).is_empty());
    }

    #[test]
    fn ensure_world_creates_prefixes() {
        let mut store = store_with_users(3);
        let w = store.ensure_world(&path(&[2, 1])).unwrap();
        // Creates both [2] and [2,1]; directory: ε, 2, 2·1.
        assert_eq!(store.dir.len(), 3);
        assert_eq!(store.dir.path(w), &path(&[2, 1]));
        assert!(store.dir.get(&path(&[2])).is_some());
        // Idempotent.
        assert_eq!(store.ensure_world(&path(&[2, 1])).unwrap(), w);
        assert_eq!(store.dir.len(), 3);
    }

    #[test]
    fn edges_match_fig4_after_creation() {
        // Recreate the running example's world set: 1, 2, 2·1 over 3 users.
        let mut store = store_with_users(3);
        store.ensure_world(&path(&[1])).unwrap();
        store.ensure_world(&path(&[2])).unwrap();
        store.ensure_world(&path(&[2, 1])).unwrap();

        let root = Wid::ROOT;
        let w1 = store.dir.get(&path(&[1])).unwrap();
        let w2 = store.dir.get(&path(&[2])).unwrap();
        let w21 = store.dir.get(&path(&[2, 1])).unwrap();
        let (u1, u2, u3) = (UserId(1), UserId(2), UserId(3));

        assert_eq!(store.edge_target(root, u1).unwrap(), w1);
        assert_eq!(store.edge_target(root, u2).unwrap(), w2);
        assert_eq!(store.edge_target(root, u3).unwrap(), root);
        assert_eq!(store.edge_target(w1, u2).unwrap(), w2);
        assert_eq!(store.edge_target(w1, u3).unwrap(), root);
        assert_eq!(store.edge_target(w2, u1).unwrap(), w21);
        assert_eq!(store.edge_target(w2, u3).unwrap(), root);
        assert_eq!(store.edge_target(w21, u2).unwrap(), w2);
        assert_eq!(store.edge_target(w21, u3).unwrap(), root);
        // Edge count matches Fig. 5's E table: 9 rows.
        assert_eq!(store.database().table(E_TABLE).unwrap().len(), 9);
    }

    #[test]
    fn late_world_creation_redirects_existing_edges() {
        // Create 2·1 BEFORE 1; then creating 1 must redirect both the
        // root's 1-edge and S(2·1).
        let mut store = store_with_users(2);
        let w21 = store.ensure_world(&path(&[2, 1])).unwrap();
        let root = Wid::ROOT;
        let (u1, _u2) = (UserId(1), UserId(2));
        // Before: dss(1) = ε.
        assert_eq!(store.edge_target(root, u1).unwrap(), root);
        assert_eq!(store.suffix_parent(w21).unwrap(), root);

        let w1 = store.ensure_world(&path(&[1])).unwrap();
        // Root's 1-edge now reaches the new world.
        assert_eq!(store.edge_target(root, u1).unwrap(), w1);
        // S(2·1) repointed to the deeper suffix parent [1].
        assert_eq!(store.suffix_parent(w21).unwrap(), w1);
        // S(1) = root.
        assert_eq!(store.suffix_parent(w1).unwrap(), root);
    }

    #[test]
    fn deeper_suffix_states_keep_their_edges() {
        // Worlds: 1, 2·1 (deeper). Creating... the 1-edge of world [2]
        // should point to [2·1]? No: from [2], pushing 1 gives 2·1 which IS
        // a state → forward edge. From [3·2]... exercise: create [3,2] and
        // check its 1-edge goes to the *deepest* suffix state of 3·2·1,
        // which is 2·1, and stays there when [1] is created later.
        let mut store = store_with_users(3);
        store.ensure_world(&path(&[2, 1])).unwrap();
        let w32 = store.ensure_world(&path(&[3, 2])).unwrap();
        let w21 = store.dir.get(&path(&[2, 1])).unwrap();
        assert_eq!(store.edge_target(w32, UserId(1)).unwrap(), w21);
        // Creating the shallower state [1] must NOT steal the edge.
        store.ensure_world(&path(&[1])).unwrap();
        assert_eq!(store.edge_target(w32, UserId(1)).unwrap(), w21);
    }

    #[test]
    fn s_table_matches_errata_definition() {
        // S(w) = dss(w[2,d]), not dss(w) (which would be w itself).
        let mut store = store_with_users(3);
        store.ensure_world(&path(&[1])).unwrap();
        let w21 = store.ensure_world(&path(&[2, 1])).unwrap();
        let w321 = store.ensure_world(&path(&[3, 2, 1])).unwrap();
        let w1 = store.dir.get(&path(&[1])).unwrap();
        assert_eq!(
            store.suffix_parent(w21).unwrap(),
            w1,
            "S(2·1) = dss(1) = [1]"
        );
        assert_eq!(
            store.suffix_parent(w321).unwrap(),
            w21,
            "S(3·2·1) = dss(2·1) = [2·1]"
        );
    }

    #[test]
    fn depth_relation_is_maintained() {
        let mut store = store_with_users(2);
        store.ensure_world(&path(&[1, 2])).unwrap();
        let d = store.database().table(D_TABLE).unwrap();
        // ε, 1, 1·2
        assert_eq!(d.len(), 3);
        let mut rows = d.scan();
        rows.sort();
        assert_eq!(rows[0], beliefdb_storage::row![0, 0]);
        assert_eq!(rows[1], beliefdb_storage::row![1, 1]);
        assert_eq!(rows[2], beliefdb_storage::row![2, 2]);
    }
}
