//! Belief statements `w t^s` (Def. 8).

use crate::ids::RelId;
use crate::path::BeliefPath;
use beliefdb_storage::{Row, Value};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The sign of a belief: positive (`t` holds) or negative (`t` is impossible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sign {
    Pos,
    Neg,
}

impl Sign {
    pub fn flip(self) -> Sign {
        match self {
            Sign::Pos => Sign::Neg,
            Sign::Neg => Sign::Pos,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            Sign::Pos => "+",
            Sign::Neg => "-",
        }
    }

    /// The sign as a storage value (`'+'` / `'-'`, as in Fig. 5's `s`
    /// attribute). The two strings are interned once so the millions of `V`
    /// rows the encoding creates share a single allocation each.
    pub fn value(self) -> Value {
        static POS: OnceLock<Arc<str>> = OnceLock::new();
        static NEG: OnceLock<Arc<str>> = OnceLock::new();
        match self {
            Sign::Pos => Value::Str(POS.get_or_init(|| Arc::from("+")).clone()),
            Sign::Neg => Value::Str(NEG.get_or_init(|| Arc::from("-")).clone()),
        }
    }

    pub fn from_value(v: &Value) -> Option<Sign> {
        match v.as_str() {
            Some("+") => Some(Sign::Pos),
            Some("-") => Some(Sign::Neg),
            _ => None,
        }
    }

    /// Stable one-byte code used by the durability layer's binary log
    /// and snapshot encodings (`crate::persist`).
    pub fn code(self) -> u8 {
        match self {
            Sign::Pos => b'+',
            Sign::Neg => b'-',
        }
    }

    /// Inverse of [`Sign::code`].
    pub fn from_code(c: u8) -> Option<Sign> {
        match c {
            b'+' => Some(Sign::Pos),
            b'-' => Some(Sign::Neg),
            _ => None,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A ground tuple `t ∈ Tup`: a typed tuple of one external relation. Its
/// key is the value of the first attribute (the paper's `key(t)`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundTuple {
    pub rel: RelId,
    pub row: Row,
}

impl GroundTuple {
    pub fn new(rel: RelId, row: Row) -> Self {
        assert!(
            row.arity() >= 1,
            "ground tuples need at least a key attribute"
        );
        GroundTuple { rel, row }
    }

    /// `key(t)`: the typed value of the key attribute.
    pub fn key(&self) -> &Value {
        &self.row[0]
    }

    /// True iff `other` has the same relation and key but is a different
    /// tuple — the situation that makes `other` an *unstated negative*
    /// whenever `self` is believed positively (Prop. 7).
    pub fn conflicts_with(&self, other: &GroundTuple) -> bool {
        self.rel == other.rel && self.key() == other.key() && self.row != other.row
    }
}

impl fmt::Display for GroundTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}{}", self.rel, self.row)
    }
}

/// A belief statement `ϕ = w t^s` (Def. 8): belief path, ground tuple, sign.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BeliefStatement {
    pub path: BeliefPath,
    pub tuple: GroundTuple,
    pub sign: Sign,
}

impl BeliefStatement {
    pub fn new(path: BeliefPath, tuple: GroundTuple, sign: Sign) -> Self {
        BeliefStatement { path, tuple, sign }
    }

    pub fn positive(path: BeliefPath, tuple: GroundTuple) -> Self {
        Self::new(path, tuple, Sign::Pos)
    }

    pub fn negative(path: BeliefPath, tuple: GroundTuple) -> Self {
        Self::new(path, tuple, Sign::Neg)
    }

    /// Nesting depth of the statement (= depth of its path).
    pub fn depth(&self) -> usize {
        self.path.depth()
    }
}

impl fmt::Display for BeliefStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_root() {
            write!(f, "{}{}", self.tuple, self.sign)
        } else {
            write!(f, "□{} {}{}", self.path, self.tuple, self.sign)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::path;
    use beliefdb_storage::row;

    fn t(key: &str, species: &str) -> GroundTuple {
        GroundTuple::new(
            RelId(0),
            row![key, "Carol", species, "6-14-08", "Lake Forest"],
        )
    }

    #[test]
    fn sign_basics() {
        assert_eq!(Sign::Pos.flip(), Sign::Neg);
        assert_eq!(Sign::Neg.flip(), Sign::Pos);
        assert_eq!(Sign::Pos.symbol(), "+");
        assert_eq!(Sign::Pos.value(), Value::str("+"));
        assert_eq!(Sign::from_value(&Value::str("-")), Some(Sign::Neg));
        assert_eq!(Sign::from_value(&Value::str("x")), None);
        assert_eq!(Sign::from_value(&Value::Int(1)), None);
        assert_eq!(Sign::Neg.to_string(), "-");
        assert_eq!(Sign::from_code(Sign::Pos.code()), Some(Sign::Pos));
        assert_eq!(Sign::from_code(Sign::Neg.code()), Some(Sign::Neg));
        assert_eq!(Sign::from_code(b'x'), None);
    }

    #[test]
    fn sign_values_share_allocation() {
        let a = Sign::Pos.value();
        let b = Sign::Pos.value();
        match (a, b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(&x, &y)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn tuple_key_and_conflicts() {
        let eagle = t("s1", "bald eagle");
        let fish_eagle = t("s1", "fish eagle");
        let crow = t("s2", "crow");
        assert_eq!(eagle.key(), &Value::str("s1"));
        assert!(eagle.conflicts_with(&fish_eagle));
        assert!(fish_eagle.conflicts_with(&eagle));
        assert!(!eagle.conflicts_with(&eagle));
        assert!(!eagle.conflicts_with(&crow));
        // different relation, same key: no conflict
        let other_rel = GroundTuple::new(RelId(1), row!["s1", "x", "y"]);
        assert!(!eagle.conflicts_with(&other_rel));
    }

    #[test]
    fn statement_construction_and_display() {
        let s = BeliefStatement::positive(BeliefPath::root(), t("s1", "bald eagle"));
        assert_eq!(s.sign, Sign::Pos);
        assert_eq!(s.depth(), 0);
        assert!(s.to_string().ends_with("+"));
        let s = BeliefStatement::negative(path(&[2]), t("s1", "bald eagle"));
        assert_eq!(s.depth(), 1);
        assert!(s.to_string().starts_with("□2"));
    }

    #[test]
    #[should_panic(expected = "at least a key attribute")]
    fn zero_arity_tuple_panics() {
        let _ = GroundTuple::new(RelId(0), Row::new(vec![]));
    }
}
