//! Error taxonomy for belief databases.

use beliefdb_storage::StorageError;
use std::fmt;

/// Errors raised by the belief-database layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeliefError {
    /// A belief path repeated the same user in adjacent positions
    /// (belief paths must lie in `Û*`, Sect. 3.2 of the paper).
    InvalidPath(String),
    /// Unknown user id or name.
    NoSuchUser(String),
    /// A user with this name already exists.
    DuplicateUser(String),
    /// Unknown external relation.
    NoSuchRelation(String),
    /// A relation with this name already exists in the external schema.
    DuplicateRelation(String),
    /// Tuple arity does not match the external relation.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// The operation would make a belief world inconsistent
    /// (violates Γ1 or Γ2 of Prop. 5).
    Inconsistent(String),
    /// A belief conjunctive query failed the safety check of Def. 13.
    UnsafeQuery(String),
    /// A query is structurally malformed (wrong arity, bad path, ...).
    MalformedQuery(String),
    /// Error from the storage substrate.
    Storage(StorageError),
}

impl fmt::Display for BeliefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeliefError::InvalidPath(msg) => write!(f, "invalid belief path: {msg}"),
            BeliefError::NoSuchUser(u) => write!(f, "no such user: {u}"),
            BeliefError::DuplicateUser(u) => write!(f, "duplicate user: {u}"),
            BeliefError::NoSuchRelation(r) => write!(f, "no such relation: {r}"),
            BeliefError::DuplicateRelation(r) => write!(f, "duplicate relation: {r}"),
            BeliefError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "arity mismatch for `{relation}`: expected {expected}, got {got}"
                )
            }
            BeliefError::Inconsistent(msg) => write!(f, "inconsistent belief world: {msg}"),
            BeliefError::UnsafeQuery(msg) => write!(f, "unsafe query: {msg}"),
            BeliefError::MalformedQuery(msg) => write!(f, "malformed query: {msg}"),
            BeliefError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for BeliefError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BeliefError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for BeliefError {
    fn from(e: StorageError) -> Self {
        BeliefError::Storage(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T, E = BeliefError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BeliefError::InvalidPath("1·1".into());
        assert!(e.to_string().contains("invalid belief path"));
        let e = BeliefError::from(StorageError::NoSuchTable("V".into()));
        assert!(e.to_string().contains("storage error"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(BeliefError::NoSuchUser("Dora".into()).source().is_none());
    }
}
