//! The canonical Kripke structure `K(D)` (Def. 16, Thm. 17).
//!
//! Construction: the states are `States(D)` — all prefixes of belief paths
//! mentioned in `D` — and each state carries its *entailed* world `D̄_v`.
//! Edges labelled `i` go "forward" from `w` to `w·i` when that state exists,
//! otherwise "back" to the deepest suffix state `dss(w·i)`.
//!
//! Theorem 17 states `D |= ϕ ⇔ K(D) |= ϕ` and that `K(D)` is computable in
//! `O(m^d · n)`. Because every `(state, user)` pair has exactly one
//! successor, root-entailment reduces to a deterministic walk followed by a
//! single world lookup — the basis of the relational encoding (Sect. 5).

use crate::closure::Closure;
use crate::database::BeliefDatabase;
use crate::ids::UserId;
use crate::kripke::{Kripke, StateId};
use crate::path::BeliefPath;
use crate::statement::BeliefStatement;
use crate::world::BeliefWorld;
use std::collections::HashMap;

/// The canonical Kripke structure of a belief database.
#[derive(Debug, Clone)]
pub struct CanonicalKripke {
    /// State id → belief path; state 0 is always the root `ε`.
    paths: Vec<BeliefPath>,
    /// Belief path → state id.
    index: HashMap<BeliefPath, StateId>,
    /// Entailed world `D̄_v` per state.
    worlds: Vec<BeliefWorld>,
    /// Deterministic successor per (state, user) — only for users that can
    /// extend the state's path (`i ≠ last(w)`).
    edges: Vec<HashMap<UserId, StateId>>,
    users: Vec<UserId>,
}

impl CanonicalKripke {
    /// Build `K(D)`.
    pub fn build(db: &BeliefDatabase) -> Self {
        let mut closure = Closure::new(db);
        let state_worlds = closure.state_worlds();

        let mut paths = Vec::with_capacity(state_worlds.len());
        let mut worlds = Vec::with_capacity(state_worlds.len());
        let mut index = HashMap::with_capacity(state_worlds.len());
        for (path, world) in state_worlds {
            index.insert(path.clone(), paths.len());
            paths.push(path);
            worlds.push(world);
        }
        // BTree order in `states()` puts ε first.
        debug_assert!(paths[0].is_root());

        let users: Vec<UserId> = db.users().collect();
        let mut edges: Vec<HashMap<UserId, StateId>> = vec![HashMap::new(); paths.len()];
        for (sid, path) in paths.iter().enumerate() {
            for &u in &users {
                if !path.can_push(u) {
                    continue;
                }
                let target_path = path.push(u).expect("can_push checked");
                let target = dss_in(&index, &target_path);
                edges[sid].insert(u, target);
            }
        }
        CanonicalKripke {
            paths,
            index,
            worlds,
            edges,
            users,
        }
    }

    /// Number of states `N`.
    pub fn state_count(&self) -> usize {
        self.paths.len()
    }

    /// Number of edges (`Σ_i |E_i|`).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(|m| m.len()).sum()
    }

    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// The root state (always id 0).
    pub fn root(&self) -> StateId {
        0
    }

    pub fn path_of(&self, v: StateId) -> &BeliefPath {
        &self.paths[v]
    }

    pub fn world_of(&self, v: StateId) -> &BeliefWorld {
        &self.worlds[v]
    }

    /// State id of an exact path, if it is a state.
    pub fn state_of(&self, path: &BeliefPath) -> Option<StateId> {
        self.index.get(path).copied()
    }

    /// `dss(w)`: the state holding the deepest suffix of `w`.
    pub fn dss(&self, path: &BeliefPath) -> StateId {
        dss_in(&self.index, path)
    }

    /// The unique `i`-successor of `v`. Falls back to the dss computation
    /// for users unknown at build time (e.g. newly joined users — their
    /// edges all lead to the root by construction).
    pub fn successor(&self, v: StateId, user: UserId) -> StateId {
        if let Some(&s) = self.edges[v].get(&user) {
            return s;
        }
        match self.paths[v].push(user) {
            Ok(p) => self.dss(&p),
            // i = last(w): `w·i ∉ Û*`; no edge exists. Walks never ask for
            // this (see `resolve`), so answer with the state itself.
            Err(_) => v,
        }
    }

    /// Walk the edges from the root along `path`; the resulting state's
    /// world is `D̄_path`. (Each step is deterministic, so the ∀ of the
    /// Kripke semantics collapses to this single walk.)
    pub fn resolve(&self, path: &BeliefPath) -> StateId {
        let mut v = self.root();
        for &u in path.users() {
            v = self.successor(v, u);
        }
        v
    }

    /// `K(D) |= ϕ` (by Thm. 17, equivalent to `D |= ϕ`).
    pub fn entails(&self, stmt: &BeliefStatement) -> bool {
        let v = self.resolve(&stmt.path);
        self.worlds[v].entails(&stmt.tuple, stmt.sign)
    }

    /// Export to the generic structure (for differential testing against
    /// the recursive Kripke semantics).
    pub fn to_kripke(&self) -> Kripke {
        let mut k = Kripke::new();
        for w in &self.worlds {
            k.add_state(w.clone());
        }
        k.set_root(self.root());
        for (sid, succ) in self.edges.iter().enumerate() {
            for (&u, &t) in succ {
                k.add_edge(sid, u, t);
            }
        }
        k
    }

    /// Iterate `(state id, path, world)` deterministically.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &BeliefPath, &BeliefWorld)> {
        self.paths
            .iter()
            .zip(self.worlds.iter())
            .enumerate()
            .map(|(i, (p, w))| (i, p, w))
    }
}

fn dss_in(index: &HashMap<BeliefPath, StateId>, path: &BeliefPath) -> StateId {
    for suffix in path.suffixes() {
        if let Some(&sid) = index.get(&suffix) {
            return sid;
        }
    }
    // ε is always a state.
    unreachable!("the root state must exist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure;
    use crate::database::running_example;
    use crate::ids::RelId;
    use crate::path::path;
    use crate::schema::ExternalSchema;
    use crate::statement::{GroundTuple, Sign};
    use beliefdb_storage::row;

    fn t(key: &str, species: &str) -> GroundTuple {
        GroundTuple::new(RelId(0), row![key, species])
    }

    fn small_db(users: &[&str]) -> BeliefDatabase {
        let mut schema = ExternalSchema::new();
        schema.add_relation("S", &["sid", "species"]).unwrap();
        let mut db = BeliefDatabase::new(schema);
        for u in users {
            db.add_user(*u).unwrap();
        }
        db
    }

    #[test]
    fn running_example_shape_matches_fig4() {
        let (db, ..) = running_example();
        let k = CanonicalKripke::build(&db);
        // Fig. 4: states #0..#3.
        assert_eq!(k.state_count(), 4);
        // Three users, each state has an edge per user except its own last:
        // root: 3 edges; depth-1 states (Alice, Bob): 2 each... wait — the
        // paper draws edges for all users ≠ last(w): Alice(1): users 2,3 →
        // 2 edges; Bob(2): 1,3 → 2; Bob·Alice(2·1): 2,3 → 2. Root: 3.
        assert_eq!(k.edge_count(), 3 + 2 + 2 + 2);

        // Edge targets of Fig. 4.
        let root = k.root();
        let alice = UserId(1);
        let bob = UserId(2);
        let carol = UserId(3);
        let v_alice = k.state_of(&path(&[1])).unwrap();
        let v_bob = k.state_of(&path(&[2])).unwrap();
        let v_ba = k.state_of(&path(&[2, 1])).unwrap();
        assert_eq!(k.successor(root, alice), v_alice);
        assert_eq!(k.successor(root, bob), v_bob);
        assert_eq!(
            k.successor(root, carol),
            root,
            "Carol has no world: self-loop"
        );
        assert_eq!(k.successor(v_alice, bob), v_bob, "dss(1·2) = 2");
        assert_eq!(k.successor(v_bob, alice), v_ba, "forward edge 2 → 2·1");
        assert_eq!(k.successor(v_ba, bob), v_bob, "dss(2·1·2) = 2");
        assert_eq!(k.successor(v_ba, carol), root, "dss(2·1·3) = ε");
    }

    #[test]
    fn worlds_match_fig4_contents() {
        let (db, ..) = running_example();
        let k = CanonicalKripke::build(&db);
        let v_bob = k.state_of(&path(&[2])).unwrap();
        assert_eq!(k.world_of(v_bob).pos_len(), 2);
        assert_eq!(k.world_of(v_bob).neg_len(), 2);
        let v_ba = k.state_of(&path(&[2, 1])).unwrap();
        assert_eq!(k.world_of(v_ba).pos_len(), 4); // s11, s21, c11, c21
    }

    #[test]
    fn theorem17_entailment_equivalence_on_running_example() {
        // D |= ϕ iff K(D) |= ϕ — exhaustively over paths up to depth 2 and
        // all mentioned tuples, both signs.
        let (db, ..) = running_example();
        let k = CanonicalKripke::build(&db);
        let mut cl = Closure::new(&db);
        let users: Vec<_> = db.users().collect();
        let tuples = db.mentioned_tuples();

        let mut paths = vec![BeliefPath::root()];
        for &u in &users {
            paths.push(BeliefPath::user(u));
            for &v in &users {
                if u != v {
                    paths.push(BeliefPath::new(vec![u, v]).unwrap());
                }
            }
        }
        let mut checked = 0;
        for p in &paths {
            for t in &tuples {
                for sign in [Sign::Pos, Sign::Neg] {
                    let stmt = BeliefStatement::new(p.clone(), t.clone(), sign);
                    assert_eq!(cl.entails(&stmt), k.entails(&stmt), "mismatch on {stmt}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn canonical_agrees_with_generic_kripke_semantics() {
        // The deterministic walk must agree with the recursive ∀-semantics
        // over the exported generic structure.
        let (db, ..) = running_example();
        let k = CanonicalKripke::build(&db);
        let generic = k.to_kripke();
        let users: Vec<_> = db.users().collect();
        let tuples = db.mentioned_tuples();
        for &u in &users {
            for &v in &users {
                if u == v {
                    continue;
                }
                for t in &tuples {
                    for sign in [Sign::Pos, Sign::Neg] {
                        let stmt = BeliefStatement::new(
                            BeliefPath::new(vec![u, v]).unwrap(),
                            t.clone(),
                            sign,
                        );
                        assert_eq!(k.entails(&stmt), generic.entails(&stmt), "on {stmt}");
                    }
                }
            }
        }
    }

    #[test]
    fn deep_paths_resolve_through_back_edges() {
        let (db, alice, bob, carol) = running_example();
        let k = CanonicalKripke::build(&db);
        // 3·2·1 resolves via ε →3 ε →2 Bob →1 Bob·Alice.
        let p = BeliefPath::new(vec![carol, bob, alice]).unwrap();
        assert_eq!(k.resolve(&p), k.state_of(&path(&[2, 1])).unwrap());
        // Its entailed world equals the closure's.
        let walked = k.world_of(k.resolve(&p)).clone();
        let direct = closure::entailed_world(&db, &p);
        assert_eq!(walked, direct);
        // 1·2·1·2... long alternation stays within states.
        let p = BeliefPath::new(vec![alice, bob, alice, bob, alice]).unwrap();
        let walked = k.world_of(k.resolve(&p)).clone();
        let direct = closure::entailed_world(&db, &p);
        assert_eq!(walked, direct);
    }

    #[test]
    fn empty_database_has_single_state() {
        let db = small_db(&["Alice", "Bob"]);
        let k = CanonicalKripke::build(&db);
        assert_eq!(k.state_count(), 1);
        // Both users loop on the root.
        assert_eq!(k.successor(k.root(), UserId(1)), k.root());
        assert_eq!(k.successor(k.root(), UserId(2)), k.root());
        assert!(k.world_of(k.root()).is_empty());
    }

    #[test]
    fn unknown_user_edges_fall_back_to_dss() {
        let mut db = small_db(&["Alice"]);
        db.insert(BeliefStatement::positive(
            BeliefPath::root(),
            t("s1", "crow"),
        ))
        .unwrap();
        let k = CanonicalKripke::build(&db);
        // UserId(7) was never registered; the walk still resolves (to ε).
        let stmt = BeliefStatement::positive(BeliefPath::user(UserId(7)), t("s1", "crow"));
        assert!(k.entails(&stmt));
    }

    #[test]
    fn states_iterator_is_deterministic() {
        let (db, ..) = running_example();
        let k = CanonicalKripke::build(&db);
        let listed: Vec<_> = k.states().map(|(i, p, _)| (i, p.clone())).collect();
        assert_eq!(listed.len(), 4);
        assert_eq!(listed[0].1, BeliefPath::root());
        // ids are dense and ordered
        assert_eq!(
            listed.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn growing_database_reuses_construction() {
        // Build twice with one more statement; state count grows.
        let mut db = small_db(&["Alice", "Bob"]);
        db.insert(BeliefStatement::positive(path(&[1]), t("s1", "crow")))
            .unwrap();
        let k1 = CanonicalKripke::build(&db);
        assert_eq!(k1.state_count(), 2);
        db.insert(BeliefStatement::positive(path(&[2, 1]), t("s2", "owl")))
            .unwrap();
        let k2 = CanonicalKripke::build(&db);
        assert_eq!(k2.state_count(), 4); // ε, 1, 2, 2·1
                                         // Bob's world inherits Alice's crow via the default rule; check the
                                         // edge 2 →1 2·1 exists and carries it.
        let v_ba = k2.state_of(&path(&[2, 1])).unwrap();
        assert!(k2.world_of(v_ba).contains_pos(&t("s1", "crow")));
        assert!(k2.world_of(v_ba).contains_pos(&t("s2", "owl")));
    }
}
