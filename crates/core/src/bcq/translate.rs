//! Algorithm 1: translating BCQs to non-recursive Datalog over the
//! canonical relational representation.
//!
//! For each subgoal `w̄_i R^s_i(x̄_i)` the translation creates a temporary
//! table
//!
//! ```text
//! T_i(w̄_i, x̄, s) :− E*(0, w̄_i, z), V(z, t, _, s, _), R*(t, x̄)
//! ```
//!
//! where `E*` is the chain of edge joins walking the belief path from the
//! root, and then composes a final rule joining the temp tables with the
//! paper's conditions `C_i`:
//!
//! * positive subgoal: sign `'+'` and the subgoal's own terms (constants
//!   select, repeated variables join);
//! * negative subgoal: key equality plus the nested disjunction
//!   `(s = '−' ∧ x̄t[2..] = x̄[2..]) ∨ (s = '+' ∧ ⋁_j x̄t[j] ≠ x̄[j])`
//!   covering *stated* and *unstated* negatives (Prop. 7).
//!
//! Two fidelity refinements over the paper's pseudo-code:
//!
//! * adjacent path positions involving a variable get an explicit `≠`
//!   condition, keeping valuations inside `Û*` (back-edges in `E` would
//!   otherwise admit paths like `1·1`);
//! * positive subgoals push their constants and the `s = '+'` filter into
//!   the temp-table rule (the paper notes selections *can* be pushed for
//!   positive subgoals, and must not be for negative ones).

use super::{Bcq, PathElem, QueryTerm};
use crate::error::{BeliefError, Result};
use crate::internal::{star_table, v_table, InternalStore, E_TABLE, U_TABLE};
use crate::statement::Sign;
use beliefdb_storage::datalog::{Atom, BodyLit, CmpLit, Evaluator, Program, Rule, Term};
use beliefdb_storage::{CmpOp, Recorder, Row};

/// A translated query: the Datalog program plus the name of the answer
/// relation.
#[derive(Debug, Clone)]
pub struct TranslatedQuery {
    pub program: Program,
    pub answer: String,
}

/// Translate a BCQ into a non-recursive Datalog program over the internal
/// schema (Algorithm 1).
pub fn translate(store: &InternalStore, q: &Bcq) -> Result<TranslatedQuery> {
    q.validate(store.schema())?;
    let mut rules = Vec::with_capacity(q.subgoals.len() + 1);
    let mut final_body: Vec<BodyLit> = Vec::new();

    // User-catalog atoms join the internal `U` relation directly; they come
    // first so their (small) bindings seed the join pipeline.
    for ua in &q.user_atoms {
        final_body.push(BodyLit::Pos(Atom::new(
            U_TABLE,
            vec![query_term(&ua.uid), query_term(&ua.name)],
        )));
    }

    for (i, sg) in q.subgoals.iter().enumerate() {
        let rel_def = store.schema().relation(sg.rel)?;
        let temp = format!("__bcq_T{}", i + 1);
        let arity = rel_def.arity();

        // ---- temp-table rule: E* chain, V, R* ----------------------------
        let mut body: Vec<BodyLit> = Vec::new();
        let mut head_terms: Vec<Term> = Vec::new();

        // E*(0, w̄_i, z): one E atom per path element.
        let mut prev = Term::val(0i64); // the root world id
        for (j, elem) in sg.path.iter().enumerate() {
            let label = path_term(elem);
            let next = Term::var(format!("__z{i}_{j}"));
            body.push(BodyLit::Pos(Atom::new(
                E_TABLE,
                vec![prev.clone(), label.clone(), next.clone()],
            )));
            head_terms.push(label);
            prev = next;
        }
        // Û* guard: adjacent path elements must differ when variables are
        // involved (constants were validated already).
        for j in 1..sg.path.len() {
            let a = path_term(&sg.path[j - 1]);
            let b = path_term(&sg.path[j]);
            if matches!(sg.path[j - 1], PathElem::Var(_)) || matches!(sg.path[j], PathElem::Var(_))
            {
                body.push(BodyLit::Cmp(CmpLit {
                    left: a,
                    op: CmpOp::Ne,
                    right: b,
                }));
            }
        }

        // V(z, t, _, s, _)
        let tid = Term::var(format!("__t{i}"));
        let sign_term: Term = match sg.sign {
            // Positive subgoals only need stated positives: filter early.
            Sign::Pos => Term::val("+"),
            // Negative subgoals need both signs in the temp table.
            Sign::Neg => Term::var(format!("__s{i}")),
        };
        body.push(BodyLit::Pos(Atom::new(
            v_table(rel_def.name()),
            vec![prev, tid.clone(), Term::Any, sign_term.clone(), Term::Any],
        )));

        // R*(t, x̄): fresh column variables; positive subgoals additionally
        // push their constant selections here.
        let mut star_terms: Vec<Term> = vec![tid];
        let mut col_terms: Vec<Term> = Vec::with_capacity(arity);
        for (j, arg) in sg.args.iter().enumerate() {
            let col = match (sg.sign, arg) {
                (Sign::Pos, QueryTerm::Const(v)) => Term::Const(v.clone()),
                _ => Term::var(format!("__x{i}_{j}")),
            };
            star_terms.push(col.clone());
            col_terms.push(col);
        }
        body.push(BodyLit::Pos(Atom::new(
            star_table(rel_def.name()),
            star_terms,
        )));

        head_terms.extend(col_terms.clone());
        head_terms.push(sign_term);
        rules.push(Rule {
            head: Atom::new(&temp, head_terms),
            body,
        });

        // ---- final-rule atom + conditions C_i -----------------------------
        let mut atom_terms: Vec<Term> = Vec::with_capacity(sg.path.len() + arity + 1);
        for elem in sg.path.iter() {
            atom_terms.push(path_term(elem));
        }
        match sg.sign {
            Sign::Pos => {
                // Conditions of line 4 folded into the atom: constants and
                // the query's variable names select/join directly.
                for arg in &sg.args {
                    atom_terms.push(query_term(arg));
                }
                atom_terms.push(Term::val("+"));
                final_body.push(BodyLit::Pos(Atom::new(&temp, atom_terms)));
            }
            Sign::Neg => {
                // Key joins directly (line 5: x̄t[1] = x̄i[1]); the remaining
                // columns stay fresh and feed the nested disjunction.
                atom_terms.push(query_term(&sg.args[0]));
                let mut fresh: Vec<Term> = Vec::with_capacity(arity.saturating_sub(1));
                for j in 1..arity {
                    let t = Term::var(format!("__n{i}_{j}"));
                    atom_terms.push(t.clone());
                    fresh.push(t);
                }
                let sign_var = Term::var(format!("__fs{i}"));
                atom_terms.push(sign_var.clone());
                final_body.push(BodyLit::Pos(Atom::new(&temp, atom_terms)));

                // (s = '−' ∧ ⋀_j n_j = x_j) ∨ ⋁_j (s = '+' ∧ n_j ≠ x_j)
                let mut stated: Vec<CmpLit> = vec![CmpLit {
                    left: sign_var.clone(),
                    op: CmpOp::Eq,
                    right: Term::val("-"),
                }];
                for (j, t) in fresh.iter().enumerate() {
                    stated.push(CmpLit {
                        left: t.clone(),
                        op: CmpOp::Eq,
                        right: query_term(&sg.args[j + 1]),
                    });
                }
                let mut disjuncts = vec![stated];
                for (j, t) in fresh.iter().enumerate() {
                    disjuncts.push(vec![
                        CmpLit {
                            left: sign_var.clone(),
                            op: CmpOp::Eq,
                            right: Term::val("+"),
                        },
                        CmpLit {
                            left: t.clone(),
                            op: CmpOp::Ne,
                            right: query_term(&sg.args[j + 1]),
                        },
                    ]);
                }
                final_body.push(BodyLit::Or(disjuncts));
            }
        }
    }

    // Arithmetic predicates.
    for p in &q.predicates {
        final_body.push(BodyLit::Cmp(CmpLit {
            left: query_term(&p.left),
            op: p.op,
            right: query_term(&p.right),
        }));
    }

    let head_terms: Vec<Term> = q.head.iter().map(query_term).collect();
    rules.push(Rule {
        head: Atom::new("__bcq_answer", head_terms),
        body: final_body,
    });

    Ok(TranslatedQuery {
        program: Program { rules },
        answer: "__bcq_answer".to_string(),
    })
}

/// Per-query evaluation options the surface layers thread down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOptions {
    /// Memory budget (bytes) for the chunked executor's materialization
    /// points; `None` is unlimited.
    pub memory_budget: Option<usize>,
    /// Apply the magic-sets / sideways-information-passing rewrite
    /// (`beliefdb_storage::opt::magic`) to the translated program before
    /// evaluation, so bound queries derive only demanded tuples. On by
    /// default; off evaluates exactly the Algorithm 1 rule stack (the
    /// pre-rewrite engine, byte for byte).
    pub magic: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            memory_budget: None,
            magic: true,
        }
    }
}

impl EvalOptions {
    fn budget(memory_budget: Option<usize>) -> Self {
        EvalOptions {
            memory_budget,
            ..EvalOptions::default()
        }
    }
}

/// The program evaluation runs: the translated rule stack, rewritten
/// demand-driven when `magic` is on (the answer relation and answer rows
/// are unchanged either way — the rewrite is answer-preserving).
fn effective_program(translated: &TranslatedQuery, opts: &EvalOptions) -> Result<Program> {
    if opts.magic {
        // The checked variant rejects programs touching `sys.*` virtual
        // relations with a clean error — they have no stored rows to
        // restrict, so rewriting them is always a bug upstream.
        beliefdb_storage::opt::magic::rewrite_checked(&translated.program)
            .map_err(BeliefError::from)
    } else {
        Ok(translated.program.clone())
    }
}

/// Translate and execute a query against the store. The translated rule
/// stack is first made demand-driven (magic sets / SIP — bound queries
/// derive only the tuples they can reach), rule plans go through the
/// storage-layer cost-based optimizer (`beliefdb_storage::opt`) — the
/// role the paper delegates to "the database optimizer" — and the
/// optimized plans are cached in the store keyed by (program, versions
/// of the tables it reads), so repeat queries skip the rewrite passes
/// entirely.
pub fn evaluate(store: &InternalStore, q: &Bcq) -> Result<Vec<Row>> {
    evaluate_with_options(store, q, &EvalOptions::default())
}

/// [`evaluate`] under a per-query memory budget (bytes): the chunked
/// executor's materialization points spill to disk past their share of
/// it (grace hash join, external merge sort — see
/// `beliefdb_storage::exec::spill`). `None` is exactly [`evaluate`].
pub fn evaluate_with_budget(
    store: &InternalStore,
    q: &Bcq,
    memory_budget: Option<usize>,
) -> Result<Vec<Row>> {
    evaluate_with_options(store, q, &EvalOptions::budget(memory_budget))
}

/// [`evaluate`] with explicit [`EvalOptions`] (memory budget, magic-sets
/// rewrite on/off).
pub fn evaluate_with_options(
    store: &InternalStore,
    q: &Bcq,
    opts: &EvalOptions,
) -> Result<Vec<Row>> {
    use beliefdb_storage::datalog::PlanCache;
    let translated = translate(store, q)?;
    let program = effective_program(&translated, opts)?;
    let mut ev = Evaluator::new(store.database())
        .seed_stats(store.stats_catalog())
        .with_memory_budget(opts.memory_budget);
    // The cache lock is held only for the brief lookup/store calls —
    // never while plans execute — so concurrent queries don't serialize
    // on each other's evaluation. Rewritten and unrewritten programs
    // have distinct texts, hence distinct cache entries.
    let key = program.to_string();
    let versions = PlanCache::read_versions(store.database(), &program);
    let cached = store.with_plan_cache(|cache| cache.lookup(&key, &versions));
    match cached {
        Some(plans) => {
            ev.run_cached_plans(&program, &plans)
                .map_err(BeliefError::from)?;
        }
        None => {
            let (_, plans) = ev
                .run_collecting_plans(&program)
                .map_err(BeliefError::from)?;
            store.with_plan_cache(|cache| cache.store(key, versions, plans));
        }
    }
    collect_answer(&ev, &translated)
}

/// [`evaluate_with_budget`] with per-operator profiling on — the
/// `EXPLAIN ANALYZE` backend. Returns the answer rows **plus** a report:
/// each answer-rule plan annotated with estimated *and* actual rows,
/// chunks, wall time, kernel-vs-fallback filter rows, and spill traffic.
/// Participates in the same plan cache as [`evaluate`] (a repeat query
/// profiles the cached plans; a first run stores the plans it collected).
pub fn evaluate_analyze_with_budget(
    store: &InternalStore,
    q: &Bcq,
    memory_budget: Option<usize>,
    rec: &mut Recorder,
) -> Result<(Vec<Row>, String)> {
    evaluate_analyze_with_options(store, q, &EvalOptions::budget(memory_budget), rec)
}

/// [`evaluate_analyze_with_budget`] with explicit [`EvalOptions`].
pub fn evaluate_analyze_with_options(
    store: &InternalStore,
    q: &Bcq,
    opts: &EvalOptions,
    rec: &mut Recorder,
) -> Result<(Vec<Row>, String)> {
    use beliefdb_storage::datalog::PlanCache;
    let translated = rec.span("translate", || translate(store, q))?;
    let program = effective_program(&translated, opts)?;
    let mut ev = Evaluator::new(store.database())
        .seed_stats(store.stats_catalog())
        .with_memory_budget(opts.memory_budget);
    // Same brief-lock cache protocol as [`evaluate_with_options`].
    let key = program.to_string();
    let versions = PlanCache::read_versions(store.database(), &program);
    let cached = rec.span("cache_lookup", || {
        store.with_plan_cache(|cache| cache.lookup(&key, &versions))
    });
    let profiled = match cached {
        Some(plans) => {
            let (_, profiled) = rec
                .span("execute", || ev.run_cached_analyze(&program, &plans))
                .map_err(BeliefError::from)?;
            profiled
        }
        None => {
            let (_, profiled) = rec
                .span("execute", || ev.run_collecting_analyze(&program))
                .map_err(BeliefError::from)?;
            let plans: Vec<_> = profiled.iter().map(|(p, _)| p.clone()).collect();
            store.with_plan_cache(|cache| cache.store(key, versions, plans));
            profiled
        }
    };
    let report = ev.render_analyze_report(&profiled);
    let rows = rec.span("sort", || collect_answer(&ev, &translated))?;
    Ok((rows, report))
}

/// Translate and execute, **streaming** the answer rows into `sink` as
/// the final Datalog rule produces them: the answer relation is never
/// collected or sorted. Rows are deduplicated but arrive in executor
/// order; intermediate temp tables are still materialized (they feed
/// later rules).
pub fn evaluate_streaming(store: &InternalStore, q: &Bcq, sink: impl FnMut(Row)) -> Result<()> {
    evaluate_streaming_with_budget(store, q, None, sink)
}

/// [`evaluate_streaming`] under a per-query memory budget (bytes); see
/// [`evaluate_with_budget`].
pub fn evaluate_streaming_with_budget(
    store: &InternalStore,
    q: &Bcq,
    memory_budget: Option<usize>,
    sink: impl FnMut(Row),
) -> Result<()> {
    evaluate_streaming_with_options(store, q, &EvalOptions::budget(memory_budget), sink)
}

/// [`evaluate_streaming`] with explicit [`EvalOptions`].
pub fn evaluate_streaming_with_options(
    store: &InternalStore,
    q: &Bcq,
    opts: &EvalOptions,
    sink: impl FnMut(Row),
) -> Result<()> {
    use beliefdb_storage::datalog::PlanCache;
    let translated = translate(store, q)?;
    let program = effective_program(&translated, opts)?;
    let mut ev = Evaluator::new(store.database())
        .seed_stats(store.stats_catalog())
        .with_memory_budget(opts.memory_budget);
    // Same brief-lock cache protocol as [`evaluate`]: a repeat query
    // streams the cached answer plan directly, skipping rewrite passes
    // and intermediate re-derivation.
    let key = program.to_string();
    let versions = PlanCache::read_versions(store.database(), &program);
    let cached = store.with_plan_cache(|cache| cache.lookup(&key, &versions));
    match cached {
        Some(plans) => ev
            .stream_cached_plans(&program, &plans, sink)
            .map_err(BeliefError::from),
        None => {
            let plans = ev
                .run_streaming_collecting_plans(&program, sink)
                .map_err(BeliefError::from)?;
            store.with_plan_cache(|cache| cache.store(key, versions, plans));
            Ok(())
        }
    }
}

/// Translate and execute without the optimizer: plans run exactly as
/// Algorithm 1 emits them. Kept for differential testing and the
/// optimizer-ablation benches.
pub fn evaluate_unoptimized(store: &InternalStore, q: &Bcq) -> Result<Vec<Row>> {
    let translated = translate(store, q)?;
    run_program(Evaluator::new_unoptimized(store.database()), &translated)
}

/// Translate and execute with the materializing (operator-at-a-time)
/// executor instead of the streaming one. Kept as the reference side of
/// the streaming-vs-materializing differential suite.
pub fn evaluate_materialized(store: &InternalStore, q: &Bcq) -> Result<Vec<Row>> {
    let translated = translate(store, q)?;
    let ev = Evaluator::new(store.database())
        .seed_stats(store.stats_catalog())
        .use_materializing_executor();
    run_program(ev, &translated)
}

/// Translate and execute with the row-at-a-time streaming executor (the
/// PR 2 tuple pipeline) instead of the vectorized chunk-at-a-time one.
/// Kept as the vectorization baseline: the `exec_vectorized` bench and
/// the three-way differential suite (chunked / row / materialized) run
/// whole BCQs through this path.
pub fn evaluate_rows(store: &InternalStore, q: &Bcq) -> Result<Vec<Row>> {
    let translated = translate(store, q)?;
    let ev = Evaluator::new(store.database())
        .seed_stats(store.stats_catalog())
        .use_row_executor();
    run_program(ev, &translated)
}

fn run_program(mut ev: Evaluator<'_>, translated: &TranslatedQuery) -> Result<Vec<Row>> {
    ev.run(&translated.program).map_err(BeliefError::from)?;
    collect_answer(&ev, translated)
}

fn collect_answer(ev: &Evaluator<'_>, translated: &TranslatedQuery) -> Result<Vec<Row>> {
    let mut rows = ev
        .relation(&translated.answer)
        .map(|r| r.to_vec())
        .unwrap_or_default();
    rows.sort();
    Ok(rows)
}

/// Full `EXPLAIN` of a query: the Datalog program Algorithm 1 produces,
/// followed by the optimized physical plan of every rule.
pub fn explain(store: &InternalStore, q: &Bcq) -> Result<String> {
    explain_with_budget(store, q, None)
}

/// [`explain`] under a per-query memory budget: materialization points
/// additionally carry `[spill budget=… partitions=…]` tags showing the
/// per-point share and partition fan-out.
pub fn explain_with_budget(
    store: &InternalStore,
    q: &Bcq,
    memory_budget: Option<usize>,
) -> Result<String> {
    explain_with_options(store, q, &EvalOptions::budget(memory_budget))
}

/// [`explain`] with explicit [`EvalOptions`]: with the magic rewrite on,
/// generated rules carry deterministic `[magic seed adorn=…]` /
/// `[magic adorn=…]` tags; with it off the output is byte-identical to
/// the pre-rewrite engine's.
pub fn explain_with_options(store: &InternalStore, q: &Bcq, opts: &EvalOptions) -> Result<String> {
    let translated = translate(store, q)?;
    let program = effective_program(&translated, opts)?;
    let mut ev = Evaluator::new(store.database())
        .seed_stats(store.stats_catalog())
        .with_memory_budget(opts.memory_budget);
    ev.explain_program(&program).map_err(BeliefError::from)
}

fn path_term(elem: &PathElem) -> Term {
    match elem {
        PathElem::User(u) => Term::Const(u.value()),
        PathElem::Var(name) => Term::var(name.clone()),
    }
}

fn query_term(t: &QueryTerm) -> Term {
    match t {
        QueryTerm::Const(v) => Term::Const(v.clone()),
        QueryTerm::Var(n) => Term::var(n.clone()),
        QueryTerm::Any => Term::Any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcq::dsl::*;
    use crate::bcq::naive;
    use crate::database::running_example;
    use crate::schema::ExternalSchema;
    use beliefdb_storage::row;

    /// Build an InternalStore holding the running example.
    fn store() -> InternalStore {
        let (db, ..) = running_example();
        let mut store = InternalStore::new(db.schema().clone()).unwrap();
        for u in db.users() {
            store
                .add_user(db.user_name(u).unwrap().to_string())
                .unwrap();
        }
        for stmt in db.statements() {
            assert!(store.insert_statement(&stmt).unwrap().accepted());
        }
        store
    }

    #[test]
    fn translation_produces_one_rule_per_subgoal_plus_answer() {
        let st = store();
        let s = st.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("x")])
            .positive(
                vec![pv("x")],
                s,
                vec![qany(), qany(), qany(), qany(), qany()],
            )
            .build(st.schema())
            .unwrap();
        let t = translate(&st, &q).unwrap();
        assert_eq!(t.program.rules.len(), 2);
        assert_eq!(t.answer, "__bcq_answer");
        // The temp rule walks E once (depth-1 path).
        let temp = &t.program.rules[0];
        assert!(temp
            .body
            .iter()
            .any(|b| matches!(b, BodyLit::Pos(a) if a.relation == "E")));
    }

    #[test]
    fn content_query_matches_naive() {
        let st = store();
        let (db, _, bob, _) = running_example();
        let s = st.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid"), qv("species")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qany(), qv("species"), qany(), qany()],
            )
            .build(st.schema())
            .unwrap();
        let translated = evaluate(&st, &q).unwrap();
        let mut reference = naive::evaluate(&db, &q).unwrap();
        reference.sort();
        assert_eq!(translated, reference);
        assert_eq!(translated, vec![row!["s2", "raven"]]);
    }

    #[test]
    fn depth_zero_query_reads_root_world() {
        let st = store();
        let s = st.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid")])
            .positive(vec![], s, vec![qv("sid"), qany(), qany(), qany(), qany()])
            .build(st.schema())
            .unwrap();
        assert_eq!(evaluate(&st, &q).unwrap(), vec![row!["s1"]]);
    }

    #[test]
    fn negative_subgoal_stated_and_unstated() {
        let st = store();
        let (db, alice, _, _) = running_example();
        let s = st.schema().relation_id("Sightings").unwrap();
        // Example 15: who disagrees with Alice?
        let args = vec![qv("y"), qv("z"), qv("u"), qv("v"), qv("w")];
        let q = Bcq::builder(vec![qv("x")])
            .negative(vec![pv("x")], s, args.clone())
            .positive(vec![pu(alice)], s, args)
            .build(st.schema())
            .unwrap();
        let translated = evaluate(&st, &q).unwrap();
        let reference = naive::evaluate(&db, &q).unwrap();
        assert_eq!(translated, reference);
        assert_eq!(translated, vec![row![2]]);
    }

    #[test]
    fn higher_order_conflict_matches_naive() {
        let st = store();
        let (db, alice, bob, _) = running_example();
        let s = st.schema().relation_id("Sightings").unwrap();
        let args = vec![qv("x"), qv("z"), qv("y"), qv("u"), qv("v")];
        let q = Bcq::builder(vec![qv("x"), qv("y")])
            .positive(vec![pu(bob), pu(alice)], s, args.clone())
            .negative(vec![pu(bob)], s, args)
            .build(st.schema())
            .unwrap();
        let translated = evaluate(&st, &q).unwrap();
        let reference = naive::evaluate(&db, &q).unwrap();
        assert_eq!(translated, reference);
        assert_eq!(translated.len(), 2);
    }

    #[test]
    fn example_18_disputed_samples() {
        // Example 18's relation R(sample, category, origin) with two users
        // disagreeing on category or origin.
        let schema = ExternalSchema::new().with_relation("R", &["sample", "category", "origin"]);
        let mut st = InternalStore::new(schema).unwrap();
        let u1 = st.add_user("u1").unwrap();
        let u2 = st.add_user("u2").unwrap();
        let r = st.schema().relation_id("R").unwrap();
        let p1 = crate::path::BeliefPath::user(u1);
        let p2 = crate::path::BeliefPath::user(u2);
        let t_a1 = crate::statement::GroundTuple::new(r, row!["a", "fungus", "soil"]);
        let t_a2 = crate::statement::GroundTuple::new(r, row!["a", "fungus", "bark"]);
        let t_b = crate::statement::GroundTuple::new(r, row!["b", "moss", "rock"]);
        st.insert(&p1, &t_a1, crate::statement::Sign::Pos).unwrap();
        st.insert(&p2, &t_a2, crate::statement::Sign::Pos).unwrap();
        st.insert(&p1, &t_b, crate::statement::Sign::Pos).unwrap();

        // q(x, y, z) :- [y]R+(x, u, v), [z]R−(x, u, v)
        let q = Bcq::builder(vec![qv("x"), qv("y"), qv("z")])
            .positive(vec![pv("y")], r, vec![qv("x"), qv("u"), qv("v")])
            .negative(vec![pv("z")], r, vec![qv("x"), qv("u"), qv("v")])
            .build(st.schema())
            .unwrap();
        let rows = evaluate(&st, &q).unwrap();
        // Sample a is disputed in both directions; b is not disputed.
        assert!(rows.contains(&row!["a", 1, 2]));
        assert!(rows.contains(&row!["a", 2, 1]));
        assert!(!rows
            .iter()
            .any(|r| r[0] == beliefdb_storage::Value::str("b")));

        // Differential check against the naive evaluator.
        let logical = st.to_belief_database().unwrap();
        let reference = naive::evaluate(&logical, &q).unwrap();
        assert_eq!(rows, reference);
    }

    #[test]
    fn u_star_guard_blocks_repeated_users() {
        let st = store();
        let s = st.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("x"), qv("y")])
            .positive(
                vec![pv("x"), pv("y")],
                s,
                vec![qany(), qany(), qany(), qany(), qany()],
            )
            .build(st.schema())
            .unwrap();
        let rows = evaluate(&st, &q).unwrap();
        assert!(!rows.is_empty());
        for r in &rows {
            assert_ne!(r[0], r[1], "translated query leaked a path outside Û*");
        }
        // And the whole answer agrees with the naive evaluator.
        let (db, ..) = running_example();
        let reference = naive::evaluate(&db, &q).unwrap();
        assert_eq!(rows, reference);
    }

    #[test]
    fn arithmetic_predicates_apply() {
        let st = store();
        let (db, alice, _, _) = running_example();
        let s = st.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("x"), qv("sp1"), qv("sp2")])
            .positive(
                vec![pu(alice)],
                s,
                vec![qv("sid"), qany(), qv("sp1"), qany(), qany()],
            )
            .positive(
                vec![pv("x")],
                s,
                vec![qv("sid"), qany(), qv("sp2"), qany(), qany()],
            )
            .pred(qv("sp1"), beliefdb_storage::CmpOp::Ne, qv("sp2"))
            .build(st.schema())
            .unwrap();
        let rows = evaluate(&st, &q).unwrap();
        let reference = naive::evaluate(&db, &q).unwrap();
        assert_eq!(rows, reference);
        assert_eq!(rows, vec![row![2, "crow", "raven"]]);
    }

    #[test]
    fn optimized_and_unoptimized_evaluation_agree() {
        let st = store();
        let (_, alice, bob, _) = running_example();
        let s = st.schema().relation_id("Sightings").unwrap();
        let args = vec![qv("y"), qv("z"), qv("u"), qv("v"), qv("w")];
        let queries = vec![
            Bcq::builder(vec![qv("x")])
                .negative(vec![pv("x")], s, args.clone())
                .positive(vec![pu(alice)], s, args.clone())
                .build(st.schema())
                .unwrap(),
            Bcq::builder(vec![qv("y"), qv("u")])
                .positive(vec![pu(bob), pu(alice)], s, args.clone())
                .build(st.schema())
                .unwrap(),
            Bcq::builder(vec![qv("x"), qv("y")])
                .positive(vec![pv("x"), pv("y")], s, args)
                .build(st.schema())
                .unwrap(),
        ];
        for q in &queries {
            assert_eq!(
                evaluate(&st, q).unwrap(),
                evaluate_unoptimized(&st, q).unwrap(),
                "optimizer changed semantics of {q}"
            );
        }
    }

    #[test]
    fn explain_renders_physical_plans() {
        let st = store();
        let s = st.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid")])
            .positive(
                vec![pu(crate::ids::UserId(2))],
                s,
                vec![qv("sid"), qany(), qany(), qany(), qany()],
            )
            .build(st.schema())
            .unwrap();
        let text = explain(&st, &q).unwrap();
        assert!(text.contains("__bcq_T1"), "{text}");
        assert!(text.contains("Scan"), "{text}");
        assert_eq!(
            text,
            explain(&st, &q).unwrap(),
            "explain must be deterministic"
        );
    }

    #[test]
    fn unsafe_query_rejected_before_translation() {
        let st = store();
        let s = st.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("ghost")])
            .positive(vec![], s, vec![qany(), qany(), qany(), qany(), qany()])
            .build_unchecked();
        assert!(translate(&st, &q).is_err());
    }
}
