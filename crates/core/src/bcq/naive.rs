//! Naive BCQ evaluation — the executable form of Def. 14.
//!
//! `answer(q) = { θ(x̄) | θ : var(Φ) → const, D |= θ(Φ) }`.
//!
//! Evaluation enumerates valuations directly against the logical closure:
//! path variables range over the registered users, argument variables over
//! the tuples of the entailed worlds. This is exponential in the number of
//! path variables and linear in world sizes — fine for the small databases
//! the differential tests and the evaluation ablation use, and completely
//! independent of the relational encoding (which is the point).

use super::{Bcq, CmpPred, PathElem, QueryTerm, Subgoal};
use crate::closure::Closure;
use crate::database::BeliefDatabase;
use crate::error::Result;
use crate::ids::UserId;
use crate::path::BeliefPath;
use crate::statement::Sign;
use beliefdb_storage::{Row, Value};
use std::collections::{BTreeMap, BTreeSet};

type Bindings = BTreeMap<String, Value>;

/// Evaluate a query against a belief database per Def. 14.
pub fn evaluate(db: &BeliefDatabase, q: &Bcq) -> Result<Vec<Row>> {
    q.validate(db.schema())?;
    let mut closure = Closure::new(db);

    // Enumerate assignments for path variables (over registered users).
    let path_vars: Vec<String> = collect_path_vars(q);
    let users: Vec<UserId> = db.users().collect();

    let mut answers: BTreeSet<Row> = BTreeSet::new();
    let mut assignment: Vec<UserId> = Vec::with_capacity(path_vars.len());
    enumerate_paths(
        db,
        &mut closure,
        q,
        &path_vars,
        &users,
        &mut assignment,
        &mut answers,
    )?;
    Ok(answers.into_iter().collect())
}

fn collect_path_vars(q: &Bcq) -> Vec<String> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for sg in &q.subgoals {
        for e in &sg.path {
            if let PathElem::Var(n) = e {
                if seen.insert(n.clone()) {
                    out.push(n.clone());
                }
            }
        }
    }
    out
}

fn enumerate_paths(
    db: &BeliefDatabase,
    closure: &mut Closure<'_>,
    q: &Bcq,
    path_vars: &[String],
    users: &[UserId],
    assignment: &mut Vec<UserId>,
    answers: &mut BTreeSet<Row>,
) -> Result<()> {
    if assignment.len() == path_vars.len() {
        let mut bindings: Bindings = BTreeMap::new();
        for (name, uid) in path_vars.iter().zip(assignment.iter()) {
            bindings.insert(name.clone(), uid.value());
        }
        // Ground every subgoal path; skip assignments producing paths
        // outside Û* (such θ(Φ) are not well-formed statements).
        let mut grounded: Vec<(BeliefPath, &Subgoal)> = Vec::with_capacity(q.subgoals.len());
        for sg in &q.subgoals {
            match ground_path(sg, &bindings) {
                Some(p) => grounded.push((p, sg)),
                None => return Ok(()),
            }
        }
        // Positive subgoals first: they bind argument variables.
        grounded.sort_by_key(|(_, sg)| match sg.sign {
            Sign::Pos => 0,
            Sign::Neg => 1,
        });
        match_user_atoms(db, closure, q, &grounded, 0, bindings, answers)?;
        return Ok(());
    }
    for &u in users {
        assignment.push(u);
        enumerate_paths(db, closure, q, path_vars, users, assignment, answers)?;
        assignment.pop();
    }
    Ok(())
}

/// Bind the user-catalog atoms against the registry, then fall through to
/// subgoal matching.
fn match_user_atoms(
    db: &BeliefDatabase,
    closure: &mut Closure<'_>,
    q: &Bcq,
    grounded: &[(BeliefPath, &Subgoal)],
    idx: usize,
    bindings: Bindings,
    answers: &mut BTreeSet<Row>,
) -> Result<()> {
    let Some(ua) = q.user_atoms.get(idx) else {
        return match_subgoals(closure, q, grounded, bindings, answers);
    };
    let pattern = [ua.uid.clone(), ua.name.clone()];
    for u in db.users() {
        let name = db.user_name(u)?;
        let row = Row::new(vec![u.value(), Value::str(name)]);
        if let Some(extended) = unify(&pattern, &row, &bindings) {
            match_user_atoms(db, closure, q, grounded, idx + 1, extended, answers)?;
        }
    }
    Ok(())
}

fn ground_path(sg: &Subgoal, bindings: &Bindings) -> Option<BeliefPath> {
    let mut users = Vec::with_capacity(sg.path.len());
    for e in &sg.path {
        let uid = match e {
            PathElem::User(u) => *u,
            PathElem::Var(n) => UserId::from_value(bindings.get(n)?)?,
        };
        users.push(uid);
    }
    BeliefPath::new(users).ok()
}

fn match_subgoals(
    closure: &mut Closure<'_>,
    q: &Bcq,
    grounded: &[(BeliefPath, &Subgoal)],
    bindings: Bindings,
    answers: &mut BTreeSet<Row>,
) -> Result<()> {
    let Some(((path, sg), rest)) = grounded.split_first() else {
        // All subgoals satisfied: check predicates, emit the head.
        if q.predicates.iter().all(|p| eval_pred(p, &bindings)) {
            if let Some(row) = project_head(q, &bindings) {
                answers.insert(row);
            }
        }
        return Ok(());
    };

    match sg.sign {
        Sign::Pos => {
            // Match the pattern against the world's positive tuples.
            let candidates: Vec<Row> = closure
                .entailed_world(path)
                .pos_tuples()
                .filter(|t| t.rel == sg.rel)
                .map(|t| t.row)
                .collect();
            for row in candidates {
                if let Some(extended) = unify(&sg.args, &row, &bindings) {
                    match_subgoals(closure, q, rest, extended, answers)?;
                }
            }
            Ok(())
        }
        Sign::Neg => {
            // All argument variables are bound by now (safety + ordering);
            // the subgoal is a ground negative-entailment check.
            let mut values = Vec::with_capacity(sg.args.len());
            for a in &sg.args {
                match a {
                    QueryTerm::Const(v) => values.push(v.clone()),
                    QueryTerm::Var(n) => match bindings.get(n) {
                        Some(v) => values.push(v.clone()),
                        None => return Ok(()), // unbound ⇒ no well-formed θ
                    },
                    QueryTerm::Any => unreachable!("rejected by safety check"),
                }
            }
            let tuple = crate::statement::GroundTuple::new(sg.rel, Row::new(values));
            if closure.entailed_world(path).entails_neg(&tuple) {
                match_subgoals(closure, q, rest, bindings, answers)?;
            }
            Ok(())
        }
    }
}

/// Unify a subgoal's argument pattern with a tuple row, extending bindings.
fn unify(args: &[QueryTerm], row: &Row, bindings: &Bindings) -> Option<Bindings> {
    if args.len() != row.arity() {
        return None;
    }
    let mut extended = bindings.clone();
    for (a, v) in args.iter().zip(row.values()) {
        match a {
            QueryTerm::Any => {}
            QueryTerm::Const(c) => {
                if c != v {
                    return None;
                }
            }
            QueryTerm::Var(n) => match extended.get(n) {
                Some(bound) => {
                    if bound != v {
                        return None;
                    }
                }
                None => {
                    extended.insert(n.clone(), v.clone());
                }
            },
        }
    }
    Some(extended)
}

fn eval_pred(p: &CmpPred, bindings: &Bindings) -> bool {
    let side = |t: &QueryTerm| -> Option<Value> {
        match t {
            QueryTerm::Const(v) => Some(v.clone()),
            QueryTerm::Var(n) => bindings.get(n).cloned(),
            QueryTerm::Any => None,
        }
    };
    match (side(&p.left), side(&p.right)) {
        (Some(l), Some(r)) => p.op.eval(&l, &r),
        _ => false,
    }
}

fn project_head(q: &Bcq, bindings: &Bindings) -> Option<Row> {
    let mut vals = Vec::with_capacity(q.head.len());
    for t in &q.head {
        match t {
            QueryTerm::Const(v) => vals.push(v.clone()),
            QueryTerm::Var(n) => vals.push(bindings.get(n)?.clone()),
            QueryTerm::Any => return None,
        }
    }
    Some(Row::new(vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcq::dsl::*;
    use crate::bcq::Bcq;
    use crate::database::running_example;
    use crate::statement::BeliefStatement;
    use beliefdb_storage::{row, CmpOp};

    /// Paper q1-style content query: what does Bob believe about Sightings?
    #[test]
    fn content_query_over_bobs_world() {
        let (db, _, bob, _) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid"), qv("species")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qany(), qv("species"), qany(), qany()],
            )
            .build(db.schema())
            .unwrap();
        let rows = evaluate(&db, &q).unwrap();
        assert_eq!(rows, vec![row!["s2", "raven"]]);
    }

    /// Paper q2 of Sect. 2: who disagrees with Alice about a species?
    #[test]
    fn disagreement_query_q2() {
        let (db, alice, _, _) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        // q(name2, sp1, sp2) :- [alice]S+(sid,u,sp1,d,l), [x]S+(sid,u2,sp2,d2,l2),
        //                       sid=sid, sp1 <> sp2
        let q = Bcq::builder(vec![qv("x"), qv("sp1"), qv("sp2")])
            .positive(
                vec![pu(alice)],
                s,
                vec![qv("sid"), qany(), qv("sp1"), qany(), qany()],
            )
            .positive(
                vec![pv("x")],
                s,
                vec![qv("sid"), qany(), qv("sp2"), qany(), qany()],
            )
            .pred(qv("sp1"), CmpOp::Ne, qv("sp2"))
            .build(db.schema())
            .unwrap();
        let rows = evaluate(&db, &q).unwrap();
        // Bob (uid 2) believes raven where Alice believes crow.
        assert_eq!(rows, vec![row![2, "crow", "raven"]]);
    }

    /// Example 15: users who disagree with any of Alice's beliefs.
    #[test]
    fn example_15_query() {
        let (db, alice, _, _) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        let args = vec![qv("y"), qv("z"), qv("u"), qv("v"), qv("w")];
        let q = Bcq::builder(vec![qv("x")])
            .negative(vec![pv("x")], s, args.clone())
            .positive(vec![pu(alice)], s, args)
            .build(db.schema())
            .unwrap();
        let rows = evaluate(&db, &q).unwrap();
        // Bob explicitly denies s1 (which Alice believes by default) and his
        // raven makes Alice's crow an unstated negative.
        assert_eq!(rows, vec![row![2]]);
    }

    /// Higher-order conflict query (paper q2 of Sect. 6.2): tuples Bob
    /// believes Alice believes but does not believe himself.
    #[test]
    fn higher_order_conflict_query() {
        let (db, alice, bob, _) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        let args = vec![qv("x"), qv("z"), qv("y"), qv("u"), qv("v")];
        let q = Bcq::builder(vec![qv("x"), qv("y")])
            .positive(vec![pu(bob), pu(alice)], s, args.clone())
            .negative(vec![pu(bob)], s, args)
            .build(db.schema())
            .unwrap();
        let rows = evaluate(&db, &q).unwrap();
        // Bob believes Alice believes crow@s2 yet believes raven himself
        // (unstated negative), and believes Alice believes bald eagle@s1
        // which he explicitly denies.
        assert_eq!(rows, vec![row!["s1", "bald eagle"], row!["s2", "crow"]]);
    }

    #[test]
    fn constants_in_negative_subgoal() {
        let (db, _alice, _, _) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        // Who has a negative belief about Alice's exact crow tuple?
        let q = Bcq::builder(vec![qv("x")])
            .negative(
                vec![pv("x")],
                s,
                vec![
                    qc("s2"),
                    qc("Alice"),
                    qc("crow"),
                    qc("6-14-08"),
                    qc("Lake Placid"),
                ],
            )
            .build(db.schema())
            .unwrap();
        let rows = evaluate(&db, &q).unwrap();
        assert_eq!(rows, vec![row![2]]);
    }

    #[test]
    fn invalid_path_assignments_are_skipped() {
        // A query with two adjacent path variables never matches x = y
        // (1·1 ∉ Û*).
        let (db, ..) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("x"), qv("y")])
            .positive(
                vec![pv("x"), pv("y")],
                s,
                vec![qany(), qany(), qany(), qany(), qany()],
            )
            .build(db.schema())
            .unwrap();
        let rows = evaluate(&db, &q).unwrap();
        assert!(!rows.is_empty());
        for r in rows {
            assert_ne!(r[0], r[1], "path must stay in Û*");
        }
    }

    #[test]
    fn predicates_filter_results() {
        let (db, _, bob, _) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qany(), qv("sp"), qany(), qany()],
            )
            .pred(qv("sp"), CmpOp::Eq, qc("heron"))
            .build(db.schema())
            .unwrap();
        assert!(evaluate(&db, &q).unwrap().is_empty());
    }

    #[test]
    fn constant_head_terms() {
        let (db, _, bob, _) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qc("marker"), qv("sid")])
            .positive(
                vec![pu(bob)],
                s,
                vec![qv("sid"), qany(), qany(), qany(), qany()],
            )
            .build(db.schema())
            .unwrap();
        let rows = evaluate(&db, &q).unwrap();
        assert_eq!(rows, vec![row!["marker", "s2"]]);
    }

    #[test]
    fn results_are_set_semantics() {
        let (db, ..) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        // Date is shared by every tuple: projection collapses to one row.
        let q = Bcq::builder(vec![qv("d")])
            .positive(vec![], s, vec![qany(), qany(), qany(), qv("d"), qany()])
            .build(db.schema())
            .unwrap();
        let rows = evaluate(&db, &q).unwrap();
        assert_eq!(rows, vec![row!["6-14-08"]]);
    }

    #[test]
    fn matches_direct_entailment_checks() {
        // Cross-check: a single-subgoal query with all-constant args agrees
        // with Closure::entails.
        let (db, _, bob, _) = running_example();
        let s = db.schema().relation_id("Sightings").unwrap();
        let tuple = crate::statement::GroundTuple::new(
            s,
            row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
        );
        let q = Bcq::builder(vec![qc(1)])
            .negative(
                vec![pu(bob)],
                s,
                vec![
                    qc("s1"),
                    qc("Carol"),
                    qc("bald eagle"),
                    qc("6-14-08"),
                    qc("Lake Forest"),
                ],
            )
            .build(db.schema())
            .unwrap();
        let expected = crate::closure::entails(
            &db,
            &BeliefStatement::negative(crate::path::BeliefPath::user(bob), tuple),
        );
        assert_eq!(!evaluate(&db, &q).unwrap().is_empty(), expected);
        assert!(expected);
    }
}
