//! Belief Conjunctive Queries (Def. 13–14) and their two evaluators.
//!
//! A BCQ is `q(x̄) :− w̄1 R1^s1(x̄1), ..., w̄g Rg^sg(x̄g)` — conjunctive
//! queries whose subgoals carry belief paths and signs — plus optional
//! arithmetic predicates. Belief paths and arguments may mix variables and
//! constants; the same variable namespace spans paths and arguments (a path
//! variable binds to a user id, which compares as an integer value).
//!
//! Two evaluators implement Def. 14:
//!
//! * [`naive`] — directly over the logical closure (`D̄`); the executable
//!   specification, exponential in path variables; used for differential
//!   testing and the evaluation-strategy ablation.
//! * [`translate`] — Algorithm 1: translation to non-recursive Datalog over
//!   the internal relational schema; the production path.

pub mod naive;
pub mod translate;

use crate::error::{BeliefError, Result};
use crate::ids::{RelId, UserId};
use crate::schema::ExternalSchema;
use crate::statement::Sign;
use beliefdb_storage::{CmpOp, Value};
use std::collections::BTreeSet;
use std::fmt;

/// One element of a subgoal's belief path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathElem {
    /// A concrete user.
    User(UserId),
    /// A variable ranging over users.
    Var(String),
}

impl PathElem {
    pub fn var(name: impl Into<String>) -> Self {
        PathElem::Var(name.into())
    }
}

/// A term in a subgoal's argument list or in the query head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryTerm {
    /// A constant value.
    Const(Value),
    /// A named variable.
    Var(String),
    /// An anonymous variable (projected away). Only allowed where it has no
    /// semantic weight: positive subgoal arguments.
    Any,
}

impl QueryTerm {
    pub fn var(name: impl Into<String>) -> Self {
        QueryTerm::Var(name.into())
    }

    pub fn val(v: impl Into<Value>) -> Self {
        QueryTerm::Const(v.into())
    }

    pub fn as_var(&self) -> Option<&str> {
        match self {
            QueryTerm::Var(n) => Some(n),
            _ => None,
        }
    }
}

/// A modal subgoal `w̄ R^s(x̄)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Subgoal {
    pub path: Vec<PathElem>,
    pub sign: Sign,
    pub rel: RelId,
    pub args: Vec<QueryTerm>,
}

impl Subgoal {
    pub fn positive(path: Vec<PathElem>, rel: RelId, args: Vec<QueryTerm>) -> Self {
        Subgoal {
            path,
            sign: Sign::Pos,
            rel,
            args,
        }
    }

    pub fn negative(path: Vec<PathElem>, rel: RelId, args: Vec<QueryTerm>) -> Self {
        Subgoal {
            path,
            sign: Sign::Neg,
            rel,
            args,
        }
    }

    /// Depth of the subgoal's belief path.
    pub fn depth(&self) -> usize {
        self.path.len()
    }
}

/// An arithmetic predicate `a op b` (Def. 13 allows =, ≠, <, >, ≤, ≥).
#[derive(Debug, Clone, PartialEq)]
pub struct CmpPred {
    pub left: QueryTerm,
    pub op: CmpOp,
    pub right: QueryTerm,
}

/// An atom over the user catalog `U(uid, name)`.
///
/// The paper's example queries join the `Users` relation (q1, q2 of
/// Sect. 2); `Users` is the catalog the BDMS manages itself (Fig. 5), not a
/// belief-annotated relation, so it gets its own atom kind. User atoms bind
/// their variables (they behave like positive subgoals for safety).
#[derive(Debug, Clone, PartialEq)]
pub struct UserAtom {
    pub uid: QueryTerm,
    pub name: QueryTerm,
}

/// A belief conjunctive query.
#[derive(Debug, Clone, PartialEq)]
pub struct Bcq {
    pub head: Vec<QueryTerm>,
    pub subgoals: Vec<Subgoal>,
    pub predicates: Vec<CmpPred>,
    pub user_atoms: Vec<UserAtom>,
}

impl Bcq {
    /// Start building a query with the given head terms.
    pub fn builder(head: Vec<QueryTerm>) -> BcqBuilder {
        BcqBuilder {
            bcq: Bcq {
                head,
                subgoals: Vec::new(),
                predicates: Vec::new(),
                user_atoms: Vec::new(),
            },
        }
    }

    /// All variables of the query, sorted.
    pub fn variables(&self) -> BTreeSet<&str> {
        let mut vars = BTreeSet::new();
        for t in &self.head {
            if let QueryTerm::Var(n) = t {
                vars.insert(n.as_str());
            }
        }
        for sg in &self.subgoals {
            for e in &sg.path {
                if let PathElem::Var(n) = e {
                    vars.insert(n.as_str());
                }
            }
            for a in &sg.args {
                if let QueryTerm::Var(n) = a {
                    vars.insert(n.as_str());
                }
            }
        }
        for p in &self.predicates {
            for t in [&p.left, &p.right] {
                if let QueryTerm::Var(n) = t {
                    vars.insert(n.as_str());
                }
            }
        }
        for ua in &self.user_atoms {
            for t in [&ua.uid, &ua.name] {
                if let QueryTerm::Var(n) = t {
                    vars.insert(n.as_str());
                }
            }
        }
        vars
    }

    /// Variables with a *positive occurrence* (Def. 13): in any belief path,
    /// in the arguments of a positive subgoal, or in a user atom.
    pub fn positively_bound(&self) -> BTreeSet<&str> {
        let mut vars = BTreeSet::new();
        for sg in &self.subgoals {
            for e in &sg.path {
                if let PathElem::Var(n) = e {
                    vars.insert(n.as_str());
                }
            }
            if sg.sign == Sign::Pos {
                for a in &sg.args {
                    if let QueryTerm::Var(n) = a {
                        vars.insert(n.as_str());
                    }
                }
            }
        }
        for ua in &self.user_atoms {
            for t in [&ua.uid, &ua.name] {
                if let QueryTerm::Var(n) = t {
                    vars.insert(n.as_str());
                }
            }
        }
        vars
    }

    /// The safety check of Def. 13 plus structural validation against the
    /// schema. Every variable must have a positive occurrence; wildcards may
    /// only appear as positive-subgoal arguments; constant path segments
    /// must respect `Û*`; arities must match.
    pub fn validate(&self, schema: &ExternalSchema) -> Result<()> {
        if self.subgoals.is_empty() && self.user_atoms.is_empty() {
            return Err(BeliefError::MalformedQuery("query has no subgoals".into()));
        }
        for sg in &self.subgoals {
            let def = schema.relation(sg.rel)?;
            if sg.args.len() != def.arity() {
                return Err(BeliefError::MalformedQuery(format!(
                    "subgoal over `{}` has {} arguments, expected {}",
                    def.name(),
                    sg.args.len(),
                    def.arity()
                )));
            }
            for pair in sg.path.windows(2) {
                if let (PathElem::User(a), PathElem::User(b)) = (&pair[0], &pair[1]) {
                    if a == b {
                        return Err(BeliefError::MalformedQuery(format!(
                            "belief path repeats user {a} in adjacent positions"
                        )));
                    }
                }
            }
            if sg.sign == Sign::Neg && sg.args.iter().any(|a| matches!(a, QueryTerm::Any)) {
                return Err(BeliefError::UnsafeQuery(
                    "wildcard in a negative subgoal is an unbound existential variable".into(),
                ));
            }
        }
        for t in &self.head {
            if matches!(t, QueryTerm::Any) {
                return Err(BeliefError::MalformedQuery("wildcard in query head".into()));
            }
        }
        let bound = self.positively_bound();
        for v in self.variables() {
            if !bound.contains(v) {
                return Err(BeliefError::UnsafeQuery(format!(
                    "variable `{v}` has no positive occurrence (Def. 13)"
                )));
            }
        }
        Ok(())
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }
}

/// Fluent builder for [`Bcq`].
pub struct BcqBuilder {
    bcq: Bcq,
}

impl BcqBuilder {
    /// Add a positive subgoal.
    pub fn positive(mut self, path: Vec<PathElem>, rel: RelId, args: Vec<QueryTerm>) -> Self {
        self.bcq.subgoals.push(Subgoal::positive(path, rel, args));
        self
    }

    /// Add a negative subgoal.
    pub fn negative(mut self, path: Vec<PathElem>, rel: RelId, args: Vec<QueryTerm>) -> Self {
        self.bcq.subgoals.push(Subgoal::negative(path, rel, args));
        self
    }

    /// Add an arithmetic predicate.
    pub fn pred(mut self, left: QueryTerm, op: CmpOp, right: QueryTerm) -> Self {
        self.bcq.predicates.push(CmpPred { left, op, right });
        self
    }

    /// Add a user-catalog atom `U(uid, name)`.
    pub fn user(mut self, uid: QueryTerm, name: QueryTerm) -> Self {
        self.bcq.user_atoms.push(UserAtom { uid, name });
        self
    }

    /// Finish, validating against the schema.
    pub fn build(self, schema: &ExternalSchema) -> Result<Bcq> {
        self.bcq.validate(schema)?;
        Ok(self.bcq)
    }

    /// Finish without validation (for tests that exercise the validators).
    pub fn build_unchecked(self) -> Bcq {
        self.bcq
    }
}

impl fmt::Display for Bcq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write_term(f, t)?;
        }
        write!(f, ") :- ")?;
        for (i, sg) in self.subgoals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            for e in &sg.path {
                match e {
                    PathElem::User(u) => write!(f, "[{u}]")?,
                    PathElem::Var(v) => write!(f, "[{v}]")?,
                }
            }
            write!(f, "R{}{}(", sg.rel, sg.sign)?;
            for (j, a) in sg.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write_term(f, a)?;
            }
            write!(f, ")")?;
        }
        for p in &self.predicates {
            write!(f, ", ")?;
            write_term(f, &p.left)?;
            write!(f, " {} ", p.op)?;
            write_term(f, &p.right)?;
        }
        Ok(())
    }
}

fn write_term(f: &mut fmt::Formatter<'_>, t: &QueryTerm) -> fmt::Result {
    match t {
        QueryTerm::Const(Value::Str(s)) => write!(f, "'{s}'"),
        QueryTerm::Const(v) => write!(f, "{v}"),
        QueryTerm::Var(n) => write!(f, "{n}"),
        QueryTerm::Any => write!(f, "_"),
    }
}

/// Shorthand constructors for query literals.
pub mod dsl {
    use super::*;

    /// Variable term.
    pub fn qv(name: &str) -> QueryTerm {
        QueryTerm::var(name)
    }

    /// Constant term.
    pub fn qc(v: impl Into<Value>) -> QueryTerm {
        QueryTerm::val(v)
    }

    /// Wildcard term.
    pub fn qany() -> QueryTerm {
        QueryTerm::Any
    }

    /// Constant path element.
    pub fn pu(u: UserId) -> PathElem {
        PathElem::User(u)
    }

    /// Variable path element.
    pub fn pv(name: &str) -> PathElem {
        PathElem::var(name)
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;

    fn schema() -> ExternalSchema {
        ExternalSchema::new().with_relation("S", &["sid", "uid", "species", "date", "location"])
    }

    #[test]
    fn build_example_15() {
        // q3(x) :- x S−(y,z,u,v,w), Alice S+(y,z,u,v,w)
        let schema = schema();
        let s = schema.relation_id("S").unwrap();
        let q = Bcq::builder(vec![qv("x")])
            .negative(
                vec![pv("x")],
                s,
                vec![qv("y"), qv("z"), qv("u"), qv("v"), qv("w")],
            )
            .positive(
                vec![pu(UserId(1))],
                s,
                vec![qv("y"), qv("z"), qv("u"), qv("v"), qv("w")],
            )
            .build(&schema)
            .unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.subgoals.len(), 2);
        assert_eq!(q.variables().len(), 6);
        let shown = q.to_string();
        assert!(shown.contains("R0-"));
        assert!(shown.contains("R0+"));
    }

    #[test]
    fn safety_rejects_unbound_negative_variable() {
        // q(y) :- [1]S−(y, ...) — y only occurs in a negative subgoal's args.
        let schema = schema();
        let s = schema.relation_id("S").unwrap();
        let err = Bcq::builder(vec![qv("y")])
            .negative(
                vec![pu(UserId(1))],
                s,
                vec![qv("y"), qc("a"), qc("b"), qc("c"), qc("d")],
            )
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, BeliefError::UnsafeQuery(_)));
    }

    #[test]
    fn safety_accepts_path_bound_variable() {
        // q3's x: bound in the negative subgoal's PATH — that is a positive
        // occurrence.
        let schema = schema();
        let s = schema.relation_id("S").unwrap();
        let q = Bcq::builder(vec![qv("x")])
            .negative(
                vec![pv("x")],
                s,
                vec![qc("s1"), qc("u"), qc("sp"), qc("d"), qc("l")],
            )
            .build(&schema);
        assert!(q.is_ok());
    }

    #[test]
    fn safety_rejects_wildcard_in_negative_subgoal() {
        let schema = schema();
        let s = schema.relation_id("S").unwrap();
        let err = Bcq::builder(vec![])
            .negative(
                vec![pu(UserId(1))],
                s,
                vec![qc("s1"), qany(), qany(), qany(), qany()],
            )
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, BeliefError::UnsafeQuery(_)));
    }

    #[test]
    fn wildcards_allowed_in_positive_subgoals() {
        let schema = schema();
        let s = schema.relation_id("S").unwrap();
        let q = Bcq::builder(vec![qv("x"), qv("y")])
            .positive(
                vec![pu(UserId(1))],
                s,
                vec![qv("x"), qany(), qv("y"), qany(), qany()],
            )
            .build(&schema);
        assert!(q.is_ok());
    }

    #[test]
    fn structural_validation() {
        let schema = schema();
        let s = schema.relation_id("S").unwrap();
        // wrong arity
        let err = Bcq::builder(vec![])
            .positive(vec![], s, vec![qc("s1")])
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, BeliefError::MalformedQuery(_)));
        // repeated adjacent constant users
        let err = Bcq::builder(vec![])
            .positive(
                vec![pu(UserId(1)), pu(UserId(1))],
                s,
                vec![qany(), qany(), qany(), qany(), qany()],
            )
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, BeliefError::MalformedQuery(_)));
        // empty body
        let err = Bcq::builder(vec![qv("x")]).build(&schema).unwrap_err();
        assert!(matches!(err, BeliefError::MalformedQuery(_)));
        // wildcard head
        let err = Bcq::builder(vec![qany()])
            .positive(vec![], s, vec![qany(), qany(), qany(), qany(), qany()])
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, BeliefError::MalformedQuery(_)));
        // unknown relation
        let err = Bcq::builder(vec![])
            .positive(vec![], RelId(9), vec![])
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, BeliefError::NoSuchRelation(_)));
    }

    #[test]
    fn head_variable_needs_binding() {
        let schema = schema();
        let s = schema.relation_id("S").unwrap();
        let err = Bcq::builder(vec![qv("ghost")])
            .positive(vec![], s, vec![qany(), qany(), qany(), qany(), qany()])
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, BeliefError::UnsafeQuery(_)));
    }

    #[test]
    fn predicate_variables_need_binding() {
        let schema = schema();
        let s = schema.relation_id("S").unwrap();
        let err = Bcq::builder(vec![])
            .positive(vec![], s, vec![qv("x"), qany(), qany(), qany(), qany()])
            .pred(qv("zz"), CmpOp::Lt, qc(5))
            .build(&schema)
            .unwrap_err();
        assert!(matches!(err, BeliefError::UnsafeQuery(_)));
    }
}
