//! Belief worlds `W = (I+, I−)` (Defs. 2–6, Props. 5 and 7).
//!
//! A belief world holds the positive and negative tuples of one belief
//! context ("what Alice believes", "what Bob believes Alice believes", ...).
//! Its semantics `[[W]]` is the set of consistent instances containing all
//! of `I+` and none of `I−`; we never enumerate `[[W]]`, because Prop. 5
//! characterizes consistency and Prop. 7 characterizes entailment directly
//! on `(I+, I−)`:
//!
//! * consistent  ⇔  `Γ1`: `I+` satisfies the key constraints, and
//!   `Γ2`: `I+ ∩ I− = ∅`;
//! * `W |= t+`  ⇔  `t ∈ I+`;
//! * `W |= t−`  ⇔  `t ∈ I−` (*stated*) or some other tuple with the same
//!   key is in `I+` (*unstated*).
//!
//! Tuples are grouped by `(relation, key)` so both checks are O(1) hash
//! lookups; iteration order is deterministic (BTree) for reproducible tests.

use crate::ids::RelId;
use crate::statement::{GroundTuple, Sign};
use beliefdb_storage::{Row, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Key of a tuple group: relation plus the value of the key attribute.
pub type TupleKey = (RelId, Value);

/// A belief world `W = (I+, I−)`.
///
/// Both instances may, a priori, violate the key constraints (Def. 2); use
/// [`BeliefWorld::is_consistent`] / [`BeliefWorld::check_consistent`] to
/// test Γ1/Γ2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BeliefWorld {
    pos: BTreeMap<TupleKey, BTreeSet<Row>>,
    neg: BTreeMap<TupleKey, BTreeSet<Row>>,
    pos_count: usize,
    neg_count: usize,
}

impl BeliefWorld {
    pub fn new() -> Self {
        BeliefWorld::default()
    }

    fn key_of(t: &GroundTuple) -> TupleKey {
        (t.rel, t.key().clone())
    }

    /// Add `t` to `I+` (no consistency check; Def. 2 allows raw worlds).
    /// Returns true iff the tuple was not already present.
    pub fn add_pos(&mut self, t: GroundTuple) -> bool {
        let added = self.pos.entry(Self::key_of(&t)).or_default().insert(t.row);
        if added {
            self.pos_count += 1;
        }
        added
    }

    /// Add `t` to `I−`. Returns true iff the tuple was not already present.
    pub fn add_neg(&mut self, t: GroundTuple) -> bool {
        let added = self.neg.entry(Self::key_of(&t)).or_default().insert(t.row);
        if added {
            self.neg_count += 1;
        }
        added
    }

    /// Add with an explicit sign.
    pub fn add(&mut self, t: GroundTuple, sign: Sign) -> bool {
        match sign {
            Sign::Pos => self.add_pos(t),
            Sign::Neg => self.add_neg(t),
        }
    }

    /// Remove a tuple from the signed instance. Returns true iff present.
    pub fn remove(&mut self, t: &GroundTuple, sign: Sign) -> bool {
        let (map, count) = match sign {
            Sign::Pos => (&mut self.pos, &mut self.pos_count),
            Sign::Neg => (&mut self.neg, &mut self.neg_count),
        };
        let key = Self::key_of(t);
        if let Some(set) = map.get_mut(&key) {
            if set.remove(&t.row) {
                *count -= 1;
                if set.is_empty() {
                    map.remove(&key);
                }
                return true;
            }
        }
        false
    }

    /// `t ∈ I+`?
    pub fn contains_pos(&self, t: &GroundTuple) -> bool {
        self.pos
            .get(&Self::key_of(t))
            .is_some_and(|s| s.contains(&t.row))
    }

    /// `t ∈ I−`?
    pub fn contains_neg(&self, t: &GroundTuple) -> bool {
        self.neg
            .get(&Self::key_of(t))
            .is_some_and(|s| s.contains(&t.row))
    }

    pub fn contains(&self, t: &GroundTuple, sign: Sign) -> bool {
        match sign {
            Sign::Pos => self.contains_pos(t),
            Sign::Neg => self.contains_neg(t),
        }
    }

    /// `W |= t+` (Prop. 7): the tuple is a *positive belief*.
    pub fn entails_pos(&self, t: &GroundTuple) -> bool {
        self.contains_pos(t)
    }

    /// `W |= t−` (Prop. 7): stated negative, or unstated negative (another
    /// tuple with the same key is positive).
    pub fn entails_neg(&self, t: &GroundTuple) -> bool {
        if self.contains_neg(t) {
            return true;
        }
        self.pos
            .get(&Self::key_of(t))
            .is_some_and(|s| s.iter().any(|row| *row != t.row))
    }

    pub fn entails(&self, t: &GroundTuple, sign: Sign) -> bool {
        match sign {
            Sign::Pos => self.entails_pos(t),
            Sign::Neg => self.entails_neg(t),
        }
    }

    /// Γ1: no two positive tuples share a key.
    pub fn gamma1(&self) -> bool {
        self.pos.values().all(|s| s.len() <= 1)
    }

    /// Γ2: `I+ ∩ I− = ∅`.
    pub fn gamma2(&self) -> bool {
        self.pos.iter().all(|(key, rows)| {
            self.neg
                .get(key)
                .is_none_or(|nrows| rows.iter().all(|r| !nrows.contains(r)))
        })
    }

    /// Consistency per Prop. 5 (`[[W]] ≠ ∅` ⇔ Γ1 ∧ Γ2).
    pub fn is_consistent(&self) -> bool {
        self.gamma1() && self.gamma2()
    }

    /// Consistency with a diagnostic.
    pub fn check_consistent(&self) -> Result<(), String> {
        for (key, rows) in &self.pos {
            if rows.len() > 1 {
                return Err(format!(
                    "Γ1 violated: {} positive tuples share key {} in relation R{}",
                    rows.len(),
                    key.1,
                    key.0
                ));
            }
            if let Some(nrows) = self.neg.get(key) {
                if rows.iter().any(|r| nrows.contains(r)) {
                    return Err(format!(
                        "Γ2 violated: tuple with key {} in relation R{} is both positive and negative",
                        key.1, key.0
                    ));
                }
            }
        }
        Ok(())
    }

    /// Would adding `t^s` keep the world consistent? (Used both when
    /// validating user inserts and by the default-rule closure of Def. 9.)
    pub fn can_accept(&self, t: &GroundTuple, sign: Sign) -> bool {
        match sign {
            Sign::Pos => {
                // Γ2: not stated negative; Γ1: no *other* positive with the
                // same key.
                !self.contains_neg(t)
                    && self
                        .pos
                        .get(&Self::key_of(t))
                        .is_none_or(|s| s.iter().all(|row| *row == t.row))
            }
            Sign::Neg => !self.contains_pos(t),
        }
    }

    /// The *overriding union* of Fig. 9 / Thm. 17(2a): the entailed world at
    /// `w` is its explicit world extended with every parent tuple that is
    /// consistent with what is already there. `self` is the explicit (child)
    /// world; `parent` is the entailed world of the suffix `w[2,d]`.
    pub fn override_with(&self, parent: &BeliefWorld) -> BeliefWorld {
        let mut out = self.clone();
        for t in parent.pos_tuples() {
            if out.can_accept(&t, Sign::Pos) {
                out.add_pos(t);
            }
        }
        for t in parent.neg_tuples() {
            if out.can_accept(&t, Sign::Neg) {
                out.add_neg(t);
            }
        }
        out
    }

    /// Iterate `I+` in deterministic order.
    pub fn pos_tuples(&self) -> impl Iterator<Item = GroundTuple> + '_ {
        self.pos.iter().flat_map(|((rel, _), rows)| {
            rows.iter().map(move |r| GroundTuple::new(*rel, r.clone()))
        })
    }

    /// Iterate `I−` in deterministic order.
    pub fn neg_tuples(&self) -> impl Iterator<Item = GroundTuple> + '_ {
        self.neg.iter().flat_map(|((rel, _), rows)| {
            rows.iter().map(move |r| GroundTuple::new(*rel, r.clone()))
        })
    }

    /// Iterate all tuples with their signs.
    pub fn signed_tuples(&self) -> impl Iterator<Item = (GroundTuple, Sign)> + '_ {
        self.pos_tuples()
            .map(|t| (t, Sign::Pos))
            .chain(self.neg_tuples().map(|t| (t, Sign::Neg)))
    }

    /// Positive rows of one key group (for per-key slice maintenance).
    pub fn pos_rows_for_key(&self, key: &TupleKey) -> impl Iterator<Item = &Row> {
        self.pos.get(key).into_iter().flatten()
    }

    /// Negative rows of one key group.
    pub fn neg_rows_for_key(&self, key: &TupleKey) -> impl Iterator<Item = &Row> {
        self.neg.get(key).into_iter().flatten()
    }

    pub fn pos_len(&self) -> usize {
        self.pos_count
    }

    pub fn neg_len(&self) -> usize {
        self.neg_count
    }

    pub fn len(&self) -> usize {
        self.pos_count + self.neg_count
    }

    /// `Dw = (∅, ∅)`? (Empty worlds are not support states, Sect. 4.)
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for BeliefWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (t, s) in self.signed_tuples() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{t}{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beliefdb_storage::row;

    fn t(key: &str, species: &str) -> GroundTuple {
        GroundTuple::new(RelId(0), row![key, "Carol", species])
    }

    #[test]
    fn add_contains_remove() {
        let mut w = BeliefWorld::new();
        assert!(w.add_pos(t("s1", "eagle")));
        assert!(!w.add_pos(t("s1", "eagle")), "duplicate add is a no-op");
        assert!(w.contains_pos(&t("s1", "eagle")));
        assert!(!w.contains_neg(&t("s1", "eagle")));
        assert_eq!(w.pos_len(), 1);
        assert!(w.remove(&t("s1", "eagle"), Sign::Pos));
        assert!(!w.remove(&t("s1", "eagle"), Sign::Pos));
        assert!(w.is_empty());
    }

    #[test]
    fn gamma1_detects_key_violation() {
        let mut w = BeliefWorld::new();
        w.add_pos(t("s1", "eagle"));
        assert!(w.is_consistent());
        w.add_pos(t("s1", "fish eagle"));
        assert!(!w.gamma1());
        assert!(!w.is_consistent());
        assert!(w.check_consistent().unwrap_err().contains("Γ1"));
    }

    #[test]
    fn gamma2_detects_pos_neg_clash() {
        let mut w = BeliefWorld::new();
        w.add_pos(t("s1", "eagle"));
        w.add_neg(t("s1", "eagle"));
        assert!(w.gamma1());
        assert!(!w.gamma2());
        assert!(w.check_consistent().unwrap_err().contains("Γ2"));
    }

    #[test]
    fn multiple_negatives_on_same_key_are_consistent() {
        // Bob's world in Fig. 3: two negatives with key s1, one positive s2.
        let mut w = BeliefWorld::new();
        w.add_neg(t("s1", "bald eagle"));
        w.add_neg(t("s1", "fish eagle"));
        w.add_pos(t("s2", "raven"));
        assert!(w.is_consistent());
        assert_eq!(w.neg_len(), 2);
        assert_eq!(w.pos_len(), 1);
    }

    #[test]
    fn entailment_prop7() {
        let mut w = BeliefWorld::new();
        w.add_pos(t("s2", "raven"));
        w.add_neg(t("s1", "bald eagle"));
        // positive belief: exactly membership in I+
        assert!(w.entails_pos(&t("s2", "raven")));
        assert!(!w.entails_pos(&t("s2", "crow")));
        // stated negative
        assert!(w.entails_neg(&t("s1", "bald eagle")));
        // unstated negative: raven occupies key s2, so crow is impossible
        assert!(w.entails_neg(&t("s2", "crow")));
        // not negative: nothing known about s3
        assert!(!w.entails_neg(&t("s3", "owl")));
        // a positive tuple is not its own unstated negative
        assert!(!w.entails_neg(&t("s2", "raven")));
        assert!(w.entails(&t("s2", "raven"), Sign::Pos));
        assert!(w.entails(&t("s2", "crow"), Sign::Neg));
    }

    #[test]
    fn can_accept_respects_gamma() {
        let mut w = BeliefWorld::new();
        w.add_pos(t("s1", "eagle"));
        w.add_neg(t("s2", "crow"));
        // same tuple again: fine (no-op)
        assert!(w.can_accept(&t("s1", "eagle"), Sign::Pos));
        // conflicting positive on an occupied key: rejected
        assert!(!w.can_accept(&t("s1", "fish eagle"), Sign::Pos));
        // positive of a stated-negative tuple: rejected (Γ2)
        assert!(!w.can_accept(&t("s2", "crow"), Sign::Pos));
        // positive of a different tuple on s2: accepted (only stated
        // negatives block, not unstated)
        assert!(w.can_accept(&t("s2", "raven"), Sign::Pos));
        // negative of a positive tuple: rejected
        assert!(!w.can_accept(&t("s1", "eagle"), Sign::Neg));
        // negative of a different tuple on the same key: accepted
        assert!(w.can_accept(&t("s1", "fish eagle"), Sign::Neg));
    }

    #[test]
    fn override_with_parent() {
        // child explicitly believes raven@s2 and disbelieves t3
        let mut child = BeliefWorld::new();
        child.add_pos(t("s2", "raven"));
        child.add_neg(t("s3", "owl"));
        // parent believes crow@s2 (conflict), owl@s3 (blocked by stated
        // negative), eagle@s1 (inherited), and disbelieves heron@s4
        let mut parent = BeliefWorld::new();
        parent.add_pos(t("s2", "crow"));
        parent.add_pos(t("s3", "owl"));
        parent.add_pos(t("s1", "eagle"));
        parent.add_neg(t("s4", "heron"));

        let merged = child.override_with(&parent);
        assert!(
            merged.contains_pos(&t("s2", "raven")),
            "explicit belief survives"
        );
        assert!(
            !merged.contains_pos(&t("s2", "crow")),
            "conflicting parent tuple blocked"
        );
        assert!(
            !merged.contains_pos(&t("s3", "owl")),
            "stated negative blocks inherit"
        );
        assert!(
            merged.contains_pos(&t("s1", "eagle")),
            "unopposed tuple inherited"
        );
        assert!(merged.contains_neg(&t("s4", "heron")), "negative inherited");
        assert!(merged.is_consistent());
    }

    #[test]
    fn override_negative_blocked_by_positive() {
        let mut child = BeliefWorld::new();
        child.add_pos(t("s1", "eagle"));
        let mut parent = BeliefWorld::new();
        parent.add_neg(t("s1", "eagle"));
        let merged = child.override_with(&parent);
        assert!(merged.contains_pos(&t("s1", "eagle")));
        assert!(!merged.contains_neg(&t("s1", "eagle")));
        assert!(merged.is_consistent());
    }

    #[test]
    fn override_with_empty_child_copies_parent() {
        let child = BeliefWorld::new();
        let mut parent = BeliefWorld::new();
        parent.add_pos(t("s1", "eagle"));
        parent.add_neg(t("s2", "crow"));
        let merged = child.override_with(&parent);
        assert_eq!(merged, parent);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut w = BeliefWorld::new();
        w.add_pos(t("s2", "raven"));
        w.add_pos(t("s1", "eagle"));
        w.add_neg(t("s3", "owl"));
        let tuples: Vec<_> = w.signed_tuples().collect();
        assert_eq!(tuples.len(), 3);
        assert_eq!(tuples[0].0.key(), &Value::str("s1"));
        assert_eq!(tuples[1].0.key(), &Value::str("s2"));
        assert_eq!(tuples[2].1, Sign::Neg);
        let display = w.to_string();
        assert!(display.starts_with('{') && display.ends_with('}'));
    }

    #[test]
    fn key_groups() {
        let mut w = BeliefWorld::new();
        w.add_pos(t("s1", "eagle"));
        w.add_neg(t("s1", "crow"));
        w.add_neg(t("s1", "owl"));
        let key = (RelId(0), Value::str("s1"));
        assert_eq!(w.pos_rows_for_key(&key).count(), 1);
        assert_eq!(w.neg_rows_for_key(&key).count(), 2);
        let other = (RelId(0), Value::str("zz"));
        assert_eq!(w.pos_rows_for_key(&other).count(), 0);
    }
}
