//! Logical durability records and snapshots for the BDMS.
//!
//! The storage layer (`beliefdb_storage::persist`) provides checksummed
//! frames, segments, and snapshot files over *opaque* payloads; this
//! module defines what those payloads mean for a belief database:
//!
//! * [`LogRecord`] — one **logical** mutation (`AddUser`, `Insert`,
//!   `Delete`, `Update`). The log is logical rather than physical on
//!   purpose: replay goes through the exact same `insert_statement` /
//!   `delete_statement` code paths as live traffic, so every derived
//!   structure — tids, the tid cache, the world directory, `V`-slices,
//!   `E`/`D`/`S`, optimizer table versions — is rebuilt consistently
//!   without being serialized.
//! * [`SnapshotData`] — a full-state image: external schema, user
//!   table, the world directory (in wid order), the `R*` tuple table
//!   (in tid order), and every explicit belief statement. Worlds and
//!   tuples are snapshotted separately from the statements because
//!   Algorithm 4 creates them even for *rejected* inserts (Sect. 5.3);
//!   restoring them in id order reproduces the exact wid/tid
//!   assignment, so `SizeStats` match the pre-crash store.
//!
//! [`Durability`] glues a [`PersistEngine`] to a store: append a record
//! before applying it ("append-then-apply" — mutations are validated
//! first so a logged record always replays cleanly), checkpoint on
//! demand or when the live log passes the configured threshold.

use crate::error::{BeliefError, Result};
use crate::ids::{RelId, Tid, UserId, Wid};
use crate::internal::InternalStore;
use crate::path::BeliefPath;
use crate::schema::ExternalSchema;
use crate::statement::{BeliefStatement, GroundTuple, Sign};
use beliefdb_storage::persist::{Dec, Enc, PersistEngine};
use beliefdb_storage::{Row, StorageError};

pub use beliefdb_storage::persist::{PersistOptions, WalStats};

fn corrupt(msg: impl Into<String>) -> BeliefError {
    BeliefError::Storage(StorageError::Corrupt(msg.into()))
}

// ---------------------------------------------------------------------------
// Log records
// ---------------------------------------------------------------------------

/// One logical mutation, as appended to the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// `Bdms::add_user`.
    AddUser(String),
    /// `Bdms::insert` / `insert_statement` (Algorithm 4).
    Insert(BeliefStatement),
    /// `Bdms::delete` / `delete_statement`.
    Delete(BeliefStatement),
    /// `Bdms::update`: replace `old_row` by `new_row` at `path`.
    Update {
        path: BeliefPath,
        rel: RelId,
        old_row: Row,
        new_row: Row,
    },
}

const TAG_ADD_USER: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_UPDATE: u8 = 4;

fn put_path(e: &mut Enc, path: &BeliefPath) {
    e.put_u32(path.depth() as u32);
    for u in path.users() {
        e.put_u32(u.0);
    }
}

fn take_path(d: &mut Dec) -> Result<BeliefPath> {
    let n = d.take_u32()? as usize;
    let mut users = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        users.push(UserId(d.take_u32()?));
    }
    BeliefPath::new(users)
}

fn put_statement(e: &mut Enc, stmt: &BeliefStatement) {
    put_path(e, &stmt.path);
    e.put_u32(stmt.tuple.rel.0);
    e.put_row(&stmt.tuple.row);
    e.put_u8(stmt.sign.code());
}

fn take_statement(d: &mut Dec) -> Result<BeliefStatement> {
    let path = take_path(d)?;
    let rel = RelId(d.take_u32()?);
    let row = d.take_row()?;
    let sign =
        Sign::from_code(d.take_u8()?).ok_or_else(|| corrupt("invalid sign byte in log record"))?;
    Ok(BeliefStatement::new(path, GroundTuple::new(rel, row), sign))
}

impl LogRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            LogRecord::AddUser(name) => {
                e.put_u8(TAG_ADD_USER);
                e.put_str(name);
            }
            LogRecord::Insert(stmt) => {
                e.put_u8(TAG_INSERT);
                put_statement(&mut e, stmt);
            }
            LogRecord::Delete(stmt) => {
                e.put_u8(TAG_DELETE);
                put_statement(&mut e, stmt);
            }
            LogRecord::Update {
                path,
                rel,
                old_row,
                new_row,
            } => {
                e.put_u8(TAG_UPDATE);
                put_path(&mut e, path);
                e.put_u32(rel.0);
                e.put_row(old_row);
                e.put_row(new_row);
            }
        }
        e.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> Result<LogRecord> {
        let mut d = Dec::new(bytes);
        let rec = match d.take_u8()? {
            TAG_ADD_USER => LogRecord::AddUser(d.take_str()?.to_string()),
            TAG_INSERT => LogRecord::Insert(take_statement(&mut d)?),
            TAG_DELETE => LogRecord::Delete(take_statement(&mut d)?),
            TAG_UPDATE => LogRecord::Update {
                path: take_path(&mut d)?,
                rel: RelId(d.take_u32()?),
                old_row: d.take_row()?,
                new_row: d.take_row()?,
            },
            t => return Err(corrupt(format!("unknown log record tag {t}"))),
        };
        d.finish()?;
        Ok(rec)
    }

    /// Apply this record to a store — the recovery path. Records were
    /// validated before being appended, so application errors here mean
    /// the log does not match the snapshot (corruption).
    pub(crate) fn apply(&self, store: &mut InternalStore) -> Result<()> {
        match self {
            LogRecord::AddUser(name) => {
                store.add_user(name.clone())?;
            }
            LogRecord::Insert(stmt) => {
                // Outcomes (including Rejected) are deterministic; the
                // side effects of rejected inserts — world creation, R*
                // rows — replay identically.
                store.insert_statement(stmt)?;
            }
            LogRecord::Delete(stmt) => {
                store.delete_statement(stmt)?;
            }
            LogRecord::Update {
                path,
                rel,
                old_row,
                new_row,
            } => {
                store.delete(path, &GroundTuple::new(*rel, old_row.clone()), Sign::Pos)?;
                store.insert(path, &GroundTuple::new(*rel, new_row.clone()), Sign::Pos)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Snapshot format version (bumped on incompatible layout changes).
const SNAPSHOT_VERSION: u8 = 1;

/// A full-state image of an [`InternalStore`], in logical form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotData {
    /// External relations as `(name, columns)`.
    pub relations: Vec<(String, Vec<String>)>,
    /// User names in registration order (`UserId` 1, 2, ...).
    pub users: Vec<String>,
    /// Belief paths of every world in wid order (index 0 is the root).
    pub worlds: Vec<BeliefPath>,
    /// Ground tuples of the `R*` tables in tid order.
    pub tuples: Vec<GroundTuple>,
    /// Every explicit belief statement.
    pub statements: Vec<BeliefStatement>,
}

impl SnapshotData {
    /// Capture the logical image of a store.
    pub(crate) fn of(store: &InternalStore) -> Result<SnapshotData> {
        let relations = store
            .schema()
            .relations()
            .iter()
            .map(|r| (r.name().to_string(), r.columns().to_vec()))
            .collect();
        let users = store.users.iter().map(|(_, n)| n.clone()).collect();
        let worlds = store.dir.iter().map(|(_, p)| p.clone()).collect();
        let mut tuples: Vec<Option<GroundTuple>> = vec![None; store.next_tid as usize];
        for (tuple, tid) in &store.tid_cache {
            tuples[tid.0 as usize] = Some(tuple.clone());
        }
        let tuples = tuples
            .into_iter()
            .enumerate()
            .map(|(i, t)| t.ok_or_else(|| corrupt(format!("tid {i} missing from tid cache"))))
            .collect::<Result<Vec<_>>>()?;
        let statements = store.to_belief_database()?.statements();
        Ok(SnapshotData {
            relations,
            users,
            worlds,
            tuples,
            statements,
        })
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_u8(SNAPSHOT_VERSION);
        e.put_u32(self.relations.len() as u32);
        for (name, cols) in &self.relations {
            e.put_str(name);
            e.put_u32(cols.len() as u32);
            for c in cols {
                e.put_str(c);
            }
        }
        e.put_u32(self.users.len() as u32);
        for name in &self.users {
            e.put_str(name);
        }
        e.put_u32(self.worlds.len() as u32);
        for path in &self.worlds {
            put_path(&mut e, path);
        }
        e.put_u32(self.tuples.len() as u32);
        for t in &self.tuples {
            e.put_u32(t.rel.0);
            e.put_row(&t.row);
        }
        e.put_u32(self.statements.len() as u32);
        for stmt in &self.statements {
            put_statement(&mut e, stmt);
        }
        e.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> Result<SnapshotData> {
        let mut d = Dec::new(bytes);
        let version = d.take_u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(corrupt(format!("unsupported snapshot version {version}")));
        }
        let nrels = d.take_u32()? as usize;
        let mut relations = Vec::with_capacity(nrels.min(1024));
        for _ in 0..nrels {
            let name = d.take_str()?.to_string();
            let ncols = d.take_u32()? as usize;
            let mut cols = Vec::with_capacity(ncols.min(1024));
            for _ in 0..ncols {
                cols.push(d.take_str()?.to_string());
            }
            relations.push((name, cols));
        }
        let nusers = d.take_u32()? as usize;
        let mut users = Vec::with_capacity(nusers.min(1024));
        for _ in 0..nusers {
            users.push(d.take_str()?.to_string());
        }
        let nworlds = d.take_u32()? as usize;
        let mut worlds = Vec::with_capacity(nworlds.min(1024));
        for _ in 0..nworlds {
            worlds.push(take_path(&mut d)?);
        }
        let ntuples = d.take_u32()? as usize;
        let mut tuples = Vec::with_capacity(ntuples.min(1024));
        for _ in 0..ntuples {
            let rel = RelId(d.take_u32()?);
            let row = d.take_row()?;
            tuples.push(GroundTuple::new(rel, row));
        }
        let nstmts = d.take_u32()? as usize;
        let mut statements = Vec::with_capacity(nstmts.min(1024));
        for _ in 0..nstmts {
            statements.push(take_statement(&mut d)?);
        }
        d.finish()?;
        Ok(SnapshotData {
            relations,
            users,
            worlds,
            tuples,
            statements,
        })
    }

    /// Rebuild the store this snapshot describes. Users, worlds, and
    /// tuples are registered in id order first (reproducing the exact
    /// `UserId`/`Wid`/`Tid` assignment, including ids that exist only
    /// because of rejected inserts), then the explicit statements are
    /// inserted through Algorithm 4, which rebuilds every `V`-slice.
    pub(crate) fn restore(&self) -> Result<InternalStore> {
        let mut schema = ExternalSchema::new();
        for (name, cols) in &self.relations {
            let cols: Vec<&str> = cols.iter().map(|c| c.as_str()).collect();
            schema.add_relation(name.clone(), &cols)?;
        }
        let mut store = InternalStore::new(schema)?;
        for name in &self.users {
            store.add_user(name.clone())?;
        }
        match self.worlds.first() {
            Some(root) if root.is_root() => {}
            _ => return Err(corrupt("snapshot world directory must start at ε")),
        }
        for (i, path) in self.worlds.iter().enumerate().skip(1) {
            let wid = store.ensure_world(path)?;
            if wid != Wid(i as u32) {
                return Err(corrupt(format!(
                    "world {path} restored as wid {wid}, snapshot says {i}"
                )));
            }
        }
        for (i, tuple) in self.tuples.iter().enumerate() {
            let tid = store.tid_of_or_create(tuple)?;
            if tid != Tid(i as u32) {
                return Err(corrupt(format!(
                    "tuple {tuple} restored as tid {tid}, snapshot says {i}"
                )));
            }
        }
        for stmt in &self.statements {
            let outcome = store.insert_statement(stmt)?;
            if !outcome.accepted() {
                return Err(corrupt(format!(
                    "snapshot statement {stmt} rejected on restore"
                )));
            }
        }
        Ok(store)
    }
}

// ---------------------------------------------------------------------------
// The Bdms-side handle
// ---------------------------------------------------------------------------

/// A store's durable companion: the engine plus append/checkpoint glue.
#[derive(Debug)]
pub(crate) struct Durability {
    pub(crate) engine: PersistEngine,
}

impl Durability {
    /// Append one validated record (append-then-apply: callers apply to
    /// the in-memory store only after this returns).
    pub(crate) fn append(&mut self, rec: &LogRecord) -> Result<()> {
        self.engine.append(&rec.encode())?;
        Ok(())
    }

    /// Snapshot `store` and truncate the log it covers.
    pub(crate) fn checkpoint(&mut self, store: &InternalStore) -> Result<u64> {
        let payload = SnapshotData::of(store)?.encode();
        Ok(self.engine.checkpoint(&payload)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::path;
    use beliefdb_storage::row;

    fn stmt() -> BeliefStatement {
        BeliefStatement::positive(
            path(&[2, 1]),
            GroundTuple::new(RelId(0), row!["s1", "crow", 3]),
        )
    }

    #[test]
    fn log_records_round_trip() {
        let records = vec![
            LogRecord::AddUser("Alice".into()),
            LogRecord::Insert(stmt()),
            LogRecord::Delete(BeliefStatement::negative(
                BeliefPath::root(),
                GroundTuple::new(RelId(1), row![7, beliefdb_storage::Value::Null, true]),
            )),
            LogRecord::Update {
                path: path(&[1]),
                rel: RelId(0),
                old_row: row!["s1", "crow", 3],
                new_row: row!["s1", "raven", 3],
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(LogRecord::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn decode_rejects_mangled_records() {
        let bytes = LogRecord::Insert(stmt()).encode();
        // Unknown tag.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(LogRecord::decode(&bad).is_err());
        // Truncations at every cut point.
        for cut in 0..bytes.len() {
            assert!(LogRecord::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(LogRecord::decode(&long).is_err());
        // Invalid path (adjacent repetition) is rejected by validation.
        let mut e = Enc::new();
        e.put_u8(TAG_INSERT);
        e.put_u32(2);
        e.put_u32(5);
        e.put_u32(5);
        let bad_path = e.into_bytes();
        assert!(LogRecord::decode(&bad_path).is_err());
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let data = SnapshotData {
            relations: vec![("S".into(), vec!["sid".into(), "species".into()])],
            users: vec!["Alice".into(), "Bob".into()],
            worlds: vec![BeliefPath::root(), path(&[1]), path(&[2, 1])],
            tuples: vec![GroundTuple::new(RelId(0), row!["s1", "crow"])],
            statements: vec![BeliefStatement::positive(
                path(&[1]),
                GroundTuple::new(RelId(0), row!["s1", "crow"]),
            )],
        };
        let bytes = data.encode();
        assert_eq!(SnapshotData::decode(&bytes).unwrap(), data);
        // Version byte is checked.
        let mut bad = bytes.clone();
        bad[0] = 77;
        assert!(SnapshotData::decode(&bad).is_err());
    }
}
