//! The theory `D̄` — the executable specification of the message-board
//! assumption (Defs. 9–12, Lemma 11, App. C).
//!
//! `D̄` closes `D` under the default rule `ϕ : iϕ / iϕ`: every user believes
//! every statement in the database unless that contradicts an explicit
//! belief. `D̄` is infinite (statements exist at every path in `Û*`), but the
//! proof of Theorem 17 (step 2a, Fig. 9) shows the entailed world at `w`
//! depends only on the chain of suffix worlds `{D_w, D_w[2,d], ..., D_ε}`,
//! combined by the *overriding union*:
//!
//! ```text
//! D̄_ε = D_ε
//! D̄_w = D_w ⊕ D̄_w[2,d]      (⊕ = override_with: explicit beliefs win,
//!                             parent tuples inherited when consistent)
//! ```
//!
//! This module computes entailed worlds by that recursion (memoized) and
//! exposes the two entailment notions the paper uses:
//!
//! * [`Closure::theory_contains`] — statement membership `ϕ ∈ D̄` (Def. 12);
//! * [`Closure::entails`] — world-level entailment `D̄_w |= t^s` (Def. 6 /
//!   Prop. 7), which additionally includes *unstated* negatives. This is the
//!   notion queries and the canonical Kripke structure use (Sect. 3.3,
//!   Thm. 17).

use crate::database::BeliefDatabase;
use crate::path::BeliefPath;
use crate::statement::BeliefStatement;
use crate::world::BeliefWorld;
use std::collections::HashMap;

/// Memoizing evaluator for entailed worlds of one (frozen) belief database.
///
/// The cache is keyed by belief path; computing `D̄_w` costs `O(d)` override
/// steps the first time and is O(1) afterwards.
pub struct Closure<'a> {
    db: &'a BeliefDatabase,
    cache: HashMap<BeliefPath, BeliefWorld>,
}

impl<'a> Closure<'a> {
    pub fn new(db: &'a BeliefDatabase) -> Self {
        Closure {
            db,
            cache: HashMap::new(),
        }
    }

    pub fn database(&self) -> &BeliefDatabase {
        self.db
    }

    /// The entailed belief world `D̄_w` at any path `w ∈ Û*` (not just at
    /// states — non-state paths simply inherit their whole content).
    pub fn entailed_world(&mut self, path: &BeliefPath) -> &BeliefWorld {
        if !self.cache.contains_key(path) {
            let world = if path.is_root() {
                // The root world is purely explicit: no default rule feeds it.
                self.db.explicit_world(path)
            } else {
                let parent = self.entailed_world(&path.drop_first()).clone();
                let explicit = self.db.explicit_world(path);
                explicit.override_with(&parent)
            };
            self.cache.insert(path.clone(), world);
        }
        &self.cache[path]
    }

    /// World-level entailment `D |= ϕ` as used by queries and the canonical
    /// Kripke structure: `D̄_w |= t^s` per Def. 6 / Prop. 7 (positive =
    /// membership in `I+`; negative = stated or unstated).
    pub fn entails(&mut self, stmt: &BeliefStatement) -> bool {
        self.entailed_world(&stmt.path)
            .entails(&stmt.tuple, stmt.sign)
    }

    /// Statement membership `ϕ ∈ D̄` (Def. 12): the statement is explicitly
    /// asserted or follows by the default rule. Unlike [`Closure::entails`],
    /// a negative statement is only in the theory if some *stated* negative
    /// propagates to `w` — unstated negatives (key conflicts) are entailed
    /// by the world but are not statements of the theory.
    pub fn theory_contains(&mut self, stmt: &BeliefStatement) -> bool {
        self.entailed_world(&stmt.path)
            .contains(&stmt.tuple, stmt.sign)
    }

    /// Entailed worlds at every state of `D` (used to build the canonical
    /// Kripke structure).
    pub fn state_worlds(&mut self) -> Vec<(BeliefPath, BeliefWorld)> {
        let states = self.db.states();
        states
            .into_iter()
            .map(|p| {
                let w = self.entailed_world(&p).clone();
                (p, w)
            })
            .collect()
    }
}

/// Convenience: one-shot world-level entailment check.
pub fn entails(db: &BeliefDatabase, stmt: &BeliefStatement) -> bool {
    Closure::new(db).entails(stmt)
}

/// Convenience: one-shot entailed world.
pub fn entailed_world(db: &BeliefDatabase, path: &BeliefPath) -> BeliefWorld {
    Closure::new(db).entailed_world(path).clone()
}

/// Lemma 11: if `D` is consistent then `D̄` is consistent — checked up to
/// the given path depth (the closure is infinite; consistency at every state
/// plus one extra level is representative because deeper worlds repeat the
/// entailed content of their deepest suffix state).
pub fn closure_consistent_to_depth(db: &BeliefDatabase, depth: usize) -> bool {
    let users: Vec<_> = db.users().collect();
    let mut closure = Closure::new(db);
    let mut frontier = vec![BeliefPath::root()];
    for _ in 0..=depth {
        let mut next = Vec::new();
        for p in &frontier {
            if !closure.entailed_world(p).is_consistent() {
                return false;
            }
            for &u in &users {
                if let Ok(q) = p.push(u) {
                    next.push(q);
                }
            }
        }
        frontier = next;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::running_example;
    use crate::ids::RelId;
    use crate::path::path;
    use crate::schema::ExternalSchema;
    use crate::statement::GroundTuple;
    use beliefdb_storage::row;

    fn t(key: &str, species: &str) -> GroundTuple {
        GroundTuple::new(RelId(0), row![key, species])
    }

    fn small_db(users: &[&str]) -> BeliefDatabase {
        let mut schema = ExternalSchema::new();
        schema.add_relation("S", &["sid", "species"]).unwrap();
        let mut db = BeliefDatabase::new(schema);
        for u in users {
            db.add_user(*u).unwrap();
        }
        db
    }

    #[test]
    fn root_world_is_explicit_only() {
        let mut db = small_db(&["Alice"]);
        db.insert(BeliefStatement::positive(path(&[1]), t("s1", "crow")))
            .unwrap();
        // Alice's belief does NOT flow down into the root world.
        let root = entailed_world(&db, &BeliefPath::root());
        assert!(root.is_empty());
    }

    #[test]
    fn default_rule_propagates_root_facts() {
        let mut db = small_db(&["Alice", "Bob"]);
        db.insert(BeliefStatement::positive(
            BeliefPath::root(),
            t("s1", "eagle"),
        ))
        .unwrap();
        // By the message-board assumption both users believe the fact...
        assert!(entails(
            &db,
            &BeliefStatement::positive(path(&[1]), t("s1", "eagle"))
        ));
        assert!(entails(
            &db,
            &BeliefStatement::positive(path(&[2]), t("s1", "eagle"))
        ));
        // ... at any nesting depth.
        assert!(entails(
            &db,
            &BeliefStatement::positive(path(&[1, 2]), t("s1", "eagle"))
        ));
        assert!(entails(
            &db,
            &BeliefStatement::positive(path(&[2, 1, 2]), t("s1", "eagle"))
        ));
    }

    #[test]
    fn explicit_disagreement_overrides_default() {
        let mut db = small_db(&["Alice", "Bob"]);
        db.insert(BeliefStatement::positive(
            BeliefPath::root(),
            t("s1", "eagle"),
        ))
        .unwrap();
        db.insert(BeliefStatement::negative(path(&[2]), t("s1", "eagle")))
            .unwrap();
        // Bob does not believe the sighting ...
        assert!(entails(
            &db,
            &BeliefStatement::negative(path(&[2]), t("s1", "eagle"))
        ));
        assert!(!entails(
            &db,
            &BeliefStatement::positive(path(&[2]), t("s1", "eagle"))
        ));
        // ... but Alice still does, and Bob believes that Alice believes it.
        assert!(entails(
            &db,
            &BeliefStatement::positive(path(&[1]), t("s1", "eagle"))
        ));
        assert!(entails(
            &db,
            &BeliefStatement::positive(path(&[2, 1]), t("s1", "eagle"))
        ));
        // And Alice believes Bob disbelieves it.
        assert!(entails(
            &db,
            &BeliefStatement::negative(path(&[1, 2]), t("s1", "eagle"))
        ));
    }

    #[test]
    fn key_conflict_blocks_inheritance() {
        let mut db = small_db(&["Alice", "Bob"]);
        db.insert(BeliefStatement::positive(
            BeliefPath::root(),
            t("s1", "crow"),
        ))
        .unwrap();
        db.insert(BeliefStatement::positive(path(&[2]), t("s1", "raven")))
            .unwrap();
        // Bob's own tuple wins; the root's crow is blocked (unstated negative).
        assert!(entails(
            &db,
            &BeliefStatement::positive(path(&[2]), t("s1", "raven"))
        ));
        assert!(entails(
            &db,
            &BeliefStatement::negative(path(&[2]), t("s1", "crow"))
        ));
        // But the theory contains no *stated* negative crow for Bob:
        let mut cl = Closure::new(&db);
        assert!(!cl.theory_contains(&BeliefStatement::negative(path(&[2]), t("s1", "crow"))));
        assert!(cl.entails(&BeliefStatement::negative(path(&[2]), t("s1", "crow"))));
    }

    #[test]
    fn inheritance_chain_drops_first_user() {
        // World 2·1 inherits from world 1, not from world 2.
        let mut db = small_db(&["Alice", "Bob"]);
        db.insert(BeliefStatement::positive(path(&[1]), t("s1", "crow")))
            .unwrap();
        db.insert(BeliefStatement::positive(path(&[2]), t("s2", "owl")))
            .unwrap();
        let w21 = entailed_world(&db, &path(&[2, 1]));
        assert!(
            w21.contains_pos(&t("s1", "crow")),
            "inherits Alice's belief"
        );
        assert!(
            !w21.contains_pos(&t("s2", "owl")),
            "does not inherit Bob's own belief"
        );
    }

    #[test]
    fn dora_joins_late_and_believes_everything() {
        // Sect. 3.2's Dora scenario: a user with no statements believes all
        // stated beliefs by default.
        let (db, alice, bob, _carol) = running_example();
        let mut db = db;
        let dora = db.add_user("Dora").unwrap();
        let sightings = db.schema().relation_id("Sightings").unwrap();
        let s11 = GroundTuple::new(
            sightings,
            row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
        );
        // Dora believes Carol's sighting (it is stated at the root).
        assert!(entails(
            &db,
            &BeliefStatement::positive(BeliefPath::user(dora), s11.clone())
        ));
        // Dora believes that Bob does not believe it.
        let dora_bob = BeliefPath::new(vec![dora, bob]).unwrap();
        assert!(entails(
            &db,
            &BeliefStatement::negative(dora_bob, s11.clone())
        ));
        // Dora believes that Alice believes it.
        let dora_alice = BeliefPath::new(vec![dora, alice]).unwrap();
        assert!(entails(&db, &BeliefStatement::positive(dora_alice, s11)));
    }

    #[test]
    fn running_example_entailments_from_sect_3_2() {
        let (db, alice, bob, _) = running_example();
        let sightings = db.schema().relation_id("Sightings").unwrap();
        let s11 = GroundTuple::new(
            sightings,
            row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
        );
        // D |= Alice s1+ (default) and D |= Bob s1− (explicit).
        assert!(entails(
            &db,
            &BeliefStatement::positive(BeliefPath::user(alice), s11.clone())
        ));
        assert!(entails(
            &db,
            &BeliefStatement::negative(BeliefPath::user(bob), s11.clone())
        ));
        // D |= Bob·Alice s1+: Bob believes Alice believes the sighting.
        let bob_alice = BeliefPath::new(vec![bob, alice]).unwrap();
        assert!(entails(&db, &BeliefStatement::positive(bob_alice, s11)));
    }

    #[test]
    fn bob_alice_world_of_fig4() {
        // State #3 of Fig. 4: {s21+, c11+, c21+} (Alice's world content with
        // Bob's explicit c21 claim about Alice).
        let (db, alice, bob, _) = running_example();
        let sightings = db.schema().relation_id("Sightings").unwrap();
        let comments = db.schema().relation_id("Comments").unwrap();
        let ba = BeliefPath::new(vec![bob, alice]).unwrap();
        let w = entailed_world(&db, &ba);
        let s21 = GroundTuple::new(
            sightings,
            row!["s2", "Alice", "crow", "6-14-08", "Lake Placid"],
        );
        let c11 = GroundTuple::new(comments, row!["c1", "found feathers", "s2"]);
        let c21 = GroundTuple::new(comments, row!["c2", "black feathers", "s2"]);
        let s11 = GroundTuple::new(
            sightings,
            row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
        );
        assert!(w.contains_pos(&s21));
        assert!(w.contains_pos(&c11));
        assert!(w.contains_pos(&c21));
        // s11 is inherited down the chain Bob·Alice ← Alice ← ε.
        assert!(w.contains_pos(&s11));
        assert_eq!(w.pos_len(), 4);
        assert_eq!(w.neg_len(), 0);
    }

    #[test]
    fn alice_world_of_fig4() {
        // State #1 of Fig. 4: {s11+, s21+, c11+}.
        let (db, alice, _, _) = running_example();
        let w = entailed_world(&db, &BeliefPath::user(alice));
        assert_eq!(w.pos_len(), 3);
        assert_eq!(w.neg_len(), 0);
    }

    #[test]
    fn bob_world_of_fig4() {
        // State #2 of Fig. 4: {s11−, s12−, s22+, c22+}; c21 is NOT Bob's own
        // belief (he attributes it to Alice), and s21/crow is blocked by his
        // raven claim.
        let (db, _, bob, _) = running_example();
        let sightings = db.schema().relation_id("Sightings").unwrap();
        let w = entailed_world(&db, &BeliefPath::user(bob));
        assert_eq!(w.pos_len(), 2);
        assert_eq!(w.neg_len(), 2);
        let s21 = GroundTuple::new(
            sightings,
            row!["s2", "Alice", "crow", "6-14-08", "Lake Placid"],
        );
        assert!(w.entails_neg(&s21), "crow is an unstated negative for Bob");
        assert!(!w.contains_neg(&s21), "but not a stated one");
    }

    #[test]
    fn lemma11_consistency_preserved() {
        let (db, ..) = running_example();
        assert!(db.is_consistent());
        assert!(closure_consistent_to_depth(&db, 3));
    }

    #[test]
    fn memoization_is_stable() {
        let (db, _, bob, _) = running_example();
        let mut cl = Closure::new(&db);
        let p = BeliefPath::user(bob);
        let a = cl.entailed_world(&p).clone();
        let b = cl.entailed_world(&p).clone();
        assert_eq!(a, b);
        // state_worlds covers every state
        let worlds = cl.state_worlds();
        assert_eq!(worlds.len(), 4);
    }
}

// ---------------------------------------------------------------------------
// The literal Def. 9 iteration — the most direct executable form of the
// message-board closure, used to validate the suffix-chain optimization
// (Fig. 9 / Thm. 17 step 2a) that `Closure` implements.
// ---------------------------------------------------------------------------

/// Compute `D^(depth)` exactly as Def. 9 writes it:
///
/// ```text
/// D^(0)   = D
/// D^(d+1) = D^(d) ∪ { iϕ | ϕ ∈ D^(d), i ∈ U, path(iϕ) ∈ Û*,
///                          D^(d) ∪ {iϕ} is consistent }
/// ```
///
/// The closure is infinite; truncating at `depth` yields every statement
/// with a path of length ≤ `depth` that the full closure contains (each
/// iteration only adds statements one level deeper than the deepest ones
/// that produced them, and a statement's membership is settled by level
/// `|path|` — cf. the proof of Thm. 17).
///
/// Exponential in `depth` — for tests only.
pub fn literal_def9_closure(
    db: &BeliefDatabase,
    depth: usize,
) -> std::collections::BTreeSet<BeliefStatement> {
    use std::collections::BTreeSet;
    let users: Vec<crate::ids::UserId> = db.users().collect();
    let mut current: BTreeSet<BeliefStatement> = db.statements().into_iter().collect();
    for _ in 0..depth {
        // Explicit worlds of D^(d), grouped by path, to check consistency of
        // D^(d) ∪ {iϕ}.
        let mut worlds: std::collections::BTreeMap<BeliefPath, BeliefWorld> = Default::default();
        for stmt in &current {
            worlds
                .entry(stmt.path.clone())
                .or_default()
                .add(stmt.tuple.clone(), stmt.sign);
        }
        let mut additions: Vec<BeliefStatement> = Vec::new();
        for stmt in &current {
            for &i in &users {
                let Ok(prefixed_path) = stmt.path.prepend(i) else {
                    continue;
                };
                let candidate =
                    BeliefStatement::new(prefixed_path.clone(), stmt.tuple.clone(), stmt.sign);
                if current.contains(&candidate) {
                    continue;
                }
                // D^(d) ∪ {iϕ} is consistent ⇔ the world at i·w accepts ϕ.
                let accepts = worlds
                    .get(&prefixed_path)
                    .is_none_or(|w| w.can_accept(&candidate.tuple, candidate.sign));
                if accepts {
                    additions.push(candidate);
                }
            }
        }
        let before = current.len();
        current.extend(additions);
        if current.len() == before {
            break; // fixpoint below the depth bound
        }
    }
    current
}

#[cfg(test)]
mod def9_tests {
    use super::*;
    use crate::database::running_example;
    use crate::statement::Sign;

    /// The literal Def. 9 iteration and the suffix-chain closure must agree
    /// on *statement membership* (`ϕ ∈ D̄`) for every path up to the
    /// truncation depth — this is exactly the content of Thm. 17 step (2a)
    /// and Fig. 9.
    #[test]
    fn literal_iteration_matches_suffix_chain_closure() {
        let (db, ..) = running_example();
        let depth = 3;
        let theory = literal_def9_closure(&db, depth);
        let mut cl = Closure::new(&db);

        // Every statement the iteration produced is in the theory per the
        // suffix-chain computation...
        for stmt in &theory {
            assert!(
                cl.theory_contains(stmt),
                "literal Def. 9 produced {stmt}, suffix chain disagrees"
            );
        }
        // ... and vice versa: enumerate all candidate statements over the
        // mentioned tuples and paths up to `depth`, and check both ways.
        let users: Vec<crate::ids::UserId> = db.users().collect();
        let mut paths = vec![BeliefPath::root()];
        let mut frontier = vec![BeliefPath::root()];
        for _ in 0..depth {
            let mut next = Vec::new();
            for p in &frontier {
                for &u in &users {
                    if let Ok(q) = p.push(u) {
                        next.push(q);
                    }
                }
            }
            paths.extend(next.iter().cloned());
            frontier = next;
        }
        let mut checked = 0;
        for p in &paths {
            for t in db.mentioned_tuples() {
                for sign in [Sign::Pos, Sign::Neg] {
                    let stmt = BeliefStatement::new(p.clone(), t.clone(), sign);
                    assert_eq!(
                        theory.contains(&stmt),
                        cl.theory_contains(&stmt),
                        "membership mismatch on {stmt}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(
            checked >= 300,
            "exhaustive sweep should cover many statements, got {checked}"
        );
    }

    /// Lemma 11 via the literal iteration: every world of the truncated
    /// closure of a consistent database is consistent.
    #[test]
    fn literal_closure_is_consistent() {
        let (db, ..) = running_example();
        assert!(db.is_consistent());
        let theory = literal_def9_closure(&db, 3);
        let mut worlds: std::collections::BTreeMap<BeliefPath, BeliefWorld> = Default::default();
        for stmt in &theory {
            worlds
                .entry(stmt.path.clone())
                .or_default()
                .add(stmt.tuple.clone(), stmt.sign);
        }
        for (path, world) in worlds {
            assert!(
                world.is_consistent(),
                "inconsistent closure world at {path}"
            );
        }
    }

    /// The closure truncated at depth d is monotone in d, and statement
    /// counts grow (strictly, until fixpoint).
    #[test]
    fn literal_closure_is_monotone_in_depth() {
        let (db, ..) = running_example();
        let mut previous = literal_def9_closure(&db, 0);
        for depth in 1..=3 {
            let next = literal_def9_closure(&db, depth);
            assert!(
                next.is_superset(&previous),
                "D^({depth}) must contain D^({})",
                depth - 1
            );
            previous = next;
        }
    }
}
