//! Reproduce Figure 6: |R*|/n as a function of the number of annotations n
//! (100 users, uniform participation, two depth distributions).
//!
//! Usage: `cargo run -p beliefdb-bench --release --bin fig6 -- \
//!         [--max 10000] [--seed 42]`

use beliefdb_bench::{arg_u64, arg_usize, format_fig6, run_fig6};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max = arg_usize(&args, "--max", 10_000);
    let seed = arg_u64(&args, "--seed", 42);
    // Log-spaced n values from 10 up to --max, as in the paper's log-log plot.
    let mut ns = Vec::new();
    let mut n = 10usize;
    while n <= max {
        ns.push(n);
        ns.push((n * 10 / 3).min(max));
        n *= 10;
    }
    ns.dedup();
    ns.retain(|&x| x <= max);
    eprintln!("running Figure 6 sweep over n = {ns:?}");
    let start = std::time::Instant::now();
    let series = run_fig6(&ns, seed).expect("fig6 run failed");
    println!("{}", format_fig6(&series));
    println!("paper shape: the uniform-depth series grows with n toward its");
    println!("O(m^dmax) cap; the skewed series *decreases* with n (the fixed");
    println!("per-user cost amortizes).");
    eprintln!("total time: {:.1?}", start.elapsed());
}
