//! Reproduce Table 2: execution times and result sizes for the seven
//! example queries q1,0..q1,4, q2, q3.
//!
//! Usage: `cargo run -p beliefdb-bench --release --bin table2 -- \
//!         [--n 10000] [--reps 100] [--seed 42]`

use beliefdb_bench::{arg_u64, arg_usize, format_table2, run_table2};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--n", 10_000);
    let reps = arg_usize(&args, "--reps", 100);
    let seed = arg_u64(&args, "--seed", 42);
    eprintln!("building the query database (n = {n}) ...");
    let start = std::time::Instant::now();
    let (bdms, rows) = run_table2(n, seed, reps).expect("table 2 run failed");
    println!("{}", format_table2(&rows, n, bdms.stats().total_tuples));
    println!("paper values (ms, SQL Server 2005, 10k annotations, overhead 22.4):");
    println!("  E(Time)   105  145  146  152  144   436  4473");
    println!("  rows     1626 2816 2253 2061 1931   196    99");
    println!("expected shape: q1,* cheapest and flat beyond depth 1;");
    println!("q2 slower (negative subgoal); q3 slowest (user variable).");
    eprintln!("total time: {:.1?}", start.elapsed());
}
