//! Reproduce Table 1: relative overhead |R*|/n.
//!
//! Usage: `cargo run -p beliefdb-bench --release --bin table1 -- \
//!         [--n 10000] [--seeds 3]`
//!
//! The paper uses n = 10,000 and averages each cell over 10 databases; the
//! defaults match n and use 3 seeds to keep the run in minutes.

use beliefdb_bench::{arg_u64, arg_usize, format_table1, run_table1};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--n", 10_000);
    let seed0 = arg_u64(&args, "--seed", 42);
    let seeds: Vec<u64> = (0..arg_usize(&args, "--seeds", 3) as u64)
        .map(|i| seed0 + i)
        .collect();
    eprintln!(
        "generating {} databases with n = {n} annotations each ...",
        seeds.len() * 12
    );
    let start = std::time::Instant::now();
    let rows = run_table1(n, &seeds).expect("table 1 run failed");
    println!("{}", format_table1(&rows, n));
    println!("paper values (n = 10,000):");
    println!("  [1/3, 1/3, 1/3]       |  31  38 | 130 1009");
    println!("  [0.8, 0.19, 0.01]     |  27  60 |  68  162");
    println!("  [0.199, 0.8, 0.001]   |   7   6 |  21   26");
    eprintln!("total time: {:.1?}", start.elapsed());
}
