//! Run every experiment at a configurable scale and print all reports.
//!
//! Usage: `cargo run -p beliefdb-bench --release --bin all_experiments -- \
//!         [--n 10000] [--seeds 3] [--reps 50]`

use beliefdb_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--n", 10_000);
    let seeds: Vec<u64> = (0..arg_usize(&args, "--seeds", 3) as u64)
        .map(|i| 42 + i)
        .collect();
    let reps = arg_usize(&args, "--reps", 50);

    println!("=== Table 1 ===");
    let rows = run_table1(n, &seeds).expect("table1");
    println!("{}", format_table1(&rows, n));

    println!("=== Figure 6 ===");
    let mut ns = vec![10, 33, 100, 333, 1000, 3333];
    if n >= 10_000 {
        ns.push(10_000);
    }
    let series = run_fig6(&ns, seeds[0]).expect("fig6");
    println!("{}", format_fig6(&series));

    println!("=== Table 2 ===");
    let (bdms, rows) = run_table2(n, seeds[0], reps).expect("table2");
    println!("{}", format_table2(&rows, n, bdms.stats().total_tuples));

    println!("=== Streaming executor ===");
    let rows = run_exec_streaming(n, reps.clamp(3, 20)).expect("exec_streaming");
    println!("{}", format_exec_streaming(&rows, n));

    println!("=== Vectorized executor ===");
    let (rows, sweep) = run_exec_vectorized(n, reps.clamp(3, 20)).expect("exec_vectorized");
    println!("{}", format_exec_vectorized(&rows, &sweep, n));

    println!("=== Columnar executor ===");
    let rows = run_exec_columnar(n, reps.clamp(3, 20)).expect("exec_columnar");
    println!("{}", format_exec_columnar(&rows, n));
    let path = std::path::Path::new("BENCH_columnar.json");
    write_bench_columnar_json(path, &rows, n).expect("write BENCH_columnar.json");
    println!("wrote {}", path.display());

    println!("=== Magic sets (demand-driven Datalog) ===");
    let rows = run_opt_magic(n, reps.clamp(3, 20)).expect("opt_magic");
    println!("{}", format_opt_magic(&rows, n));
    let path = std::path::Path::new("BENCH_magic.json");
    write_bench_magic_json(path, &rows, n).expect("write BENCH_magic.json");
    println!("wrote {}", path.display());

    println!("=== Spill-to-disk execution ===");
    let rows = run_spill(n, reps.clamp(3, 20)).expect("spill");
    println!("{}", format_spill(&rows, n));

    println!("=== Persistence ===");
    // WAL appends are per-statement syscalls: cap the workload so the
    // full experiment run stays interactive at large --n.
    let report = run_persist(n.min(5_000), reps.clamp(2, 10)).expect("persist");
    println!("{}", format_persist(&report));

    println!("=== Observability ===");
    let report = run_obs(n, reps.clamp(3, 20)).expect("obs");
    println!("{}", format_obs(&report, n));
    let path = std::path::Path::new("BENCH_obs.json");
    write_bench_obs_json(path, &report, n).expect("write BENCH_obs.json");
    println!("wrote {}", path.display());

    println!("=== System catalog (sys.*) ===");
    let report = run_obs_systables(n, reps.clamp(3, 20)).expect("obs_systables");
    println!("{}", format_obs_systables(&report, n));
    let path = std::path::Path::new("BENCH_systables.json");
    write_bench_systables_json(path, &report, n).expect("write BENCH_systables.json");
    println!("wrote {}", path.display());
}
