//! # beliefdb-bench
//!
//! The experiment harness reproducing the paper's evaluation (Sect. 6):
//!
//! * **Table 1** — relative overhead `|R*|/n` for `n = 10,000` annotations,
//!   `m ∈ {10, 100}` users, Zipf vs. uniform participation, three depth
//!   distributions ([`run_table1`]);
//! * **Figure 6** — `|R*|/n` as a function of `n` for two depth
//!   distributions ([`run_fig6`]);
//! * **Table 2** — latency and result sizes of the seven example queries
//!   `q1,0..q1,4`, `q2`, `q3` ([`run_table2`]);
//! * ablations (criterion benches) comparing evaluation strategies,
//!   canonical-construction cost, and insert strategies.
//!
//! Binaries (`table1`, `fig6`, `table2`, `all_experiments`) print
//! paper-style reports; criterion benches wrap the same code paths.

use beliefdb_core::bcq::dsl::*;
use beliefdb_core::bcq::Bcq;
use beliefdb_core::{Bdms, Result, UserId};
use beliefdb_gen::scenarios::{fig6_series, table1_cells, table2_config};
use beliefdb_gen::{generate_bdms, GeneratorConfig};
use std::time::{Duration, Instant};

/// One measured cell of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub depth_label: &'static str,
    pub users: usize,
    pub zipf: bool,
    /// Mean relative overhead `|R*|/n` over the seeds.
    pub overhead: f64,
    /// Per-seed values (for dispersion reporting).
    pub samples: Vec<f64>,
}

/// Run the Table 1 grid: `n` annotations per database, averaging over
/// `seeds` generated databases per cell (the paper averages over 10).
pub fn run_table1(n: usize, seeds: &[u64]) -> Result<Vec<Table1Row>> {
    let mut rows: Vec<Table1Row> = Vec::new();
    for seed in seeds {
        for cell in table1_cells(n, *seed) {
            let (bdms, report) = generate_bdms(&cell.config)?;
            debug_assert_eq!(report.accepted, n);
            let overhead = bdms.stats().relative_overhead(n);
            match rows.iter_mut().find(|r| {
                r.depth_label == cell.depth_label && r.users == cell.users && r.zipf == cell.zipf
            }) {
                Some(row) => row.samples.push(overhead),
                None => rows.push(Table1Row {
                    depth_label: cell.depth_label,
                    users: cell.users,
                    zipf: cell.zipf,
                    overhead: 0.0,
                    samples: vec![overhead],
                }),
            }
        }
    }
    for row in &mut rows {
        row.overhead = row.samples.iter().sum::<f64>() / row.samples.len() as f64;
    }
    Ok(rows)
}

/// Render Table 1 in the paper's layout.
pub fn format_table1(rows: &[Table1Row], n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1: relative overhead |R*|/n for n = {n} annotations\n"
    ));
    out.push_str(&format!(
        "{:<22} | {:>10} {:>10} | {:>10} {:>10}\n",
        "Pr[d = {0,1,2}]", "m=10 Zipf", "m=10 unif", "m=100 Zipf", "m=100 unif"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for depth in [
        "[1/3, 1/3, 1/3]",
        "[0.8, 0.19, 0.01]",
        "[0.199, 0.8, 0.001]",
    ] {
        let cell = |users: usize, zipf: bool| -> String {
            rows.iter()
                .find(|r| r.depth_label == depth && r.users == users && r.zipf == zipf)
                .map(|r| format!("{:.0}", r.overhead))
                .unwrap_or_else(|| "-".into())
        };
        out.push_str(&format!(
            "{:<22} | {:>10} {:>10} | {:>10} {:>10}\n",
            depth,
            cell(10, true),
            cell(10, false),
            cell(100, true),
            cell(100, false)
        ));
    }
    out
}

/// One point of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    pub n: usize,
    pub overhead: f64,
}

/// One series of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Series {
    pub label: &'static str,
    pub points: Vec<Fig6Point>,
}

/// Run the Figure 6 sweep: overhead vs. number of annotations, 100 users,
/// uniform participation, two depth distributions.
pub fn run_fig6(ns: &[usize], seed: u64) -> Result<Vec<Fig6Series>> {
    let mut out = Vec::new();
    for (label, configs) in fig6_series(ns, seed) {
        let mut points = Vec::with_capacity(configs.len());
        for cfg in configs {
            let n = cfg.annotations;
            let (bdms, _) = generate_bdms(&cfg)?;
            points.push(Fig6Point {
                n,
                overhead: bdms.stats().relative_overhead(n),
            });
        }
        out.push(Fig6Series { label, points });
    }
    Ok(out)
}

/// Render Figure 6 as a data table.
pub fn format_fig6(series: &[Fig6Series]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6: relative overhead |R*|/n vs. number of annotations n\n");
    out.push_str("(100 users, uniform participation)\n\n");
    for s in series {
        out.push_str(&format!("series: {}\n", s.label));
        out.push_str(&format!("{:>10} | {:>12}\n", "n", "|R*|/n"));
        for p in &s.points {
            out.push_str(&format!("{:>10} | {:>12.1}\n", p.n, p.overhead));
        }
        out.push('\n');
    }
    out
}

/// Join-order stress queries for the optimizer ablation: two wide-open
/// subgoals share the sighting key, and the *last* subgoal pins the key
/// set down with constants. Naive body-order evaluation joins the two
/// huge temp tables first and filters late; the cost-based reorder
/// starts from the selective relation. `qj3_first` is the same query
/// with the selective subgoal written first — a sanity baseline where
/// naive order is already good.
pub fn optimizer_stress_queries(bdms: &Bdms) -> Result<Vec<(String, Bcq)>> {
    let s = bdms.schema().relation_id("S")?;
    let schema = bdms.schema();
    let wide1 = vec![qv("k"), qany(), qv("sp1"), qany(), qany()];
    let wide2 = vec![qv("k"), qany(), qv("sp2"), qany(), qany()];
    let selective = vec![qv("k"), qc("u1"), qc("species0"), qany(), qany()];

    let qj3_last = Bcq::builder(vec![qv("x"), qv("y"), qv("sp1"), qv("sp2")])
        .positive(vec![pv("x")], s, wide1.clone())
        .positive(vec![pv("y")], s, wide2.clone())
        .positive(vec![], s, selective.clone())
        .build(schema)?;
    let qj3_first = Bcq::builder(vec![qv("x"), qv("y"), qv("sp1"), qv("sp2")])
        .positive(vec![], s, selective)
        .positive(vec![pv("x")], s, wide1)
        .positive(vec![pv("y")], s, wide2)
        .build(schema)?;
    Ok(vec![
        ("qj3_last".into(), qj3_last),
        ("qj3_first".into(), qj3_first),
    ])
}

/// The seven example queries of Sect. 6.2 over the experiment schema
/// `S(sid, uid, species, date, location)`:
/// `q1,d` — content query "what does world `w` (|w| = d) believe",
/// projecting `(sid, species)`; `q2` — conflict query `2·1 S+ ∧ 2 S−`
/// (what Bob believes Alice believes but does not believe himself);
/// `q3` — user query: who disagrees with a belief of user 1 at a fixed
/// location (the query variable only occurs in the belief path of a
/// negative subgoal).
pub fn table2_queries(bdms: &Bdms) -> Result<Vec<(String, Bcq)>> {
    let s = bdms.schema().relation_id("S")?;
    let schema = bdms.schema();
    let mut queries = Vec::new();

    // q1,d for d = 0..4 with alternating constant paths ending like the
    // paper's examples (ε, 1, 2·1, 1·2·1, 2·1·2·1).
    let paths: [Vec<UserId>; 5] = [
        vec![],
        vec![UserId(1)],
        vec![UserId(2), UserId(1)],
        vec![UserId(1), UserId(2), UserId(1)],
        vec![UserId(2), UserId(1), UserId(2), UserId(1)],
    ];
    for (d, users) in paths.iter().enumerate() {
        let path = users.iter().map(|u| pu(*u)).collect::<Vec<_>>();
        let q = Bcq::builder(vec![qv("x"), qv("y")])
            .positive(path, s, vec![qv("x"), qany(), qv("y"), qany(), qany()])
            .build(schema)?;
        queries.push((format!("q1,{d}"), q));
    }

    // q2: conflicts between "Bob believes Alice believes" and "Bob believes".
    let args = vec![qv("x"), qv("z"), qv("y"), qv("u"), qv("v")];
    let q2 = Bcq::builder(vec![qv("x"), qv("y")])
        .positive(vec![pu(UserId(2)), pu(UserId(1))], s, args.clone())
        .negative(vec![pu(UserId(2))], s, args)
        .build(schema)?;
    queries.push(("q2".into(), q2));

    // q3: users disagreeing with user 1's beliefs at location 'loc0'.
    let args = vec![qv("y"), qv("z"), qv("u"), qv("v"), qc("loc0")];
    let q3 = Bcq::builder(vec![qv("x")])
        .negative(vec![pv("x")], s, args.clone())
        .positive(vec![pu(UserId(1))], s, args)
        .build(schema)?;
    queries.push(("q3".into(), q3));

    Ok(queries)
}

/// One measured query of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub name: String,
    pub mean: Duration,
    pub stddev: Duration,
    pub result_size: usize,
}

/// Run Table 2: build the `n`-annotation database, execute each query
/// `reps` times, report mean/σ latency and result sizes.
pub fn run_table2(n: usize, seed: u64, reps: usize) -> Result<(Bdms, Vec<Table2Row>)> {
    let cfg = table2_config(n, seed);
    let (bdms, _) = generate_bdms(&cfg)?;
    let rows = run_table2_queries(&bdms, reps)?;
    Ok((bdms, rows))
}

/// Measure the Table 2 queries against an existing database.
pub fn run_table2_queries(bdms: &Bdms, reps: usize) -> Result<Vec<Table2Row>> {
    let queries = table2_queries(bdms)?;
    let mut out = Vec::with_capacity(queries.len());
    for (name, q) in queries {
        let mut samples = Vec::with_capacity(reps);
        let mut result_size = 0;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let rows = bdms.query(&q)?;
            samples.push(start.elapsed());
            result_size = rows.len();
        }
        let mean_nanos = samples.iter().map(|d| d.as_nanos()).sum::<u128>() / samples.len() as u128;
        let var = samples
            .iter()
            .map(|d| {
                let diff = d.as_nanos() as f64 - mean_nanos as f64;
                diff * diff
            })
            .sum::<f64>()
            / samples.len() as f64;
        out.push(Table2Row {
            name,
            mean: Duration::from_nanos(mean_nanos as u64),
            stddev: Duration::from_nanos(var.sqrt() as u64),
            result_size,
        });
    }
    Ok(out)
}

/// Render Table 2 in the paper's layout.
pub fn format_table2(rows: &[Table2Row], n: usize, total_tuples: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 2: query latency over a belief database with {n} annotations \
         ({total_tuples} internal tuples, overhead {:.1})\n",
        total_tuples as f64 / n.max(1) as f64
    ));
    out.push_str(&format!("{:<8}", ""));
    for r in rows {
        out.push_str(&format!("{:>10}", r.name));
    }
    out.push('\n');
    out.push_str(&format!("{:<8}", "E(ms)"));
    for r in rows {
        out.push_str(&format!("{:>10.2}", r.mean.as_secs_f64() * 1e3));
    }
    out.push('\n');
    out.push_str(&format!("{:<8}", "sd(ms)"));
    for r in rows {
        out.push_str(&format!("{:>10.2}", r.stddev.as_secs_f64() * 1e3));
    }
    out.push('\n');
    out.push_str(&format!("{:<8}", "rows"));
    for r in rows {
        out.push_str(&format!("{:>10}", r.result_size));
    }
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// Streaming vs materializing executor
// ---------------------------------------------------------------------------

/// One measured plan of the streaming-vs-materializing comparison.
#[derive(Debug, Clone)]
pub struct ExecStreamingRow {
    pub name: &'static str,
    pub streaming: Duration,
    pub materialized: Duration,
    pub result_size: usize,
}

impl ExecStreamingRow {
    /// Materialized-over-streaming time ratio (>1 means streaming wins).
    pub fn speedup(&self) -> f64 {
        self.materialized.as_secs_f64() / self.streaming.as_secs_f64().max(1e-12)
    }
}

/// The wide-intermediate workload of the executor comparison: a fact
/// table `F` (`n` rows) joined against a fanout-4 dimension `D`, so the
/// join's intermediate is `4n` rows wide before a selective filter cuts
/// it down. The materializing executor allocates that intermediate; the
/// streaming executor pipelines `F` through the build table row by row.
pub fn exec_streaming_db(n: usize) -> Result<beliefdb_storage::Database> {
    use beliefdb_storage::{row, Database, TableSchema};
    let mut db = Database::new();
    let f = db.create_table(TableSchema::keyless("F", &["fid", "k", "v"]))?;
    for i in 0..n as i64 {
        f.insert(row![i, i % 50, i % 997])?;
    }
    let d = db.create_table(TableSchema::keyless("D", &["k", "tag"]))?;
    for k in 0..50i64 {
        for copy in 0..4i64 {
            d.insert(row![k, k * 4 + copy])?;
        }
    }
    Ok(db)
}

/// The measured plans: a selective scan→filter→project pipeline, the
/// wide-intermediate join, and a first-rows query where streaming's
/// short-circuiting `Limit` never runs the full join.
pub fn exec_streaming_plans() -> Vec<(&'static str, beliefdb_storage::Plan)> {
    use beliefdb_storage::{CmpOp, Expr, Plan};
    let selective = Plan::scan("F")
        .select(Expr::col_eq_lit(2, 3i64))
        .project_cols(&[0]);
    let wide_join = Plan::scan("F")
        .join(Plan::scan("D"), vec![(1, 0)])
        .select(Expr::cmp(CmpOp::Lt, Expr::Col(2), Expr::lit(5i64)))
        .project_cols(&[0, 4]);
    let first_rows = Plan::scan("F")
        .join(Plan::scan("D"), vec![(1, 0)])
        .project_cols(&[0, 4])
        .limit(100);
    vec![
        ("filter", selective),
        ("wide_join", wide_join),
        ("first_100", first_rows),
    ]
}

/// Time each workload plan under both executors (`reps` runs each,
/// best-of to damp scheduler noise) and sanity-check that they agree.
pub fn run_exec_streaming(n: usize, reps: usize) -> Result<Vec<ExecStreamingRow>> {
    use beliefdb_storage::{execute, execute_materialized};
    let db = exec_streaming_db(n)?;
    let mut out = Vec::new();
    for (name, plan) in exec_streaming_plans() {
        let mut streamed = execute(&db, &plan)?;
        let mut materialized = execute_materialized(&db, &plan)?;
        streamed.sort();
        materialized.sort();
        assert_eq!(streamed, materialized, "executors disagree on {name}");
        let best = |f: &dyn Fn() -> usize| -> Duration {
            let mut best = Duration::MAX;
            for _ in 0..reps.max(1) {
                let start = Instant::now();
                std::hint::black_box(f());
                best = best.min(start.elapsed());
            }
            best
        };
        let streaming = best(&|| execute(&db, &plan).expect("streaming run").len());
        let materializing = best(&|| {
            execute_materialized(&db, &plan)
                .expect("materialized run")
                .len()
        });
        out.push(ExecStreamingRow {
            name,
            streaming,
            materialized: materializing,
            result_size: streamed.len(),
        });
    }
    Ok(out)
}

/// Render the executor comparison as a small report table.
pub fn format_exec_streaming(rows: &[ExecStreamingRow], n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Streaming vs materializing executor (fact table of {n} rows, fanout-4 join)\n"
    ));
    out.push_str(&format!(
        "{:<12}{:>14}{:>14}{:>10}{:>10}\n",
        "plan", "stream(ms)", "mat(ms)", "speedup", "rows"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:>14.3}{:>14.3}{:>9.2}x{:>10}\n",
            r.name,
            r.streaming.as_secs_f64() * 1e3,
            r.materialized.as_secs_f64() * 1e3,
            r.speedup(),
            r.result_size
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Vectorized (chunked) vs row-at-a-time executor
// ---------------------------------------------------------------------------

/// One measured plan of the vectorization comparison.
#[derive(Debug, Clone)]
pub struct ExecVectorizedRow {
    pub name: &'static str,
    pub chunked: Duration,
    pub row_at_a_time: Duration,
    pub result_size: usize,
}

impl ExecVectorizedRow {
    /// Row-at-a-time over chunked time ratio (>1 means chunked wins).
    pub fn speedup(&self) -> f64 {
        self.row_at_a_time.as_secs_f64() / self.chunked.as_secs_f64().max(1e-12)
    }
}

/// One point of the batch-size sweep on the selective-filter plan.
#[derive(Debug, Clone)]
pub struct BatchSweepRow {
    pub batch: usize,
    pub chunked: Duration,
}

/// Time each workload plan under the chunked and row-at-a-time streaming
/// executors (`reps` runs each, best-of to damp scheduler noise) and
/// sanity-check that they agree. Same plans as the streaming-vs-
/// materializing comparison: selective filter, wide fanout-4 join, and
/// the short-circuiting first-100-rows query (which must *not* regress
/// under chunking — `Limit` caps its subtree's batch size).
pub fn run_exec_vectorized(
    n: usize,
    reps: usize,
) -> Result<(Vec<ExecVectorizedRow>, Vec<BatchSweepRow>)> {
    use beliefdb_storage::{execute, execute_rows, Executor};
    let db = exec_streaming_db(n)?;
    let best = |f: &dyn Fn() -> usize| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            std::hint::black_box(f());
            best = best.min(start.elapsed());
        }
        best
    };
    let mut out = Vec::new();
    for (name, plan) in exec_streaming_plans() {
        let mut chunked = execute(&db, &plan)?;
        let mut row_wise = execute_rows(&db, &plan)?;
        chunked.sort();
        row_wise.sort();
        assert_eq!(chunked, row_wise, "executors disagree on {name}");
        let chunked_time = best(&|| execute(&db, &plan).expect("chunked run").len());
        let row_time = best(&|| execute_rows(&db, &plan).expect("row run").len());
        out.push(ExecVectorizedRow {
            name,
            chunked: chunked_time,
            row_at_a_time: row_time,
            result_size: chunked.len(),
        });
    }
    // Batch-size sweep over the selective filter.
    let (_, filter_plan) = exec_streaming_plans().swap_remove(0);
    let mut sweep = Vec::new();
    for batch in [128usize, 1024, 4096] {
        let time = best(&|| {
            Executor::with_batch_size(&db, batch)
                .open_chunks(&filter_plan)
                .expect("open")
                .collect_rows()
                .expect("sweep run")
                .len()
        });
        sweep.push(BatchSweepRow {
            batch,
            chunked: time,
        });
    }
    Ok((out, sweep))
}

/// Render the vectorization comparison as a small report table.
pub fn format_exec_vectorized(
    rows: &[ExecVectorizedRow],
    sweep: &[BatchSweepRow],
    n: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Chunked (vectorized) vs row-at-a-time executor (fact table of {n} rows)\n"
    ));
    out.push_str(&format!(
        "{:<12}{:>14}{:>14}{:>10}{:>10}\n",
        "plan", "chunked(ms)", "row(ms)", "speedup", "rows"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:>14.3}{:>14.3}{:>9.2}x{:>10}\n",
            r.name,
            r.chunked.as_secs_f64() * 1e3,
            r.row_at_a_time.as_secs_f64() * 1e3,
            r.speedup(),
            r.result_size
        ));
    }
    out.push_str("batch-size sweep (selective filter):\n");
    for s in sweep {
        out.push_str(&format!(
            "  batch={:<6}{:>12.3}ms\n",
            s.batch,
            s.chunked.as_secs_f64() * 1e3
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Spill-to-disk materialization points
// ---------------------------------------------------------------------------

/// One measured cell of the spill comparison: a plan at a budget.
#[derive(Debug, Clone)]
pub struct SpillRow {
    pub plan: &'static str,
    /// `"inf"`, `"1/2"`, or `"1/10"` of the input volume.
    pub budget_label: &'static str,
    pub budget: Option<usize>,
    pub time: Duration,
    /// The unlimited (fully in-memory) time for the same plan.
    pub in_memory: Duration,
    pub result_size: usize,
}

impl SpillRow {
    /// Budgeted over in-memory time ratio (>1 means spilling costs).
    pub fn slowdown(&self) -> f64 {
        self.time.as_secs_f64() / self.in_memory.as_secs_f64().max(1e-12)
    }
}

/// The spill workload plans: a full sort, a high-cardinality aggregate,
/// a distinct, and the wide join — each materializing O(input) without
/// a budget.
pub fn spill_plans() -> Vec<(&'static str, beliefdb_storage::Plan)> {
    use beliefdb_storage::{Agg, Plan};
    vec![
        ("sort", Plan::scan("F").sort(vec![2, 0])),
        (
            "aggregate",
            Plan::Aggregate {
                input: Box::new(Plan::scan("F")),
                group_by: vec![2],
                aggs: vec![Agg::Count, Agg::Max(0)],
            },
        ),
        ("distinct", Plan::scan("F").distinct()),
        ("join", Plan::scan("F").join(Plan::scan("D"), vec![(1, 0)])),
    ]
}

/// Approximate budget for a fraction of the `F` table's accounted
/// footprint (three-int rows ≈ 70 bytes in the executor's accounting).
pub fn spill_budget(n: usize, num: usize, den: usize) -> usize {
    n * 70 * num / den
}

/// Time the spill workloads at budgets ∞, ½·input, and ⅒·input
/// (best-of-`reps`), asserting the budgeted executor agrees with the
/// in-memory one before anything is timed.
pub fn run_spill(n: usize, reps: usize) -> Result<Vec<SpillRow>> {
    use beliefdb_storage::{execute, Executor, SpillOptions};
    let db = exec_streaming_db(n)?;
    let best = |f: &dyn Fn() -> usize| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            std::hint::black_box(f());
            best = best.min(start.elapsed());
        }
        best
    };
    let budgets: [(&'static str, Option<usize>); 3] = [
        ("inf", None),
        ("1/2", Some(spill_budget(n, 1, 2))),
        ("1/10", Some(spill_budget(n, 1, 10))),
    ];
    let run = |plan: &beliefdb_storage::Plan, budget: Option<usize>| -> usize {
        let exec = match budget {
            Some(b) => Executor::with_spill(&db, SpillOptions::with_budget(b)),
            None => Executor::new(&db),
        };
        let mut out = 0usize;
        for chunk in exec.open_chunks(plan).expect("open") {
            out += chunk.expect("chunk").len();
        }
        out
    };
    let mut rows = Vec::new();
    for (name, plan) in &spill_plans() {
        let mut reference = execute(&db, plan)?;
        reference.sort();
        // One baseline measurement per plan; every budget row compares
        // against it. The "inf" row is the same configuration but gets
        // its own independent sample — that difference is what the
        // <5%-regression guard actually measures.
        let in_memory = best(&|| run(plan, None));
        for (label, budget) in budgets {
            let time = match budget {
                None => best(&|| run(plan, None)),
                Some(b) => {
                    let mut got = Executor::with_spill(&db, SpillOptions::with_budget(b))
                        .open_chunks(plan)?
                        .collect_rows()?;
                    got.sort();
                    assert_eq!(got, reference, "budgeted executor diverged on {name}");
                    best(&|| run(plan, budget))
                }
            };
            rows.push(SpillRow {
                plan: name,
                budget_label: label,
                budget,
                time,
                in_memory,
                result_size: reference.len(),
            });
        }
    }
    Ok(rows)
}

/// Render the spill comparison as a small report table.
pub fn format_spill(rows: &[SpillRow], n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Spill-to-disk materialization points (fact table of {n} rows; \
         budgets as fractions of the input volume)\n"
    ));
    out.push_str(&format!(
        "{:<12}{:>8}{:>14}{:>14}{:>10}{:>10}\n",
        "plan", "budget", "time(ms)", "in-mem(ms)", "slowdown", "rows"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:>8}{:>14.3}{:>14.3}{:>9.2}x{:>10}\n",
            r.plan,
            r.budget_label,
            r.time.as_secs_f64() * 1e3,
            r.in_memory.as_secs_f64() * 1e3,
            r.slowdown(),
            r.result_size
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Persistence (WAL / snapshot / recovery)
// ---------------------------------------------------------------------------

/// A fresh scratch directory for durable-BDMS measurements.
pub fn persist_scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "beliefdb-bench-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Durability options that never auto-checkpoint — used to measure pure
/// WAL-tail replay at a controlled log length.
pub fn no_auto_checkpoint() -> beliefdb_core::PersistOptions {
    beliefdb_core::PersistOptions {
        segment_limit: 1 << 20,
        checkpoint_threshold: u64::MAX,
        sync_on_commit: false,
    }
}

/// The persistence report: append overhead vs the in-memory path on the
/// `ablation_insert` workload, recovery time as a function of WAL
/// length, and checkpoint cost.
#[derive(Debug, Clone)]
pub struct PersistReport {
    pub n: usize,
    /// Apply all `n` candidate statements to an in-memory BDMS.
    pub in_memory_insert: Duration,
    /// Same workload with write-ahead logging (fresh directory per run).
    pub durable_insert: Duration,
    /// `Bdms::open` wall time per replayed WAL length (records, time).
    pub recovery: Vec<(usize, Duration)>,
    /// `Bdms::open` when a snapshot covers everything (empty tail).
    pub snapshot_recovery: Duration,
    /// One `checkpoint()` of the fully-loaded store.
    pub checkpoint: Duration,
    /// Live WAL bytes after the full un-checkpointed run.
    pub wal_bytes_full: u64,
}

impl PersistReport {
    /// Durable over in-memory insert-time ratio (the acceptance bar is
    /// < 2×).
    pub fn append_overhead(&self) -> f64 {
        self.durable_insert.as_secs_f64() / self.in_memory_insert.as_secs_f64().max(1e-12)
    }
}

/// Run the persistence measurements: `n` candidate statements from the
/// `ablation_insert` generator (10 users, seed 42), `reps` runs each,
/// best-of to damp scheduler noise.
pub fn run_persist(n: usize, reps: usize) -> Result<PersistReport> {
    use beliefdb_gen::{experiment_schema, CandidateStream};
    let cfg = ablation_config(n, 10, 42);
    let mut stream = CandidateStream::new(&cfg);
    let stmts: Vec<beliefdb_core::BeliefStatement> =
        (0..n).map(|_| stream.next_candidate()).collect();

    let fresh_users = |bdms: &mut Bdms| {
        for i in 1..=10 {
            bdms.add_user(format!("u{i}")).expect("user");
        }
    };
    let best = |f: &mut dyn FnMut() -> usize| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            std::hint::black_box(f());
            best = best.min(start.elapsed());
        }
        best
    };

    // Both sides time *only* the statement loop: store construction,
    // scratch-directory setup, and cleanup happen outside the clock so
    // the reported ratio isolates the WAL append cost itself.
    let mut in_memory_insert = Duration::MAX;
    for _ in 0..reps.max(1) {
        let mut bdms = Bdms::new(beliefdb_gen::experiment_schema()).expect("schema");
        fresh_users(&mut bdms);
        let start = Instant::now();
        for s in &stmts {
            let _ = bdms.insert_statement(s).expect("insert");
        }
        std::hint::black_box(bdms.stats().total_tuples);
        in_memory_insert = in_memory_insert.min(start.elapsed());
    }

    let mut durable_insert = Duration::MAX;
    for _ in 0..reps.max(1) {
        let dir = persist_scratch_dir("append");
        let mut bdms = Bdms::create_with_options(&dir, experiment_schema(), no_auto_checkpoint())
            .expect("create");
        fresh_users(&mut bdms);
        let start = Instant::now();
        for s in &stmts {
            let _ = bdms.insert_statement(s).expect("insert");
        }
        std::hint::black_box(bdms.stats().total_tuples);
        durable_insert = durable_insert.min(start.elapsed());
        drop(bdms);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    // Recovery time vs WAL length: durable histories of growing record
    // counts, reopened cold (snapshot holds only the empty store).
    let mut recovery = Vec::new();
    let mut wal_bytes_full = 0;
    let mut full_dir = None;
    for len in [n / 4, n / 2, n] {
        if len == 0 {
            continue;
        }
        let dir = persist_scratch_dir("recover");
        let mut bdms = Bdms::create_with_options(&dir, experiment_schema(), no_auto_checkpoint())
            .expect("create");
        fresh_users(&mut bdms);
        for s in &stmts[..len] {
            let _ = bdms.insert_statement(s).expect("insert");
        }
        if len == n {
            wal_bytes_full = bdms.wal_stats().expect("durable").wal_bytes;
        }
        drop(bdms);
        let time = best(&mut || {
            Bdms::open_with_options(&dir, no_auto_checkpoint())
                .expect("open")
                .stats()
                .total_tuples
        });
        recovery.push((len + 10, time)); // +10 user records
        if len == n {
            full_dir = Some(dir);
        } else {
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }
    }

    // Checkpoint cost on the full store, then snapshot-only recovery.
    let full_dir = full_dir.expect("n >= 1");
    let mut bdms = Bdms::open_with_options(&full_dir, no_auto_checkpoint()).expect("open");
    let start = Instant::now();
    bdms.checkpoint().expect("checkpoint");
    let checkpoint = start.elapsed();
    drop(bdms);
    let snapshot_recovery = best(&mut || {
        Bdms::open_with_options(&full_dir, no_auto_checkpoint())
            .expect("open")
            .stats()
            .total_tuples
    });
    std::fs::remove_dir_all(&full_dir).expect("cleanup");

    Ok(PersistReport {
        n,
        in_memory_insert,
        durable_insert,
        recovery,
        snapshot_recovery,
        checkpoint,
        wal_bytes_full,
    })
}

/// Render the persistence report.
pub fn format_persist(r: &PersistReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Durability: WAL append overhead and recovery time ({} statements, 10 users)\n",
        r.n
    ));
    out.push_str(&format!(
        "  insert workload   in-memory {:>10.3}ms   durable {:>10.3}ms   overhead {:.2}x\n",
        r.in_memory_insert.as_secs_f64() * 1e3,
        r.durable_insert.as_secs_f64() * 1e3,
        r.append_overhead()
    ));
    out.push_str(&format!(
        "  live WAL after full run: {} bytes\n",
        r.wal_bytes_full
    ));
    out.push_str("  recovery (snapshot of empty store + WAL-tail replay):\n");
    for (records, time) in &r.recovery {
        out.push_str(&format!(
            "    {:>8} records {:>10.3}ms\n",
            records,
            time.as_secs_f64() * 1e3
        ));
    }
    out.push_str(&format!(
        "  checkpoint of full store: {:.3}ms; reopen from snapshot: {:.3}ms\n",
        r.checkpoint.as_secs_f64() * 1e3,
        r.snapshot_recovery.as_secs_f64() * 1e3
    ));
    out
}

// ---------------------------------------------------------------------------
// Observability overhead (BENCH_obs.json)
// ---------------------------------------------------------------------------

/// One measured workload of the observability experiment: the same plan
/// drained with obs disabled and with per-operator profiling on.
#[derive(Debug, Clone)]
pub struct ObsRow {
    pub name: &'static str,
    pub disabled: Duration,
    pub profiled: Duration,
    pub result_size: usize,
}

impl ObsRow {
    /// Profiled-over-disabled time ratio (1.0 = profiling is free).
    pub fn overhead(&self) -> f64 {
        self.profiled.as_secs_f64() / self.disabled.as_secs_f64().max(1e-12)
    }

    /// Disabled-path throughput in result rows per second.
    pub fn rows_per_sec(&self) -> f64 {
        self.result_size as f64 / self.disabled.as_secs_f64().max(1e-12)
    }
}

/// The observability experiment's output: per-workload medians plus the
/// engine metrics the run itself generated (a registry snapshot delta).
#[derive(Debug, Clone)]
pub struct ObsReport {
    pub rows: Vec<ObsRow>,
    pub metrics: Vec<(&'static str, u64)>,
}

/// The measured workloads: the executor-comparison plans plus a hash
/// join + distinct forced to spill under a ⅒-of-input budget.
pub fn obs_workloads(n: usize) -> Vec<(&'static str, beliefdb_storage::Plan, Option<usize>)> {
    let mut out: Vec<_> = exec_streaming_plans()
        .into_iter()
        .map(|(name, plan)| (name, plan, None))
        .collect();
    let spilling = beliefdb_storage::Plan::scan("F")
        .join(beliefdb_storage::Plan::scan("D"), vec![(1, 0)])
        .distinct();
    out.push(("spill_join", spilling, Some(spill_budget(n, 1, 10))));
    out
}

/// Run every obs workload (`reps` runs each, **median** — this report
/// feeds a machine-readable file, so a robust central value beats
/// best-of) with profiling off and on, asserting the profile agrees
/// with the materialized result before anything is recorded.
pub fn run_obs(n: usize, reps: usize) -> Result<ObsReport> {
    use beliefdb_storage::{metrics, Executor, SpillOptions};
    let db = exec_streaming_db(n)?;
    let before = metrics().snapshot();
    let mut rows = Vec::new();
    for (name, plan, budget) in obs_workloads(n) {
        let exec = match budget {
            Some(b) => Executor::with_spill(&db, SpillOptions::with_budget(b)),
            None => Executor::new(&db),
        };
        let drain_plain = || -> usize {
            let mut out = 0usize;
            for chunk in exec.open_chunks(&plan).expect("open") {
                out += chunk.expect("chunk").len();
            }
            out
        };
        let drain_profiled = || -> usize {
            let (stream, profile) = exec.open_chunks_profiled(&plan).expect("open profiled");
            let mut out = 0usize;
            for chunk in stream {
                out += chunk.expect("chunk").len();
            }
            assert_eq!(profile.rows_out() as usize, out, "{name}: profile drift");
            out
        };
        let size = drain_plain();
        assert_eq!(
            drain_profiled(),
            size,
            "{name}: profiling changed the result"
        );
        let median = |f: &dyn Fn() -> usize| -> Duration {
            let mut samples: Vec<Duration> = (0..reps.max(1))
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(f());
                    start.elapsed()
                })
                .collect();
            samples.sort_unstable();
            samples[samples.len() / 2]
        };
        let disabled = median(&drain_plain);
        let profiled = median(&drain_profiled);
        rows.push(ObsRow {
            name,
            disabled,
            profiled,
            result_size: size,
        });
    }
    let delta = metrics().snapshot().since(&before);
    Ok(ObsReport {
        rows,
        metrics: delta.counters().collect(),
    })
}

/// Render the observability report as a small table plus the metrics
/// the run generated.
pub fn format_obs(report: &ObsReport, n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Observability overhead (fact table of {n} rows; per-workload medians)\n"
    ));
    out.push_str(&format!(
        "{:<12}{:>12}{:>14}{:>10}{:>14}{:>10}\n",
        "workload", "off(ms)", "profiled(ms)", "overhead", "rows/s", "rows"
    ));
    for r in &report.rows {
        out.push_str(&format!(
            "{:<12}{:>12.3}{:>14.3}{:>9.2}x{:>14.0}{:>10}\n",
            r.name,
            r.disabled.as_secs_f64() * 1e3,
            r.profiled.as_secs_f64() * 1e3,
            r.overhead(),
            r.rows_per_sec(),
            r.result_size
        ));
    }
    out.push_str("run-generated metrics (registry delta, nonzero):\n");
    for (name, v) in &report.metrics {
        if *v > 0 {
            out.push_str(&format!("  {name:<24} {v:>12}\n"));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Columnar vs row-layout chunk executor
// ---------------------------------------------------------------------------

/// One measured plan of the columnar-layout comparison.
#[derive(Debug, Clone)]
pub struct ExecColumnarRow {
    pub name: &'static str,
    /// Default executor: zero-copy column windows + selection vectors.
    pub columnar: Duration,
    /// The prior chunk executor: same pipeline over cloned row batches.
    pub row_chunks: Duration,
    pub row_at_a_time: Duration,
    pub result_size: usize,
}

impl ExecColumnarRow {
    /// Row-chunk over columnar time ratio (>1 means columnar wins).
    pub fn speedup_vs_chunks(&self) -> f64 {
        self.row_chunks.as_secs_f64() / self.columnar.as_secs_f64().max(1e-12)
    }

    /// Row-at-a-time over columnar time ratio.
    pub fn speedup_vs_rows(&self) -> f64 {
        self.row_at_a_time.as_secs_f64() / self.columnar.as_secs_f64().max(1e-12)
    }
}

/// The columnar workload schema: the fanout-4 join tables plus a
/// dictionary-encoded string column on the fact table (20 distinct
/// tags, so the sorted dictionary and code vector carry the filter).
pub fn columnar_db(n: usize) -> Result<beliefdb_storage::Database> {
    use beliefdb_storage::{row, Database, TableSchema};
    let mut db = Database::new();
    let f = db.create_table(TableSchema::keyless("F", &["fid", "k", "v", "tag"]))?;
    for i in 0..n as i64 {
        f.insert(row![
            i,
            i % 50,
            i % 997,
            format!("tag{:02}", i % 20).as_str()
        ])?;
    }
    let d = db.create_table(TableSchema::keyless("D", &["k", "tag"]))?;
    for k in 0..50i64 {
        for copy in 0..4i64 {
            d.insert(row![k, k * 4 + copy])?;
        }
    }
    // The transpose is table-resident state; build it outside the
    // timed region like a warm production cache.
    db.table("F").expect("F").columnar();
    db.table("D").expect("D").columnar();
    Ok(db)
}

/// The measured plans: the selective int filter (unboxed `i64` kernel),
/// the wide fanout-4 join, and a dictionary-string filter.
pub fn columnar_plans() -> Vec<(&'static str, beliefdb_storage::Plan)> {
    use beliefdb_storage::{CmpOp, Expr, Plan};
    let filter = Plan::scan("F")
        .select(Expr::col_eq_lit(2, 3i64))
        .project_cols(&[0]);
    let wide_join = Plan::scan("F")
        .join(Plan::scan("D"), vec![(1, 0)])
        .select(Expr::cmp(CmpOp::Lt, Expr::Col(2), Expr::lit(5i64)))
        .project_cols(&[0, 5]);
    let dict_filter = Plan::scan("F")
        .select(Expr::and(vec![
            Expr::col_eq_lit(3, "tag07"),
            Expr::cmp(CmpOp::Lt, Expr::Col(2), Expr::lit(500i64)),
        ]))
        .project_cols(&[0, 3]);
    vec![
        ("filter", filter),
        ("wide_join", wide_join),
        ("dict_filter", dict_filter),
    ]
}

/// Time each workload under the columnar chunk executor, the row-layout
/// chunk executor, and the row-at-a-time executor (`reps` runs, best-of)
/// after asserting all three agree.
pub fn run_exec_columnar(n: usize, reps: usize) -> Result<Vec<ExecColumnarRow>> {
    use beliefdb_storage::{execute_rows, ChunkLayout, Executor};
    let db = columnar_db(n)?;
    let run = |layout: ChunkLayout, plan: &beliefdb_storage::Plan| -> Vec<beliefdb_storage::Row> {
        Executor::new(&db)
            .layout(layout)
            .open_chunks(plan)
            .expect("open")
            .collect_rows()
            .expect("query")
    };
    let best = |f: &dyn Fn() -> usize| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            std::hint::black_box(f());
            best = best.min(start.elapsed());
        }
        best
    };
    let mut out = Vec::new();
    for (name, plan) in columnar_plans() {
        let mut columnar = run(ChunkLayout::Columnar, &plan);
        let mut row_chunks = run(ChunkLayout::Rows, &plan);
        let mut row_wise = execute_rows(&db, &plan)?;
        columnar.sort();
        row_chunks.sort();
        row_wise.sort();
        assert_eq!(columnar, row_chunks, "layouts disagree on {name}");
        assert_eq!(columnar, row_wise, "row executor disagrees on {name}");
        let columnar_time = best(&|| run(ChunkLayout::Columnar, &plan).len());
        let chunk_time = best(&|| run(ChunkLayout::Rows, &plan).len());
        let row_time = best(&|| execute_rows(&db, &plan).expect("row run").len());
        out.push(ExecColumnarRow {
            name,
            columnar: columnar_time,
            row_chunks: chunk_time,
            row_at_a_time: row_time,
            result_size: columnar.len(),
        });
    }
    Ok(out)
}

/// Render the columnar comparison as a small report table.
pub fn format_exec_columnar(rows: &[ExecColumnarRow], n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Columnar vs row-layout chunk executor (fact table of {n} rows)\n"
    ));
    out.push_str(&format!(
        "{:<12}{:>14}{:>14}{:>14}{:>10}{:>10}\n",
        "plan", "columnar(ms)", "chunks(ms)", "row(ms)", "speedup", "rows"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:>14.3}{:>14.3}{:>14.3}{:>9.2}x{:>10}\n",
            r.name,
            r.columnar.as_secs_f64() * 1e3,
            r.row_chunks.as_secs_f64() * 1e3,
            r.row_at_a_time.as_secs_f64() * 1e3,
            r.speedup_vs_chunks(),
            r.result_size
        ));
    }
    out
}

/// Write the machine-readable columnar report: `{"n", "workloads":
/// {name: {median_ns_columnar, median_ns_row_chunks, median_ns_row,
/// speedup_vs_chunks, rows}}}`. Hand-rolled JSON like the obs report —
/// fixed identifier keys and finite numbers only.
pub fn write_bench_columnar_json(
    path: &std::path::Path,
    rows: &[ExecColumnarRow],
    n: usize,
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str("  \"workloads\": {\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"median_ns_columnar\": {}, \"median_ns_row_chunks\": {}, \
             \"median_ns_row\": {}, \"speedup_vs_chunks\": {:.4}, \"rows\": {}}}{}\n",
            r.name,
            r.columnar.as_nanos(),
            r.row_chunks.as_nanos(),
            r.row_at_a_time.as_nanos(),
            r.speedup_vs_chunks(),
            r.result_size,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)
}

/// One measured query of the magic-sets comparison.
#[derive(Debug, Clone)]
pub struct OptMagicRow {
    pub name: &'static str,
    /// Best-of time with the demand-driven rewrite on (the default path).
    pub magic_on: Duration,
    /// Best-of time evaluating the raw Algorithm 1 rule stack.
    pub magic_off: Duration,
    pub result_size: usize,
}

impl OptMagicRow {
    /// Unrewritten over rewritten time ratio (>1 means magic wins).
    pub fn speedup(&self) -> f64 {
        self.magic_off.as_secs_f64() / self.magic_on.as_secs_f64().max(1e-12)
    }
}

/// The three query shapes the magic-sets rewrite is judged on, over the
/// Table 2 generator schema (`S(sid, uid, species, date, location)`).
pub fn opt_magic_queries(bdms: &Bdms) -> Result<Vec<(&'static str, Bcq)>> {
    use beliefdb_storage::CmpOp;
    let s = bdms.schema().relation_id("S")?;
    let schema = bdms.schema();
    let shared = vec![qv("k"), qv("z"), qv("u"), qv("v"), qv("w")];

    // bound_probe: who disputes what user 1 believes about sighting
    // 's0'? The key arrives as a comparison predicate, so the raw rule
    // stack materializes *every* user's beliefs about *every* sighting
    // before the final rule filters; the rewrite pins `k = 's0'` into
    // the magic seeds and both temps derive only the probed key.
    let bound = Bcq::builder(vec![qv("x")])
        .positive(vec![pu(UserId(1))], s, shared.clone())
        .negative(vec![pv("x")], s, shared.clone())
        .pred(qv("k"), CmpOp::Eq, qc("s0"))
        .build(schema)?;

    // sip_join: q2's conflict shape — no constants, but the positive
    // subgoal's bindings flow sideways into the negated temp, which
    // otherwise enumerates user 2's full belief world.
    let sip = Bcq::builder(vec![qv("k"), qv("z")])
        .positive(vec![pu(UserId(2)), pu(UserId(1))], s, shared.clone())
        .negative(vec![pu(UserId(2))], s, shared)
        .build(schema)?;

    // unbound_scan: everything free — the rewrite must be a no-op and
    // the toggle must cost nothing (within noise).
    let unbound = Bcq::builder(vec![qv("k"), qv("z")])
        .positive(
            vec![pu(UserId(1))],
            s,
            vec![qv("k"), qany(), qv("z"), qany(), qany()],
        )
        .build(schema)?;

    Ok(vec![
        ("bound_probe", bound),
        ("sip_join", sip),
        ("unbound_scan", unbound),
    ])
}

/// Time each magic-sets workload with the rewrite on and off (`reps`
/// runs, best-of) after asserting both paths agree. Each path warms its
/// own plan-cache entry first, so the timings measure evaluation, not
/// optimization.
pub fn run_opt_magic(n: usize, reps: usize) -> Result<Vec<OptMagicRow>> {
    let (mut bdms, _) = generate_bdms(&table2_config(n, 42))?;
    let queries = opt_magic_queries(&bdms)?;
    let mut out = Vec::new();
    for (name, q) in queries {
        bdms.set_magic(true);
        let on_rows = bdms.query(&q)?;
        bdms.set_magic(false);
        let off_rows = bdms.query(&q)?;
        assert_eq!(on_rows, off_rows, "magic rewrite changed answers on {name}");
        let mut best = [Duration::MAX; 2];
        for (slot, magic) in [(0usize, true), (1usize, false)] {
            bdms.set_magic(magic);
            for _ in 0..reps.max(1) {
                let start = Instant::now();
                std::hint::black_box(bdms.query(&q)?.len());
                best[slot] = best[slot].min(start.elapsed());
            }
        }
        bdms.set_magic(true);
        out.push(OptMagicRow {
            name,
            magic_on: best[0],
            magic_off: best[1],
            result_size: on_rows.len(),
        });
    }
    Ok(out)
}

/// Render the magic-sets comparison as a small report table.
pub fn format_opt_magic(rows: &[OptMagicRow], n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Demand-driven rewrite vs raw rule stack ({n} annotations)\n"
    ));
    out.push_str(&format!(
        "{:<14}{:>12}{:>14}{:>10}{:>10}\n",
        "query", "magic(ms)", "nomagic(ms)", "speedup", "rows"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14}{:>12.3}{:>14.3}{:>9.2}x{:>10}\n",
            r.name,
            r.magic_on.as_secs_f64() * 1e3,
            r.magic_off.as_secs_f64() * 1e3,
            r.speedup(),
            r.result_size
        ));
    }
    out
}

/// Write the machine-readable magic-sets report: `{"n", "workloads":
/// {name: {median_ns_magic, median_ns_nomagic, speedup, rows}}}`.
/// Hand-rolled JSON like the columnar report — known keys, finite
/// numbers, nothing to escape.
pub fn write_bench_magic_json(
    path: &std::path::Path,
    rows: &[OptMagicRow],
    n: usize,
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str("  \"workloads\": {\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"median_ns_magic\": {}, \"median_ns_nomagic\": {}, \
             \"speedup\": {:.4}, \"rows\": {}}}{}\n",
            r.name,
            r.magic_on.as_nanos(),
            r.magic_off.as_nanos(),
            r.speedup(),
            r.result_size,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)
}

/// Write the machine-readable report: `{"n", "workloads": {name:
/// {median_ns_*, overhead, rows_per_s, rows}}, "metrics": {...}}`.
/// Hand-rolled JSON — every key is a known identifier and every value a
/// finite number, so nothing needs escaping (and the offline build
/// keeps its zero-dependency rule).
pub fn write_bench_obs_json(
    path: &std::path::Path,
    report: &ObsReport,
    n: usize,
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str("  \"workloads\": {\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"median_ns_disabled\": {}, \"median_ns_profiled\": {}, \
             \"overhead\": {:.4}, \"rows_per_s\": {:.1}, \"rows\": {}}}{}\n",
            r.name,
            r.disabled.as_nanos(),
            r.profiled.as_nanos(),
            r.overhead(),
            r.rows_per_sec(),
            r.result_size,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"metrics\": {\n");
    for (i, (name, v)) in report.metrics.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {v}{}\n",
            if i + 1 < report.metrics.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)
}

// ---------------------------------------------------------------------------
// System catalog (sys.*) scans
// ---------------------------------------------------------------------------

/// One measured `sys.*` catalog scan: a full BeliefSQL round trip
/// (parse → plan → optimize → chunked executor) through a live session.
#[derive(Debug, Clone)]
pub struct SysTableRow {
    pub name: &'static str,
    pub sql: &'static str,
    pub median: Duration,
    pub rows: usize,
}

/// The system-catalog experiment's output: per-scan medians plus the
/// fingerprint population resident when measured.
#[derive(Debug, Clone)]
pub struct SysTablesReport {
    pub rows: Vec<SysTableRow>,
    pub tracked_statements: usize,
}

/// The measured catalog scans, the acceptance query first.
pub fn obs_systables_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "statements_top5",
            "select * from sys.statements order by total_time_ns desc limit 5",
        ),
        ("statements_full", "select * from sys.statements"),
        ("metrics_scan", "select * from sys.metrics"),
        (
            "tables_scan",
            "select name, rows, seq_scans from sys.tables order by rows desc",
        ),
    ]
}

/// A session whose statement store carries a realistic fingerprint
/// population: `n.min(2000)` seed inserts (inserts run the full
/// BeliefSQL path, so the count is capped to keep the harness
/// interactive at large `--n`) plus 64 distinct query shapes.
pub fn obs_systables_session(n: usize) -> beliefdb_sql::Session {
    let mut session = beliefdb_sql::Session::new(
        beliefdb_core::ExternalSchema::new().with_relation("Facts", &["k", "v"]),
    )
    .expect("session");
    for i in 0..n.min(2_000) {
        session
            .execute(&format!("insert into Facts values ('k{i}','v{}')", i % 7))
            .expect("seed insert");
    }
    for i in 0..64 {
        let sql = format!("select s{i}.k from Facts as s{i} where s{i}.v = 'v3'");
        session.query(&sql).expect("seed statement");
        if i % 3 == 0 {
            session.query(&sql).expect("seed statement");
        }
    }
    session
}

/// Run every catalog scan (`reps` runs each, median) through a seeded
/// session. Scan statements are themselves tracked while they run —
/// that is the production configuration, so it is what gets measured.
pub fn run_obs_systables(n: usize, reps: usize) -> Result<SysTablesReport> {
    let session = obs_systables_session(n);
    let tracked = beliefdb_storage::obs::statements_snapshot().len();
    let mut rows = Vec::new();
    for (name, sql) in obs_systables_queries() {
        let run = || session.query(sql).expect("sys scan").rows().len();
        let size = run();
        assert!(size > 0, "{name}: empty catalog scan");
        let mut samples: Vec<Duration> = (0..reps.max(1))
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(run());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        rows.push(SysTableRow {
            name,
            sql,
            median: samples[samples.len() / 2],
            rows: size,
        });
    }
    Ok(SysTablesReport {
        rows,
        tracked_statements: tracked,
    })
}

/// Render the system-catalog report as a small table.
pub fn format_obs_systables(report: &SysTablesReport, n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "System-catalog scans (fact table of {} rows, {} tracked fingerprint(s); \
         full session round trips; medians)\n",
        n.min(2_000),
        report.tracked_statements
    ));
    out.push_str(&format!(
        "{:<18}{:>12}{:>8}  {}\n",
        "scan", "median(us)", "rows", "statement"
    ));
    for r in &report.rows {
        out.push_str(&format!(
            "{:<18}{:>12.1}{:>8}  {}\n",
            r.name,
            r.median.as_secs_f64() * 1e6,
            r.rows,
            r.sql
        ));
    }
    out
}

/// Write the machine-readable report: `{"n", "tracked_statements",
/// "workloads": {name: {"median_ns", "rows"}}}`. Hand-rolled JSON like
/// the other report writers — every key is a known identifier.
pub fn write_bench_systables_json(
    path: &std::path::Path,
    report: &SysTablesReport,
    n: usize,
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!(
        "  \"tracked_statements\": {},\n",
        report.tracked_statements
    ));
    out.push_str("  \"workloads\": {\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"median_ns\": {}, \"rows\": {}}}{}\n",
            r.name,
            r.median.as_nanos(),
            r.rows,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)
}

/// Parse `--flag value` style arguments with defaults (tiny helper shared
/// by the experiment binaries; avoids a CLI dependency).
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// See [`arg_usize`].
pub fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Default generator config used by the storage/insert ablations.
pub fn ablation_config(n: usize, users: usize, seed: u64) -> GeneratorConfig {
    GeneratorConfig::new(users, n).with_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_report_covers_every_workload_and_serializes() {
        let report = run_obs(300, 2).unwrap();
        let names: Vec<_> = report.rows.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["filter", "wide_join", "first_100", "spill_join"]
        );
        assert!(report.rows.iter().all(|r| r.result_size > 0));
        let path = persist_scratch_dir("obs-json").with_extension("json");
        write_bench_obs_json(&path, &report, 300).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for name in names {
            assert!(text.contains(&format!("\"{name}\"")), "{text}");
        }
        assert!(text.contains("\"exec.rows_scanned\""), "{text}");
        assert!(format_obs(&report, 300).contains("spill_join"));
    }

    #[test]
    fn systables_report_covers_every_scan_and_serializes() {
        let report = run_obs_systables(200, 2).unwrap();
        let names: Vec<_> = report.rows.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "statements_top5",
                "statements_full",
                "metrics_scan",
                "tables_scan"
            ]
        );
        assert!(report.tracked_statements >= 64);
        let top5 = &report.rows[0];
        assert_eq!(top5.rows, 5, "LIMIT 5 must cap the acceptance query");
        let path = persist_scratch_dir("systables-json").with_extension("json");
        write_bench_systables_json(&path, &report, 200).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for name in names {
            assert!(text.contains(&format!("\"{name}\"")), "{text}");
        }
        assert!(text.contains("\"tracked_statements\""), "{text}");
        assert!(format_obs_systables(&report, 200).contains("statements_top5"));
    }

    #[test]
    fn columnar_report_covers_every_workload_and_serializes() {
        let rows = run_exec_columnar(500, 2).unwrap();
        let names: Vec<_> = rows.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["filter", "wide_join", "dict_filter"]);
        assert!(rows.iter().all(|r| r.result_size > 0));
        let path = persist_scratch_dir("columnar-json").with_extension("json");
        write_bench_columnar_json(&path, &rows, 500).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for name in names {
            assert!(text.contains(&format!("\"{name}\"")), "{text}");
        }
        assert!(text.contains("\"median_ns_columnar\""), "{text}");
        assert!(format_exec_columnar(&rows, 500).contains("dict_filter"));
    }

    #[test]
    fn opt_magic_report_covers_every_workload_and_serializes() {
        let rows = run_opt_magic(400, 2).unwrap();
        let names: Vec<_> = rows.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["bound_probe", "sip_join", "unbound_scan"]);
        let path = persist_scratch_dir("magic-json").with_extension("json");
        write_bench_magic_json(&path, &rows, 400).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for name in names {
            assert!(text.contains(&format!("\"{name}\"")), "{text}");
        }
        assert!(text.contains("\"median_ns_magic\""), "{text}");
        assert!(format_opt_magic(&rows, 400).contains("bound_probe"));
    }

    #[test]
    fn table1_runs_at_small_scale() {
        let rows = run_table1(60, &[1, 2]).unwrap();
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert_eq!(r.samples.len(), 2);
            assert!(r.overhead >= 1.0, "|R*| at least stores the annotations");
        }
        let rendered = format_table1(&rows, 60);
        assert!(rendered.contains("m=100 Zipf"));
        assert!(rendered.contains("[0.8, 0.19, 0.01]"));
    }

    #[test]
    fn table1_zipf_cheaper_than_uniform_at_m100() {
        // The paper's headline shape: with many users and uniform
        // participation the overhead explodes; Zipf concentration tames it.
        let rows = run_table1(300, &[7]).unwrap();
        let get = |zipf: bool| {
            rows.iter()
                .find(|r| r.depth_label == "[1/3, 1/3, 1/3]" && r.users == 100 && r.zipf == zipf)
                .unwrap()
                .overhead
        };
        assert!(
            get(true) < get(false),
            "Zipf {} should be below uniform {}",
            get(true),
            get(false)
        );
    }

    #[test]
    fn fig6_runs_and_formats() {
        let series = run_fig6(&[20, 80], 3).unwrap();
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
        }
        let rendered = format_fig6(&series);
        assert!(rendered.contains("Figure 6"));
        assert!(rendered.contains("|R*|/n"));
    }

    #[test]
    fn table2_queries_cover_the_seven_shapes() {
        let cfg = beliefdb_gen::scenarios::table2_config(200, 5);
        let (bdms, _) = generate_bdms(&cfg).unwrap();
        let queries = table2_queries(&bdms).unwrap();
        assert_eq!(queries.len(), 7);
        assert_eq!(queries[0].0, "q1,0");
        assert_eq!(queries[4].0, "q1,4");
        assert_eq!(queries[5].0, "q2");
        assert_eq!(queries[6].0, "q3");
        // every query translates and runs
        for (name, q) in &queries {
            let rows = bdms.query(q);
            assert!(rows.is_ok(), "query {name} failed: {rows:?}");
        }
    }

    #[test]
    fn table2_harness_reports_rows() {
        let (bdms, rows) = run_table2(200, 5, 2).unwrap();
        assert_eq!(rows.len(), 7);
        let rendered = format_table2(&rows, 200, bdms.stats().total_tuples);
        assert!(rendered.contains("q1,0"));
        assert!(rendered.contains("E(ms)"));
        // content queries should return something on a populated database
        assert!(rows[1].result_size > 0, "q1,1 empty: {rows:?}");
    }

    #[test]
    fn exec_vectorized_harness_runs_and_formats() {
        let (rows, sweep) = run_exec_vectorized(2_000, 2).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "filter");
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].batch, 128);
        let rendered = format_exec_vectorized(&rows, &sweep, 2_000);
        assert!(rendered.contains("chunked(ms)"));
        assert!(rendered.contains("batch=1024"));
    }

    #[test]
    fn spill_harness_runs_and_meets_the_slowdown_bar() {
        let n = if cfg!(debug_assertions) {
            6_000
        } else {
            40_000
        };
        let rows = run_spill(n, 3).unwrap();
        assert_eq!(rows.len(), 12, "4 plans x 3 budgets");
        for r in &rows {
            assert!(r.result_size > 0, "{r:?}");
            // Timing bars only mean something on optimized builds; the
            // debug run still exercises every path and the differential
            // assertion inside run_spill.
            if cfg!(debug_assertions) {
                continue;
            }
            match r.budget_label {
                // Unlimited budget takes the identical in-memory code
                // path: any measured difference is noise (generous bar
                // so CI machines don't flake).
                "inf" => assert!(r.slowdown() < 1.5, "inf-budget regressed: {r:?}"),
                // The acceptance bar: spilling at 1/10 of the input
                // costs at most 3x the in-memory run.
                "1/10" => assert!(
                    r.slowdown() <= 3.0,
                    "{} at 1/10 budget: {:.2}x exceeds the 3x bar",
                    r.plan,
                    r.slowdown()
                ),
                _ => {}
            }
        }
        let rendered = format_spill(&rows, n);
        assert!(rendered.contains("slowdown"));
        assert!(rendered.contains("1/10"));
    }

    #[test]
    fn persist_harness_runs_and_meets_the_overhead_bar() {
        let report = run_persist(400, 3).unwrap();
        assert_eq!(report.recovery.len(), 3);
        assert!(report.wal_bytes_full > 0);
        // Recovery work grows with WAL length (compare endpoints; the
        // times themselves are asserted only for sanity, not ordered,
        // to stay robust on noisy CI machines).
        assert!(report.recovery[0].0 < report.recovery[2].0);
        // Acceptance bar: WAL append keeps the insert workload under
        // 2x the in-memory path (best-of-3 damps scheduler noise).
        assert!(
            report.append_overhead() < 2.0,
            "durable insert overhead {}x exceeds the 2x bar",
            report.append_overhead()
        );
        let rendered = format_persist(&report);
        assert!(rendered.contains("overhead"));
        assert!(rendered.contains("records"));
        assert!(rendered.contains("checkpoint"));
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = vec!["--n".into(), "500".into(), "--seed".into(), "9".into()];
        assert_eq!(arg_usize(&args, "--n", 10), 500);
        assert_eq!(arg_usize(&args, "--missing", 10), 10);
        assert_eq!(arg_u64(&args, "--seed", 1), 9);
        let bad: Vec<String> = vec!["--n".into(), "xyz".into()];
        assert_eq!(arg_usize(&bad, "--n", 3), 3);
    }
}
