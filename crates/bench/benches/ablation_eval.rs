//! Ablation A: translated (Algorithm 1 over the relational encoding) vs.
//! naive (Def. 14 over the logical closure) query evaluation.
//!
//! The naive evaluator is exponential in path variables and rebuilds
//! entailed worlds per query; the translation amortizes everything into
//! relational joins. This ablation quantifies the gap the paper's
//! architecture buys on small databases where both strategies are feasible.

use beliefdb_bench::table2_queries;
use beliefdb_gen::generate_bdms;
use beliefdb_gen::scenarios::table2_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_eval_strategies(c: &mut Criterion) {
    // Small database: the naive evaluator must enumerate m^p path
    // assignments per query.
    let cfg = table2_config(300, 42);
    let (bdms, _) = generate_bdms(&cfg).expect("generation failed");
    let queries = table2_queries(&bdms).expect("queries");

    let mut group = c.benchmark_group("eval_strategy");
    group.sample_size(10);
    for (name, q) in &queries {
        // q3 has a user variable: the naive evaluator's worst case.
        group.bench_with_input(BenchmarkId::new("translated", name), q, |b, q| {
            b.iter(|| std::hint::black_box(bdms.query(q).expect("query").len()))
        });
        group.bench_with_input(BenchmarkId::new("naive", name), q, |b, q| {
            b.iter(|| std::hint::black_box(bdms.query_naive(q).expect("query").len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval_strategies);
criterion_main!(benches);
