//! Microbenchmarks of the storage substrate: the primitive operations the
//! belief-database encoding leans on (indexed V-slice lookups, hash joins
//! of the E*-walk, anti-joins of the consistency checks).

use beliefdb_storage::{execute, row, Database, Expr, Plan, TableSchema, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn build_db(rows: usize) -> Database {
    let mut db = Database::new();
    let v = db
        .create_table(TableSchema::keyless("V", &["wid", "tid", "key", "s", "e"]))
        .unwrap();
    v.create_index("by_wid_key", &["wid", "key"]).unwrap();
    for i in 0..rows {
        let wid = (i % 97) as i64;
        let key = format!("k{}", i % 503);
        v.insert(row![wid, i as i64, key.as_str(), "+", "n"])
            .unwrap();
    }
    let e = db
        .create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
        .unwrap();
    e.create_index("by_src_user", &["w1", "u"]).unwrap();
    for w in 0..97i64 {
        for u in 1..=10i64 {
            e.insert(row![w, u, (w + u) % 97]).unwrap();
        }
    }
    db
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_ops");
    for n in [10_000usize, 40_000] {
        let db = build_db(n);
        group.throughput(Throughput::Elements(n as u64));

        // Index-accelerated selection (the V-slice read of Algorithm 4).
        group.bench_with_input(BenchmarkId::new("indexed_slice", n), &db, |b, db| {
            let plan = Plan::scan("V").select(Expr::and(vec![
                Expr::col_eq_lit(0, 13i64),
                Expr::col_eq_lit(2, "k42"),
            ]));
            b.iter(|| std::hint::black_box(execute(db, &plan).unwrap().len()))
        });

        // Hash join V ⋈ E (the E*-walk + V read of Algorithm 1).
        group.bench_with_input(BenchmarkId::new("hash_join", n), &db, |b, db| {
            let plan = Plan::scan("E").join(Plan::scan("V"), vec![(2, 0)]);
            b.iter(|| std::hint::black_box(execute(db, &plan).unwrap().len()))
        });

        // Anti-join (the NOT EXISTS of the consistency checks).
        group.bench_with_input(BenchmarkId::new("anti_join", n), &db, |b, db| {
            let probe = Plan::scan("V").select(Expr::col_eq_lit(3, Value::str("+")));
            let plan = Plan::scan("E").anti_join(probe, vec![(0, 0)]);
            b.iter(|| std::hint::black_box(execute(db, &plan).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
