//! Optimizer ablation over the paper's experiment workloads: the Table 2
//! query set (`q1,0..q1,4`, `q2`, `q3`) plus join-order stress queries,
//! evaluated with the cost-based optimizer on (`Bdms::query`) versus off
//! (`Bdms::query_unoptimized`). Both paths run the same Algorithm 1
//! translation; only plan rewriting differs.
//!
//! Two workloads: the Table 2 configuration (depth ≤ 4 annotations), and
//! a Table 1-style clustered workload (m = 10 users, uniform
//! participation, small key space) where the key-sharing stress queries
//! produce large intermediate joins under naive subgoal order.

use beliefdb_bench::{optimizer_stress_queries, table2_queries};
use beliefdb_core::bcq::Bcq;
use beliefdb_core::Bdms;
use beliefdb_gen::scenarios::table2_config;
use beliefdb_gen::{generate_bdms, GeneratorConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_queries(c: &mut Criterion, group_name: &str, bdms: &Bdms, queries: &[(String, Bcq)]) {
    // Sanity: the two paths must agree before we time them.
    for (name, q) in queries {
        let a = bdms.query(q).expect("optimized query failed");
        let b = bdms.query_unoptimized(q).expect("unoptimized query failed");
        assert_eq!(a, b, "optimizer changed the answer of {name}");
    }
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for (name, q) in queries {
        group.bench_with_input(BenchmarkId::new("on", name), q, |b, q| {
            b.iter(|| std::hint::black_box(bdms.query(q).expect("query").len()))
        });
        group.bench_with_input(BenchmarkId::new("off", name), q, |b, q| {
            b.iter(|| std::hint::black_box(bdms.query_unoptimized(q).expect("query").len()))
        });
    }
    group.finish();
}

fn bench_opt_onoff(c: &mut Criterion) {
    // Table 2 workload, paper query set.
    let (bdms, _) = generate_bdms(&table2_config(2_000, 42)).expect("generation failed");
    let queries = table2_queries(&bdms).expect("query construction failed");
    bench_queries(c, "optimizer_onoff_table2", &bdms, &queries);

    // Table 1-style clustered workload, join-order stress queries.
    let cfg = GeneratorConfig::new(10, 1_500)
        .with_key_space(150)
        .with_seed(7);
    let (bdms, _) = generate_bdms(&cfg).expect("generation failed");
    let queries = optimizer_stress_queries(&bdms).expect("query construction failed");
    bench_queries(c, "optimizer_onoff_table1_stress", &bdms, &queries);
}

criterion_group!(benches, bench_opt_onoff);
criterion_main!(benches);
