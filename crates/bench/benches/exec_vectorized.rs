//! Chunked (vectorized) vs row-at-a-time streaming execution.
//!
//! Three workload plans over the fanout-4 join schema: a selective
//! filter-heavy scan (where the columnar equality kernel and the
//! filter-before-clone scan fusion pay off), the wide join (chunked
//! probe), and the first-100-rows query (`Limit` must keep
//! short-circuiting — the chunked executor caps its subtree's batch at
//! the limit, so latency must not regress). A batch-size sweep
//! (128/1024/4096) over the selective filter shows where dispatch
//! amortization saturates.
//!
//! Both executors are asserted to agree before anything is timed.

use beliefdb_bench::{exec_streaming_db, exec_streaming_plans};
use beliefdb_storage::{execute, execute_rows, Executor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_exec_vectorized(c: &mut Criterion) {
    let db = exec_streaming_db(50_000).expect("workload build failed");
    let plans = exec_streaming_plans();
    for (name, plan) in &plans {
        let mut a = execute(&db, plan).expect("chunked failed");
        let mut b = execute_rows(&db, plan).expect("row-at-a-time failed");
        a.sort();
        b.sort();
        assert_eq!(a, b, "executors disagree on {name}");
    }
    let mut group = c.benchmark_group("exec_vectorized");
    group.sample_size(10);
    for (name, plan) in &plans {
        group.bench_with_input(BenchmarkId::new("chunked", name), plan, |b, plan| {
            b.iter(|| std::hint::black_box(execute(&db, plan).expect("query").len()))
        });
        group.bench_with_input(BenchmarkId::new("row", name), plan, |b, plan| {
            b.iter(|| std::hint::black_box(execute_rows(&db, plan).expect("query").len()))
        });
    }
    let (_, filter) = plans.into_iter().next().expect("filter plan");
    for batch in [128usize, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("batch_sweep", batch),
            &filter,
            |b, plan| {
                b.iter(|| {
                    std::hint::black_box(
                        Executor::with_batch_size(&db, batch)
                            .open_chunks(plan)
                            .expect("open")
                            .collect_rows()
                            .expect("query")
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exec_vectorized);
criterion_main!(benches);
