//! `sys.*` catalog scans: every introspection query is a full BeliefSQL
//! round trip (parse → plan → optimize → chunked executor) over a
//! scan-time snapshot of the observability state, so these benches
//! price the whole path — including the statement-tracking record the
//! scan itself generates, which is the production configuration.

use beliefdb_bench::{obs_systables_queries, obs_systables_session};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_obs_systables(c: &mut Criterion) {
    let session = obs_systables_session(10_000);
    // Sanity: the acceptance query caps at 5 rows before timing starts.
    let (_, top5) = obs_systables_queries()[0];
    assert_eq!(
        session.query(top5).expect("acceptance query").rows().len(),
        5
    );

    let mut group = c.benchmark_group("obs_systables");
    group.sample_size(20);
    for (name, sql) in obs_systables_queries() {
        group.bench_with_input(BenchmarkId::new("scan", name), &sql, |b, sql| {
            b.iter(|| std::hint::black_box(session.query(sql).expect("sys scan").rows().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_systables);
criterion_main!(benches);
