//! Criterion bench for Table 2: latency of the seven example queries over
//! a generated belief database (reduced `n` for criterion; the `table2`
//! binary runs the full 10,000-annotation configuration).

use beliefdb_bench::table2_queries;
use beliefdb_gen::generate_bdms;
use beliefdb_gen::scenarios::table2_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_table2(c: &mut Criterion) {
    let cfg = table2_config(2_000, 42);
    let (bdms, _) = generate_bdms(&cfg).expect("generation failed");
    let queries = table2_queries(&bdms).expect("query construction failed");

    let mut group = c.benchmark_group("table2_queries");
    group.sample_size(20);
    for (name, q) in &queries {
        group.bench_with_input(BenchmarkId::from_parameter(name), q, |b, q| {
            b.iter(|| std::hint::black_box(bdms.query(q).expect("query failed").len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
