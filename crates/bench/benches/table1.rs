//! Criterion bench for the Table 1 pipeline: end-to-end database
//! generation + ingestion (the cost behind each Table 1 cell), at a reduced
//! `n` so a criterion run stays in seconds. Use the `table1` binary for the
//! full-scale paper numbers.

use beliefdb_gen::generate_bdms;
use beliefdb_gen::scenarios::table1_cells;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_ingest");
    group.sample_size(10);
    for cell in table1_cells(500, 42) {
        // One representative cell per (m, participation): skip the depth
        // variants to keep the bench matrix small.
        if cell.depth_label != "[1/3, 1/3, 1/3]" {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(&cell.label),
            &cell.config,
            |b, cfg| {
                b.iter(|| {
                    let (bdms, _) = generate_bdms(cfg).expect("generation failed");
                    std::hint::black_box(bdms.stats().total_tuples)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
