//! Ablation D: eager vs. lazy application of the default rule — the
//! trade-off the paper proposes to explore in Sect. 6.3.
//!
//! * **eager** (`Bdms`): inserts propagate to every dependent world
//!   (`|R*| = O(n·N)`), queries are pure relational joins;
//! * **lazy** (`LazyBdms`): inserts are O(1) and storage is O(n), queries
//!   pay the closure walk per touched world.

use beliefdb_bench::table2_queries;
use beliefdb_core::{Bdms, LazyBdms};
use beliefdb_gen::scenarios::table2_config;
use beliefdb_gen::{experiment_schema, CandidateStream};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_lazy_vs_eager(c: &mut Criterion) {
    let n = 500usize;
    let cfg = table2_config(n, 42);
    let mut stream = CandidateStream::new(&cfg);
    let stmts: Vec<_> = (0..n).map(|_| stream.next_candidate()).collect();

    // ---- ingest cost ------------------------------------------------------
    let mut group = c.benchmark_group("lazy_vs_eager_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("eager", n), |b| {
        b.iter(|| {
            let mut bdms = Bdms::new(experiment_schema()).unwrap();
            for i in 1..=cfg.users {
                bdms.add_user(format!("u{i}")).unwrap();
            }
            for s in &stmts {
                let _ = bdms.insert_statement(s).unwrap();
            }
            std::hint::black_box(bdms.stats().total_tuples)
        })
    });
    group.bench_function(BenchmarkId::new("lazy", n), |b| {
        b.iter(|| {
            let mut lazy = LazyBdms::new(experiment_schema());
            for i in 1..=cfg.users {
                lazy.add_user(format!("u{i}")).unwrap();
            }
            for s in &stmts {
                let _ = lazy.insert_statement(s).unwrap();
            }
            std::hint::black_box(lazy.stored_tuples())
        })
    });
    group.finish();

    // ---- query cost -------------------------------------------------------
    let mut eager = Bdms::new(experiment_schema()).unwrap();
    let mut lazy = LazyBdms::new(experiment_schema());
    for i in 1..=cfg.users {
        eager.add_user(format!("u{i}")).unwrap();
        lazy.add_user(format!("u{i}")).unwrap();
    }
    for s in &stmts {
        let _ = eager.insert_statement(s).unwrap();
        let _ = lazy.insert_statement(s).unwrap();
    }
    let queries = table2_queries(&eager).unwrap();
    let mut group = c.benchmark_group("lazy_vs_eager_query");
    group.sample_size(10);
    for (name, q) in &queries {
        group.bench_with_input(BenchmarkId::new("eager", name), q, |b, q| {
            b.iter(|| std::hint::black_box(eager.query(q).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("lazy", name), q, |b, q| {
            b.iter(|| std::hint::black_box(lazy.query(q).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lazy_vs_eager);
criterion_main!(benches);
