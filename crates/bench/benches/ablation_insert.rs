//! Ablation C: incremental maintenance (Algorithm 4's per-key propagation)
//! vs. rebuilding the whole store from scratch after every batch.
//!
//! The paper's eager materialization makes inserts the expensive operation
//! (Sect. 6.3); this ablation shows why the incremental algorithm is still
//! far better than the naive alternative of re-ingesting everything.

use beliefdb_core::Bdms;
use beliefdb_gen::{experiment_schema, CandidateStream, GeneratorConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Collect `n` candidate statements (unfiltered; rejected ones exercise the
/// consistency gate in both strategies equally).
fn candidates(cfg: &GeneratorConfig, n: usize) -> Vec<beliefdb_core::BeliefStatement> {
    let mut stream = CandidateStream::new(cfg);
    (0..n).map(|_| stream.next_candidate()).collect()
}

fn fresh(users: usize) -> Bdms {
    let mut bdms = Bdms::new(experiment_schema()).expect("schema");
    for i in 1..=users {
        bdms.add_user(format!("u{i}")).expect("user");
    }
    bdms
}

fn bench_insert_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_strategy");
    group.sample_size(10);
    for n in [200usize, 800] {
        let cfg = GeneratorConfig::new(10, n).with_seed(42);
        let stmts = candidates(&cfg, n);
        group.throughput(Throughput::Elements(n as u64));

        // Incremental: one store, statements applied by Algorithm 4.
        group.bench_with_input(BenchmarkId::new("incremental", n), &stmts, |b, stmts| {
            b.iter(|| {
                let mut bdms = fresh(10);
                for s in stmts {
                    let _ = bdms.insert_statement(s).expect("insert");
                }
                std::hint::black_box(bdms.stats().total_tuples)
            })
        });

        // Rebuild: after every batch of 50 statements, reconstruct the
        // store from the accumulated logical database (what a system
        // without incremental maintenance would do).
        group.bench_with_input(
            BenchmarkId::new("rebuild_per_batch", n),
            &stmts,
            |b, stmts| {
                b.iter(|| {
                    let mut logical = beliefdb_core::BeliefDatabase::new(experiment_schema());
                    for i in 1..=10 {
                        logical.add_user(format!("u{i}")).expect("user");
                    }
                    let mut last = 0;
                    for (i, s) in stmts.iter().enumerate() {
                        let _ = logical.insert(s.clone());
                        if i % 50 == 49 || i + 1 == stmts.len() {
                            let bdms = Bdms::from_belief_database(&logical).expect("rebuild");
                            last = bdms.stats().total_tuples;
                        }
                    }
                    std::hint::black_box(last)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insert_strategies);
criterion_main!(benches);
