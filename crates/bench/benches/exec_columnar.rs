//! Columnar chunk executor vs the row-layout chunk executor vs
//! row-at-a-time streaming.
//!
//! Three workloads over the fanout-4 join schema with a
//! dictionary-encoded string column: the selective int filter (where
//! the unboxed `i64` kernel and zero-copy scan windows pay off), the
//! wide join, and a dictionary-string filter (equality resolves to one
//! code compare per row). All three executors are asserted to agree
//! before anything is timed.

use beliefdb_bench::{columnar_db, columnar_plans};
use beliefdb_storage::{execute_rows, ChunkLayout, Executor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_exec_columnar(c: &mut Criterion) {
    let db = columnar_db(50_000).expect("workload build failed");
    let plans = columnar_plans();
    let run = |layout: ChunkLayout, plan: &beliefdb_storage::Plan| {
        Executor::new(&db)
            .layout(layout)
            .open_chunks(plan)
            .expect("open")
            .collect_rows()
            .expect("query")
    };
    for (name, plan) in &plans {
        let mut a = run(ChunkLayout::Columnar, plan);
        let mut b = run(ChunkLayout::Rows, plan);
        let mut r = execute_rows(&db, plan).expect("row-at-a-time failed");
        a.sort();
        b.sort();
        r.sort();
        assert_eq!(a, b, "layouts disagree on {name}");
        assert_eq!(a, r, "row executor disagrees on {name}");
    }
    let mut group = c.benchmark_group("exec_columnar");
    group.sample_size(10);
    for (name, plan) in &plans {
        group.bench_with_input(BenchmarkId::new("columnar", name), plan, |b, plan| {
            b.iter(|| std::hint::black_box(run(ChunkLayout::Columnar, plan).len()))
        });
        group.bench_with_input(BenchmarkId::new("row_chunks", name), plan, |b, plan| {
            b.iter(|| std::hint::black_box(run(ChunkLayout::Rows, plan).len()))
        });
        group.bench_with_input(BenchmarkId::new("row", name), plan, |b, plan| {
            b.iter(|| std::hint::black_box(execute_rows(&db, plan).expect("query").len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exec_columnar);
criterion_main!(benches);
