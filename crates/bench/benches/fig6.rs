//! Criterion bench for the Figure 6 pipeline: ingestion cost as `n` grows,
//! for the two depth distributions of the figure. The measured quantity is
//! the end-to-end build of the belief database (what the figure's x-axis
//! sweeps); the overhead values themselves are printed by the `fig6` binary.

use beliefdb_gen::generate_bdms;
use beliefdb_gen::scenarios::fig6_series;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_ingest");
    group.sample_size(10);
    let ns = [100usize, 400, 1600];
    for (label, configs) in fig6_series(&ns, 42) {
        for cfg in configs {
            let n = cfg.annotations;
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(label.replace(' ', ""), n),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        let (bdms, _) = generate_bdms(cfg).expect("generation failed");
                        std::hint::black_box(bdms.stats().total_tuples)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
