//! Durability bench: WAL append throughput vs the in-memory insert
//! path (the acceptance bar is < 2x on the `ablation_insert` workload),
//! recovery time as a function of WAL length, and checkpoint cost.
//!
//! Each timed iteration that needs a durable store builds it in a fresh
//! scratch directory and removes it afterwards, so runs are independent
//! and the filesystem state never accumulates.

use beliefdb_bench::{no_auto_checkpoint, persist_scratch_dir};
use beliefdb_core::Bdms;
use beliefdb_gen::{experiment_schema, CandidateStream, GeneratorConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn candidates(n: usize) -> Vec<beliefdb_core::BeliefStatement> {
    let cfg = GeneratorConfig::new(10, n).with_seed(42);
    let mut stream = CandidateStream::new(&cfg);
    (0..n).map(|_| stream.next_candidate()).collect()
}

fn with_users(mut bdms: Bdms) -> Bdms {
    for i in 1..=10 {
        bdms.add_user(format!("u{i}")).expect("user");
    }
    bdms
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_append");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let stmts = candidates(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("in_memory", n), &stmts, |b, stmts| {
            b.iter(|| {
                let mut bdms = with_users(Bdms::new(experiment_schema()).expect("schema"));
                for s in stmts {
                    let _ = bdms.insert_statement(s).expect("insert");
                }
                std::hint::black_box(bdms.stats().total_tuples)
            })
        });
        // Note: this iteration includes scratch-directory setup and
        // cleanup (criterion's iter can't exclude them); the isolated
        // append-overhead ratio is what `run_persist` reports.
        group.bench_with_input(BenchmarkId::new("durable_wal", n), &stmts, |b, stmts| {
            b.iter(|| {
                let dir = persist_scratch_dir("bench-append");
                let mut bdms = with_users(
                    Bdms::create_with_options(&dir, experiment_schema(), no_auto_checkpoint())
                        .expect("create"),
                );
                for s in stmts {
                    let _ = bdms.insert_statement(s).expect("insert");
                }
                let total = bdms.stats().total_tuples;
                drop(bdms);
                std::fs::remove_dir_all(&dir).expect("cleanup");
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_recovery");
    group.sample_size(10);
    // Recovery time vs WAL length (snapshot covers only the empty
    // store, so open replays the whole history through Algorithm 4).
    for n in [500usize, 1_000, 2_000] {
        let dir = persist_scratch_dir("bench-recover");
        let mut bdms = with_users(
            Bdms::create_with_options(&dir, experiment_schema(), no_auto_checkpoint())
                .expect("create"),
        );
        for s in &candidates(n) {
            let _ = bdms.insert_statement(s).expect("insert");
        }
        drop(bdms);
        group.bench_with_input(BenchmarkId::new("wal_replay", n), &dir, |b, dir| {
            b.iter(|| {
                std::hint::black_box(
                    Bdms::open_with_options(dir, no_auto_checkpoint())
                        .expect("open")
                        .stats()
                        .total_tuples,
                )
            })
        });
        // After a checkpoint the same history recovers from the
        // snapshot with an empty tail.
        Bdms::open_with_options(&dir, no_auto_checkpoint())
            .expect("open")
            .checkpoint()
            .expect("checkpoint");
        group.bench_with_input(BenchmarkId::new("snapshot", n), &dir, |b, dir| {
            b.iter(|| {
                std::hint::black_box(
                    Bdms::open_with_options(dir, no_auto_checkpoint())
                        .expect("open")
                        .stats()
                        .total_tuples,
                )
            })
        });
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_checkpoint");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let dir = persist_scratch_dir("bench-ckpt");
        let mut bdms = with_users(
            Bdms::create_with_options(&dir, experiment_schema(), no_auto_checkpoint())
                .expect("create"),
        );
        for s in &candidates(n) {
            let _ = bdms.insert_statement(s).expect("insert");
        }
        group.bench_with_input(BenchmarkId::new("checkpoint", n), &(), |b, _| {
            b.iter(|| std::hint::black_box(bdms.checkpoint().expect("checkpoint")))
        });
        drop(bdms);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_recovery, bench_checkpoint);
criterion_main!(benches);
