//! Streaming vs materializing execution on wide-intermediate join
//! workloads: the fact table `F` joined against a fanout-4 dimension
//! produces a `4·|F|`-row intermediate that the materializing executor
//! allocates in full, while the streaming executor pipelines the probe
//! side through the build table (and `Limit` short-circuits the join
//! entirely on the first-rows plan).
//!
//! Both executors are asserted to agree before anything is timed.

use beliefdb_bench::{exec_streaming_db, exec_streaming_plans};
use beliefdb_storage::{execute, execute_materialized};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_exec_streaming(c: &mut Criterion) {
    let db = exec_streaming_db(50_000).expect("workload build failed");
    let plans = exec_streaming_plans();
    for (name, plan) in &plans {
        let mut a = execute(&db, plan).expect("streaming failed");
        let mut b = execute_materialized(&db, plan).expect("materializing failed");
        a.sort();
        b.sort();
        assert_eq!(a, b, "executors disagree on {name}");
    }
    let mut group = c.benchmark_group("exec_streaming");
    group.sample_size(10);
    for (name, plan) in &plans {
        group.bench_with_input(BenchmarkId::new("streaming", name), plan, |b, plan| {
            b.iter(|| std::hint::black_box(execute(&db, plan).expect("query").len()))
        });
        group.bench_with_input(BenchmarkId::new("materialized", name), plan, |b, plan| {
            b.iter(|| std::hint::black_box(execute_materialized(&db, plan).expect("query").len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exec_streaming);
criterion_main!(benches);
