//! Spill-to-disk materialization points: memory-budgeted vs in-memory
//! execution.
//!
//! Four plans over the fanout-4 join schema — full sort, high-
//! cardinality aggregate, distinct, wide join — each run at budgets ∞
//! (identical code path to the unbudgeted executor; the <5% regression
//! guard), ½·input, and ⅒·input (the ≤3× slowdown acceptance bar,
//! asserted by the `spill_harness_runs_and_meets_the_slowdown_bar`
//! test; here the cells are just timed). The budgeted executor is
//! asserted to agree with the in-memory one before anything is timed.

use beliefdb_bench::{exec_streaming_db, spill_budget, spill_plans};
use beliefdb_storage::{execute, Executor, SpillOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_spill(c: &mut Criterion) {
    let n = 50_000usize;
    let db = exec_streaming_db(n).expect("workload build failed");
    let plans = spill_plans();
    for (name, plan) in &plans {
        let mut a = execute(&db, plan).expect("in-memory failed");
        let mut b = Executor::with_spill(&db, SpillOptions::with_budget(spill_budget(n, 1, 10)))
            .open_chunks(plan)
            .expect("open")
            .collect_rows()
            .expect("budgeted failed");
        a.sort();
        b.sort();
        assert_eq!(a, b, "budgeted executor disagrees on {name}");
    }
    let budgets: [(&str, Option<usize>); 3] = [
        ("inf", None),
        ("half", Some(spill_budget(n, 1, 2))),
        ("tenth", Some(spill_budget(n, 1, 10))),
    ];
    let mut group = c.benchmark_group("spill");
    group.sample_size(10);
    for (name, plan) in &plans {
        for (label, budget) in budgets {
            group.bench_with_input(BenchmarkId::new(*name, label), plan, |bencher, plan| {
                bencher.iter(|| {
                    let exec = match budget {
                        Some(b) => Executor::with_spill(&db, SpillOptions::with_budget(b)),
                        None => Executor::new(&db),
                    };
                    let mut out = 0usize;
                    for chunk in exec.open_chunks(plan).expect("open") {
                        out += chunk.expect("chunk").len();
                    }
                    std::hint::black_box(out)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_spill);
criterion_main!(benches);
