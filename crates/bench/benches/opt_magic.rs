//! Demand-driven rewrite (magic sets / SIP) vs the raw Algorithm 1
//! rule stack.
//!
//! Three query shapes over the Table 2 generator schema: a key-bound
//! belief probe (where the rewrite prunes both temp relations down to
//! the probed sighting), q2's sideways-information-passing conflict
//! join, and an unbound scan (where the rewrite is a no-op and the
//! toggle must cost nothing). Both paths are asserted to agree before
//! anything is timed.

use beliefdb_bench::opt_magic_queries;
use beliefdb_gen::{generate_bdms, scenarios::table2_config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_opt_magic(c: &mut Criterion) {
    let (mut bdms, _) = generate_bdms(&table2_config(50_000, 42)).expect("workload build failed");
    let queries = opt_magic_queries(&bdms).expect("query build failed");
    for (name, q) in &queries {
        bdms.set_magic(true);
        let on = bdms.query(q).expect("magic query failed");
        bdms.set_magic(false);
        let off = bdms.query(q).expect("raw query failed");
        assert_eq!(on, off, "magic rewrite changed answers on {name}");
    }
    let mut group = c.benchmark_group("opt_magic");
    group.sample_size(10);
    for (name, q) in &queries {
        bdms.set_magic(true);
        group.bench_with_input(BenchmarkId::new("magic", name), q, |b, q| {
            b.iter(|| std::hint::black_box(bdms.query(q).expect("query").len()))
        });
        bdms.set_magic(false);
        group.bench_with_input(BenchmarkId::new("nomagic", name), q, |b, q| {
            b.iter(|| std::hint::black_box(bdms.query(q).expect("query").len()))
        });
        bdms.set_magic(true);
    }
    group.finish();
}

criterion_group!(benches, bench_opt_magic);
criterion_main!(benches);
