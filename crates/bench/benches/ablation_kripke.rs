//! Ablation B: canonical Kripke construction cost (Thm. 17(2): `O(m^d n)`).
//!
//! Sweeps the number of users `m` and the annotation count `n` and measures
//! `CanonicalKripke::build` over the logical belief database.

use beliefdb_core::CanonicalKripke;
use beliefdb_gen::{generate_logical, DepthDist, GeneratorConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonical_build");
    group.sample_size(10);

    // Sweep n at fixed m.
    for n in [100usize, 400, 1600] {
        let cfg = GeneratorConfig::new(10, n).with_seed(42);
        let (db, _) = generate_logical(&cfg).expect("generation failed");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("by_n_m10", n), &db, |b, db| {
            b.iter(|| std::hint::black_box(CanonicalKripke::build(db).state_count()))
        });
    }

    // Sweep m at fixed n.
    for m in [5usize, 20, 80] {
        let cfg = GeneratorConfig::new(m, 500).with_seed(42);
        let (db, _) = generate_logical(&cfg).expect("generation failed");
        group.bench_with_input(BenchmarkId::new("by_m_n500", m), &db, |b, db| {
            b.iter(|| std::hint::black_box(CanonicalKripke::build(db).state_count()))
        });
    }

    // Depth matters: deeper annotations -> more states.
    for (label, depth) in [
        ("d<=1", DepthDist::new(&[0.5, 0.5])),
        ("d<=2", DepthDist::uniform_012()),
        ("d<=4", DepthDist::table2_mix()),
    ] {
        let cfg = GeneratorConfig::new(10, 500)
            .with_depth(depth)
            .with_seed(42);
        let (db, _) = generate_logical(&cfg).expect("generation failed");
        group.bench_with_input(BenchmarkId::new("by_depth_n500", label), &db, |b, db| {
            b.iter(|| std::hint::black_box(CanonicalKripke::build(db).state_count()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
