//! Abstract syntax of BeliefSQL (Fig. 1).

use beliefdb_storage::{CmpOp, Value};
use std::fmt;

/// A possibly-qualified column reference `alias.column` or `column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub column: String,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    Str(String),
    Int(i64),
}

impl Literal {
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Str(s) => Value::str(s),
            Literal::Int(i) => Value::Int(*i),
        }
    }
}

/// One user in a `BELIEF` prefix: a literal user name or a column reference
/// (`BELIEF U.uid ...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserRef {
    Name(String),
    Column(ColumnRef),
}

/// A `(BELIEF user)+ not?` prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeliefPrefix {
    pub users: Vec<UserRef>,
    pub negated: bool,
}

/// A from-item: optional belief prefix, table, optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    pub prefix: Option<BeliefPrefix>,
    pub table: String,
    pub alias: Option<String>,
}

impl FromItem {
    /// The name this item binds in the rest of the query.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A select-list entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    Wildcard,
    Column(ColumnRef),
}

/// One side of a condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    Column(ColumnRef),
    Literal(Literal),
}

/// A conjunctive condition `a op b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    pub left: Operand,
    pub op: CmpOp,
    pub right: Operand,
}

/// `SELECT ... FROM ... [WHERE ...] [ORDER BY ...] [LIMIT n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub conditions: Vec<Condition>,
    /// `ORDER BY` keys: the column plus `true` for `DESC`.
    pub order_by: Vec<(ColumnRef, bool)>,
    /// `LIMIT n` row cap.
    pub limit: Option<usize>,
}

/// `INSERT INTO [prefix] table VALUES (...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    pub prefix: Option<BeliefPrefix>,
    pub table: String,
    pub values: Vec<Literal>,
}

/// `DELETE FROM [prefix] table [WHERE ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    pub prefix: Option<BeliefPrefix>,
    pub table: String,
    pub alias: Option<String>,
    pub conditions: Vec<Condition>,
}

/// `UPDATE [prefix] table SET col = lit, ... [WHERE ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    pub prefix: Option<BeliefPrefix>,
    pub table: String,
    pub alias: Option<String>,
    pub assignments: Vec<(String, Literal)>,
    pub conditions: Vec<Condition>,
}

/// Any BeliefSQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    Insert(InsertStmt),
    Delete(DeleteStmt),
    Update(UpdateStmt),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_display() {
        let c = ColumnRef {
            qualifier: Some("S".into()),
            column: "sid".into(),
        };
        assert_eq!(c.to_string(), "S.sid");
        let c = ColumnRef {
            qualifier: None,
            column: "sid".into(),
        };
        assert_eq!(c.to_string(), "sid");
    }

    #[test]
    fn literal_to_value() {
        assert_eq!(Literal::Str("crow".into()).to_value(), Value::str("crow"));
        assert_eq!(Literal::Int(7).to_value(), Value::Int(7));
    }

    #[test]
    fn from_item_binding() {
        let f = FromItem {
            prefix: None,
            table: "Sightings".into(),
            alias: Some("S".into()),
        };
        assert_eq!(f.binding(), "S");
        let f = FromItem {
            prefix: None,
            table: "Sightings".into(),
            alias: None,
        };
        assert_eq!(f.binding(), "Sightings");
    }
}
