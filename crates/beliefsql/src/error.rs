//! Errors of the BeliefSQL front-end.

use beliefdb_core::BeliefError;
use std::fmt;

/// Errors raised while lexing, parsing, or lowering BeliefSQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error with byte offset.
    Lex { message: String, offset: usize },
    /// Parse error with the offending token description.
    Parse { message: String, near: String },
    /// The statement parsed but cannot be mapped onto the belief model.
    Lower(String),
    /// Error surfaced from the core engine.
    Core(BeliefError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { message, offset } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            SqlError::Parse { message, near } => write!(f, "parse error near `{near}`: {message}"),
            SqlError::Lower(msg) => write!(f, "cannot execute statement: {msg}"),
            SqlError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BeliefError> for SqlError {
    fn from(e: BeliefError) -> Self {
        SqlError::Core(e)
    }
}

pub type Result<T, E = SqlError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SqlError::Lex {
            message: "unterminated string".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("byte 12"));
        let e = SqlError::Parse {
            message: "expected FROM".into(),
            near: "WHERE".into(),
        };
        assert!(e.to_string().contains("`WHERE`"));
        let e = SqlError::Lower("no such alias".into());
        assert!(e.to_string().contains("no such alias"));
        let e = SqlError::from(BeliefError::NoSuchUser("Zoe".into()));
        assert!(e.to_string().contains("Zoe"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
