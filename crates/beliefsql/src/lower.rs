//! Lowering BeliefSQL statements onto the belief-database model.
//!
//! `SELECT` becomes a [`Bcq`]: every from-item contributes a modal subgoal
//! (or a user-catalog atom for `Users`); equality conditions unify columns
//! into shared query variables, other comparisons become arithmetic
//! predicates. `BELIEF U.uid` prefixes turn into path variables shared with
//! the `Users` atom — exactly how the paper writes q1/q2 (Sect. 2).

use crate::ast::*;
use crate::error::{Result, SqlError};
use beliefdb_core::bcq::{Bcq, PathElem, QueryTerm};
use beliefdb_core::{Bdms, BeliefPath, Sign, UserId};
use beliefdb_storage::{CmpOp, Value};

/// The catalog relation name (Fig. 5's `Users`).
pub const USERS_TABLE: &str = "Users";

/// A lowered SELECT: the query, its output column labels, and whether the
/// statement is trivially unsatisfiable (contradictory equality constants).
pub struct LoweredSelect {
    pub query: Option<Bcq>,
    pub columns: Vec<String>,
}

/// What a from-item binds.
enum AliasKind {
    Users,
    Relation {
        rel: beliefdb_core::RelId,
        sign: Sign,
        prefix: Vec<UserRef>,
    },
}

struct AliasInfo {
    name: String,
    kind: AliasKind,
    columns: Vec<String>,
    /// Global slot offset of this alias's first column.
    offset: usize,
}

/// Union-find over column slots with optional class constants.
struct Slots {
    parent: Vec<usize>,
    constant: Vec<Option<Value>>,
    unsat: bool,
}

impl Slots {
    fn new(n: usize) -> Self {
        Slots {
            parent: (0..n).collect(),
            constant: vec![None; n],
            unsat: false,
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        match (self.constant[ra].clone(), self.constant[rb].clone()) {
            (Some(x), Some(y)) if x != y => self.unsat = true,
            (Some(x), _) => self.constant[rb] = Some(x),
            _ => {}
        }
        self.parent[ra] = rb;
    }

    fn set_const(&mut self, i: usize, v: Value) {
        let r = self.find(i);
        match &self.constant[r] {
            Some(existing) if *existing != v => self.unsat = true,
            _ => self.constant[r] = Some(v),
        }
    }
}

pub struct SelectLowerer<'a> {
    bdms: &'a Bdms,
    aliases: Vec<AliasInfo>,
    slots: Slots,
    /// Slots that must surface as named variables (selected, compared,
    /// used in a prefix, or shared between columns).
    material: Vec<bool>,
}

impl<'a> SelectLowerer<'a> {
    pub fn lower(bdms: &'a Bdms, stmt: &SelectStmt) -> Result<LoweredSelect> {
        let mut aliases = Vec::with_capacity(stmt.from.len());
        let mut offset = 0usize;
        for item in &stmt.from {
            let name = item.binding().to_string();
            if aliases.iter().any(|a: &AliasInfo| a.name == name) {
                return Err(SqlError::Lower(format!("duplicate alias `{name}`")));
            }
            let (kind, columns) = if item.table == USERS_TABLE {
                if item.prefix.is_some() {
                    return Err(SqlError::Lower(
                        "the Users catalog cannot carry BELIEF annotations".into(),
                    ));
                }
                (
                    AliasKind::Users,
                    vec!["uid".to_string(), "name".to_string()],
                )
            } else {
                let rel = bdms.schema().relation_id(&item.table)?;
                let def = bdms.schema().relation(rel)?;
                let (sign, prefix) = match &item.prefix {
                    None => (Sign::Pos, Vec::new()),
                    Some(p) => (
                        if p.negated { Sign::Neg } else { Sign::Pos },
                        p.users.clone(),
                    ),
                };
                (
                    AliasKind::Relation { rel, sign, prefix },
                    def.columns().to_vec(),
                )
            };
            let arity = columns.len();
            aliases.push(AliasInfo {
                name,
                kind,
                columns,
                offset,
            });
            offset += arity;
        }

        let this = SelectLowerer {
            bdms,
            aliases,
            slots: Slots::new(offset),
            material: vec![false; offset],
        };
        this.run(stmt)
    }

    fn resolve(&self, c: &ColumnRef) -> Result<usize> {
        match &c.qualifier {
            Some(q) => {
                let alias = self
                    .aliases
                    .iter()
                    .find(|a| &a.name == q)
                    .ok_or_else(|| SqlError::Lower(format!("unknown alias `{q}`")))?;
                let idx = alias
                    .columns
                    .iter()
                    .position(|col| col == &c.column)
                    .ok_or_else(|| {
                        SqlError::Lower(format!("no column `{}` in `{}`", c.column, q))
                    })?;
                Ok(alias.offset + idx)
            }
            None => {
                let mut hit = None;
                for alias in &self.aliases {
                    if let Some(idx) = alias.columns.iter().position(|col| col == &c.column) {
                        if hit.is_some() {
                            return Err(SqlError::Lower(format!(
                                "ambiguous column `{}`",
                                c.column
                            )));
                        }
                        hit = Some(alias.offset + idx);
                    }
                }
                hit.ok_or_else(|| SqlError::Lower(format!("unknown column `{}`", c.column)))
            }
        }
    }

    fn run(mut self, stmt: &SelectStmt) -> Result<LoweredSelect> {
        // 1. Equalities fold into the union-find; the rest become predicates.
        let mut residual: Vec<(usize, CmpOp, OperandSlot)> = Vec::new();
        for cond in &stmt.conditions {
            match (&cond.left, cond.op, &cond.right) {
                (Operand::Column(a), CmpOp::Eq, Operand::Column(b)) => {
                    let (sa, sb) = (self.resolve(a)?, self.resolve(b)?);
                    self.slots.union(sa, sb);
                }
                (Operand::Column(a), CmpOp::Eq, Operand::Literal(l))
                | (Operand::Literal(l), CmpOp::Eq, Operand::Column(a)) => {
                    let s = self.resolve(a)?;
                    self.slots.set_const(s, l.to_value());
                }
                (Operand::Literal(a), op, Operand::Literal(b)) => {
                    if !op.eval(&a.to_value(), &b.to_value()) {
                        self.slots.unsat = true;
                    }
                }
                (Operand::Column(a), op, Operand::Column(b)) => {
                    let (sa, sb) = (self.resolve(a)?, self.resolve(b)?);
                    self.material[sa] = true;
                    self.material[sb] = true;
                    residual.push((sa, op, OperandSlot::Slot(sb)));
                }
                (Operand::Column(a), op, Operand::Literal(l)) => {
                    let s = self.resolve(a)?;
                    self.material[s] = true;
                    residual.push((s, op, OperandSlot::Const(l.to_value())));
                }
                (Operand::Literal(l), op, Operand::Column(a)) => {
                    let s = self.resolve(a)?;
                    self.material[s] = true;
                    residual.push((s, op.flip(), OperandSlot::Const(l.to_value())));
                }
            }
        }

        // 2. Select list: expand wildcards, mark slots material, collect
        // output labels.
        let mut head_slots: Vec<usize> = Vec::new();
        let mut columns: Vec<String> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for alias in &self.aliases {
                        for (i, col) in alias.columns.iter().enumerate() {
                            head_slots.push(alias.offset + i);
                            columns.push(format!("{}.{col}", alias.name));
                        }
                    }
                }
                SelectItem::Column(c) => {
                    let s = self.resolve(c)?;
                    head_slots.push(s);
                    columns.push(c.to_string());
                }
            }
        }
        for &s in &head_slots {
            self.material[s] = true;
        }

        // 3. Resolve belief-prefix user references up front; prefix columns
        // are material too.
        let mut prefix_specs: Vec<Vec<PathSpec>> = Vec::with_capacity(self.aliases.len());
        for alias in &self.aliases {
            let mut specs = Vec::new();
            if let AliasKind::Relation { prefix, .. } = &alias.kind {
                for u in prefix {
                    specs.push(match u {
                        UserRef::Name(name) => PathSpec::Uid(self.bdms.user_by_name(name)?),
                        UserRef::Column(c) => PathSpec::Slot(self.resolve(c)?),
                    });
                }
            }
            prefix_specs.push(specs);
        }
        for specs in &prefix_specs {
            for spec in specs {
                if let PathSpec::Slot(s) = spec {
                    self.material[*s] = true;
                }
            }
        }

        if self.slots.unsat {
            return Ok(LoweredSelect {
                query: None,
                columns,
            });
        }

        // 4. Classes shared by ≥ 2 slots are joins: material as well.
        let n = self.material.len();
        let mut class_size = vec![0usize; n];
        for i in 0..n {
            let r = self.slots.find(i);
            class_size[r] += 1;
        }
        for i in 0..n {
            let r = self.slots.find(i);
            if class_size[r] > 1 || self.slots.constant[r].is_some() || self.material[i] {
                self.material[r] = true;
            }
        }

        // 5. Terms per slot.
        let term_of = |slots: &mut Slots, material: &[bool], i: usize| -> QueryTerm {
            let r = slots.find(i);
            if let Some(v) = &slots.constant[r] {
                return QueryTerm::Const(v.clone());
            }
            if material[r] {
                QueryTerm::Var(format!("v{r}"))
            } else {
                QueryTerm::Any
            }
        };

        // 6. Assemble the BCQ.
        let mut head = Vec::with_capacity(head_slots.len());
        for &s in &head_slots {
            head.push(term_of(&mut self.slots, &self.material, s));
        }
        let mut builder = Bcq::builder(head);
        for (ai, alias) in self.aliases.iter().enumerate() {
            match &alias.kind {
                AliasKind::Users => {
                    let uid = term_of(&mut self.slots, &self.material, alias.offset);
                    let name = term_of(&mut self.slots, &self.material, alias.offset + 1);
                    builder = builder.user(uid, name);
                }
                AliasKind::Relation {
                    rel,
                    sign,
                    prefix: _,
                } => {
                    let mut path = Vec::with_capacity(prefix_specs[ai].len());
                    for spec in &prefix_specs[ai] {
                        path.push(path_elem(&mut self.slots, &self.material, spec)?);
                    }
                    let mut args = Vec::with_capacity(alias.columns.len());
                    for i in 0..alias.columns.len() {
                        args.push(term_of(&mut self.slots, &self.material, alias.offset + i));
                    }
                    builder = match sign {
                        Sign::Pos => builder.positive(path, *rel, args),
                        Sign::Neg => builder.negative(path, *rel, args),
                    };
                }
            }
        }
        for (slot, op, rhs) in residual {
            let left = term_of(&mut self.slots, &self.material, slot);
            let right = match rhs {
                OperandSlot::Slot(s) => term_of(&mut self.slots, &self.material, s),
                OperandSlot::Const(v) => QueryTerm::Const(v),
            };
            builder = builder.pred(left, op, right);
        }

        let query = builder.build(self.bdms.schema()).map_err(|e| match e {
            beliefdb_core::BeliefError::UnsafeQuery(msg) => SqlError::Lower(format!(
                "{msg}; a negated (BELIEF ... not) relation must have every \
                 column pinned by the WHERE clause — belief statements negate \
                 whole tuples"
            )),
            other => SqlError::Core(other),
        })?;
        Ok(LoweredSelect {
            query: Some(query),
            columns,
        })
    }
}

/// A resolved belief-prefix element: a concrete user id or a column slot.
enum PathSpec {
    Uid(UserId),
    Slot(usize),
}

fn path_elem(slots: &mut Slots, _material: &[bool], spec: &PathSpec) -> Result<PathElem> {
    match spec {
        PathSpec::Uid(u) => Ok(PathElem::User(*u)),
        PathSpec::Slot(s) => {
            let r = slots.find(*s);
            if let Some(v) = slots.constant[r].clone() {
                let uid = UserId::from_value(&v).ok_or_else(|| {
                    SqlError::Lower(format!(
                        "BELIEF column is pinned to `{v}`, which is not a user id"
                    ))
                })?;
                Ok(PathElem::User(uid))
            } else {
                Ok(PathElem::Var(format!("v{r}")))
            }
        }
    }
}

enum OperandSlot {
    Slot(usize),
    Const(Value),
}

/// Resolve a DML `BELIEF` prefix to a belief path and sign. DML prefixes
/// must name users literally (there is no query context to bind columns).
pub fn lower_dml_prefix(bdms: &Bdms, prefix: &Option<BeliefPrefix>) -> Result<(BeliefPath, Sign)> {
    let Some(prefix) = prefix else {
        return Ok((BeliefPath::root(), Sign::Pos));
    };
    let mut users = Vec::with_capacity(prefix.users.len());
    for u in &prefix.users {
        match u {
            UserRef::Name(name) => users.push(bdms.user_by_name(name)?),
            UserRef::Column(c) => {
                return Err(SqlError::Lower(format!(
                    "BELIEF {c}: DML statements must name users literally"
                )))
            }
        }
    }
    let path = BeliefPath::new(users)?;
    let sign = if prefix.negated { Sign::Neg } else { Sign::Pos };
    Ok((path, sign))
}
