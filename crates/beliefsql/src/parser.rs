//! Recursive-descent parser for the Fig. 1 grammar.
//!
//! ```text
//! select  ::= SELECT selectlist FROM fromitem (',' fromitem)* (WHERE conds)?
//! insert  ::= INSERT INTO prefix? table VALUES '(' literal (',' literal)* ')'
//! delete  ::= DELETE FROM prefix? table (AS? alias)? (WHERE conds)?
//! update  ::= UPDATE prefix? table (AS? alias)? SET col '=' literal
//!             (',' col '=' literal)* (WHERE conds)?
//! prefix  ::= (BELIEF userref)+ NOT?
//! userref ::= stringlit | ident ('.' ident)?
//! conds   ::= cond (AND cond)*
//! cond    ::= operand op operand ; op ∈ {=, <>, !=, <, <=, >, >=}
//! ```

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Keyword, Token, TokenKind};
use beliefdb_storage::CmpOp;

/// Parse one BeliefSQL statement (optionally `;`-terminated).
pub fn parse(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept(&TokenKind::Semicolon);
    p.expect(&TokenKind::Eof)?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn accept(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn accept_kw(&mut self, kw: Keyword) -> bool {
        self.accept(&TokenKind::Keyword(kw))
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            message: message.into(),
            near: self.peek().to_string(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.accept(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kind}`")))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        self.expect(&TokenKind::Keyword(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    /// Accept `word` as a *contextual* keyword: ORDER/BY/ASC/DESC/LIMIT
    /// are not reserved (they lex as plain identifiers, so existing
    /// schemas may use them as names) and only act as keywords where the
    /// grammar expects them.
    fn accept_word(&mut self, word: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(word) {
                self.advance();
                return true;
            }
        }
        false
    }

    /// Whether the next token is the contextual keyword `word`.
    fn peek_word(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(word))
    }

    /// A table name: a plain identifier, or a dotted `sys.name` pair
    /// (the system-catalog namespace).
    fn table_name(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.accept(&TokenKind::Dot) {
            let rest = self.ident()?;
            Ok(format!("{first}.{rest}"))
        } else {
            Ok(first)
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.accept_kw(Keyword::Select) {
            return Ok(Statement::Select(self.select()?));
        }
        if self.accept_kw(Keyword::Insert) {
            return Ok(Statement::Insert(self.insert()?));
        }
        if self.accept_kw(Keyword::Delete) {
            return Ok(Statement::Delete(self.delete()?));
        }
        if self.accept_kw(Keyword::Update) {
            return Ok(Statement::Update(self.update()?));
        }
        Err(self.error("expected SELECT, INSERT, DELETE, or UPDATE"))
    }

    fn select(&mut self) -> Result<SelectStmt> {
        let mut items = vec![self.select_item()?];
        while self.accept(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw(Keyword::From)?;
        let mut from = vec![self.parse_from_item()?];
        while self.accept(&TokenKind::Comma) {
            from.push(self.parse_from_item()?);
        }
        let conditions = self.opt_where()?;
        let order_by = self.opt_order_by()?;
        let limit = self.opt_limit()?;
        Ok(SelectStmt {
            items,
            from,
            conditions,
            order_by,
            limit,
        })
    }

    fn opt_order_by(&mut self) -> Result<Vec<(ColumnRef, bool)>> {
        if !self.accept_word("order") {
            return Ok(Vec::new());
        }
        if !self.accept_word("by") {
            return Err(self.error("expected BY after ORDER"));
        }
        let mut keys = Vec::new();
        loop {
            let col = self.column_ref()?;
            let desc = if self.accept_word("desc") {
                true
            } else {
                self.accept_word("asc");
                false
            };
            keys.push((col, desc));
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        Ok(keys)
    }

    fn opt_limit(&mut self) -> Result<Option<usize>> {
        if !self.accept_word("limit") {
            return Ok(None);
        }
        match self.peek().clone() {
            TokenKind::Int(n) if n >= 0 => {
                self.advance();
                Ok(Some(n as usize))
            }
            _ => Err(self.error("expected a non-negative integer after LIMIT")),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.accept(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.accept(&TokenKind::Dot) {
            let column = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn belief_prefix(&mut self) -> Result<Option<BeliefPrefix>> {
        if self.peek() != &TokenKind::Keyword(Keyword::Belief) {
            return Ok(None);
        }
        let mut users = Vec::new();
        while self.accept_kw(Keyword::Belief) {
            users.push(self.user_ref()?);
        }
        let negated = self.accept_kw(Keyword::Not);
        Ok(Some(BeliefPrefix { users, negated }))
    }

    fn user_ref(&mut self) -> Result<UserRef> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.advance();
                Ok(UserRef::Name(s))
            }
            TokenKind::Ident(_) => Ok(UserRef::Column(self.column_ref()?)),
            _ => Err(self.error("expected a user name or column after BELIEF")),
        }
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let prefix = self.belief_prefix()?;
        let table = self.table_name()?;
        let alias = self.opt_alias()?;
        Ok(FromItem {
            prefix,
            table,
            alias,
        })
    }

    fn opt_alias(&mut self) -> Result<Option<String>> {
        if self.accept_kw(Keyword::As) {
            return Ok(Some(self.ident()?));
        }
        // Bare alias (`Sightings S`) — but not the contextual ORDER /
        // LIMIT keywords, which start the next clause.
        if let TokenKind::Ident(_) = self.peek() {
            if self.peek_word("order") || self.peek_word("limit") {
                return Ok(None);
            }
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    fn opt_where(&mut self) -> Result<Vec<Condition>> {
        if !self.accept_kw(Keyword::Where) {
            return Ok(Vec::new());
        }
        let mut out = vec![self.condition()?];
        while self.accept_kw(Keyword::And) {
            out.push(self.condition()?);
        }
        Ok(out)
    }

    fn condition(&mut self) -> Result<Condition> {
        let left = self.operand()?;
        let op = self.cmp_op()?;
        let right = self.operand()?;
        Ok(Condition { left, op, right })
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.advance();
                Ok(Operand::Literal(Literal::Str(s)))
            }
            TokenKind::Int(i) => {
                self.advance();
                Ok(Operand::Literal(Literal::Int(i)))
            }
            TokenKind::Ident(_) => Ok(Operand::Column(self.column_ref()?)),
            _ => Err(self.error("expected a column or literal")),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Err(self.error("expected a comparison operator")),
        };
        self.advance();
        Ok(op)
    }

    fn insert(&mut self) -> Result<InsertStmt> {
        self.expect_kw(Keyword::Into)?;
        let prefix = self.belief_prefix()?;
        let table = self.table_name()?;
        self.expect_kw(Keyword::Values)?;
        self.expect(&TokenKind::LParen)?;
        let mut values = vec![self.literal()?];
        while self.accept(&TokenKind::Comma) {
            values.push(self.literal()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(InsertStmt {
            prefix,
            table,
            values,
        })
    }

    fn literal(&mut self) -> Result<Literal> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.advance();
                Ok(Literal::Str(s))
            }
            TokenKind::Int(i) => {
                self.advance();
                Ok(Literal::Int(i))
            }
            _ => Err(self.error("expected a literal value")),
        }
    }

    fn delete(&mut self) -> Result<DeleteStmt> {
        self.expect_kw(Keyword::From)?;
        let prefix = self.belief_prefix()?;
        let table = self.table_name()?;
        let alias = self.opt_alias()?;
        let conditions = self.opt_where()?;
        Ok(DeleteStmt {
            prefix,
            table,
            alias,
            conditions,
        })
    }

    fn update(&mut self) -> Result<UpdateStmt> {
        let prefix = self.belief_prefix()?;
        let table = self.table_name()?;
        let alias = if self.peek() == &TokenKind::Keyword(Keyword::Set) {
            None
        } else {
            self.opt_alias()?
        };
        self.expect_kw(Keyword::Set)?;
        let mut assignments = vec![self.assignment()?];
        while self.accept(&TokenKind::Comma) {
            assignments.push(self.assignment()?);
        }
        let conditions = self.opt_where()?;
        Ok(UpdateStmt {
            prefix,
            table,
            alias,
            assignments,
            conditions,
        })
    }

    fn assignment(&mut self) -> Result<(String, Literal)> {
        let col = self.ident()?;
        self.expect(&TokenKind::Eq)?;
        let value = self.literal()?;
        Ok((col, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_insert_i1() {
        let stmt = parse(
            "insert into Sightings values ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
        )
        .unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!("expected insert")
        };
        assert!(ins.prefix.is_none());
        assert_eq!(ins.table, "Sightings");
        assert_eq!(ins.values.len(), 5);
        assert_eq!(ins.values[2], Literal::Str("bald eagle".into()));
    }

    #[test]
    fn parses_paper_insert_i2_with_negated_prefix() {
        let stmt = parse(
            "insert into BELIEF 'Bob' not Sightings values ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
        )
        .unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!()
        };
        let prefix = ins.prefix.unwrap();
        assert!(prefix.negated);
        assert_eq!(prefix.users, vec![UserRef::Name("Bob".into())]);
    }

    #[test]
    fn parses_paper_insert_i7_higher_order() {
        let stmt = parse(
            "insert into BELIEF 'Bob' BELIEF 'Alice' Comments values ('c2','black feathers','s2')",
        )
        .unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!()
        };
        let prefix = ins.prefix.unwrap();
        assert!(!prefix.negated);
        assert_eq!(prefix.users.len(), 2);
        assert_eq!(prefix.users[1], UserRef::Name("Alice".into()));
    }

    #[test]
    fn parses_paper_query_q1() {
        let stmt = parse(
            "select S.sid, S.uid, S.species \
             from Users as U, BELIEF U.uid Sightings as S \
             where U.name = 'Bob' and S.location = 'Lake Placid'",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.items.len(), 3);
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.from[0].binding(), "U");
        let s = &sel.from[1];
        assert_eq!(s.binding(), "S");
        let prefix = s.prefix.as_ref().unwrap();
        assert_eq!(
            prefix.users,
            vec![UserRef::Column(ColumnRef {
                qualifier: Some("U".into()),
                column: "uid".into()
            })]
        );
        assert_eq!(sel.conditions.len(), 2);
    }

    #[test]
    fn parses_paper_query_q2() {
        let stmt = parse(
            "select U2.name, S1.species, S2.species \
             from Users as U1, Users as U2, \
                  BELIEF U1.uid Sightings as S1, \
                  BELIEF U2.uid Sightings as S2 \
             where U1.name = 'Alice' and S1.sid = S2.sid and S1.species <> S2.species",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.from.len(), 4);
        assert_eq!(sel.conditions.len(), 3);
        assert_eq!(sel.conditions[2].op, CmpOp::Ne);
    }

    #[test]
    fn parses_wildcard_select_and_bare_alias() {
        let stmt = parse("select * from Sightings S where S.sid = 's1'").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.items, vec![SelectItem::Wildcard]);
        assert_eq!(sel.from[0].alias.as_deref(), Some("S"));
    }

    #[test]
    fn parses_delete() {
        let stmt = parse("delete from BELIEF 'Bob' Sightings where sid = 's2'").unwrap();
        let Statement::Delete(del) = stmt else {
            panic!()
        };
        assert_eq!(del.table, "Sightings");
        assert!(!del.prefix.as_ref().unwrap().negated);
        assert_eq!(del.conditions.len(), 1);
        // negated delete
        let stmt = parse("delete from BELIEF 'Bob' not Sightings").unwrap();
        let Statement::Delete(del) = stmt else {
            panic!()
        };
        assert!(del.prefix.unwrap().negated);
        assert!(del.conditions.is_empty());
    }

    #[test]
    fn parses_update() {
        let stmt = parse(
            "update BELIEF 'Alice' Sightings set species = 'raven', location = 'Lake Placid' where sid = 's2'",
        )
        .unwrap();
        let Statement::Update(up) = stmt else {
            panic!()
        };
        assert_eq!(up.assignments.len(), 2);
        assert_eq!(
            up.assignments[0],
            ("species".into(), Literal::Str("raven".into()))
        );
        assert_eq!(up.conditions.len(), 1);
        // without prefix, without where
        let stmt = parse("update Sightings set species = 'crow'").unwrap();
        let Statement::Update(up) = stmt else {
            panic!()
        };
        assert!(up.prefix.is_none());
        assert!(up.conditions.is_empty());
    }

    #[test]
    fn trailing_semicolon_accepted() {
        assert!(parse("select * from S;").is_ok());
    }

    #[test]
    fn parses_sys_qualified_table_names() {
        let stmt = parse("select * from sys.metrics").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.from[0].table, "sys.metrics");
        assert_eq!(sel.from[0].binding(), "sys.metrics");
        // DML positions parse the dotted name too (rejected later with a
        // clean error, not a parse error).
        let Statement::Insert(ins) = parse("insert into sys.metrics values (1)").unwrap() else {
            panic!()
        };
        assert_eq!(ins.table, "sys.metrics");
        let Statement::Delete(del) = parse("delete from sys.metrics").unwrap() else {
            panic!()
        };
        assert_eq!(del.table, "sys.metrics");
        let Statement::Update(up) = parse("update sys.metrics set value = 0").unwrap() else {
            panic!()
        };
        assert_eq!(up.table, "sys.metrics");
    }

    #[test]
    fn parses_order_by_and_limit() {
        let stmt =
            parse("select * from sys.statements order by total_time_ns desc, calls asc limit 5")
                .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.order_by.len(), 2);
        assert_eq!(sel.order_by[0].0.column, "total_time_ns");
        assert!(sel.order_by[0].1, "first key descending");
        assert_eq!(sel.order_by[1].0.column, "calls");
        assert!(!sel.order_by[1].1, "second key ascending");
        assert_eq!(sel.limit, Some(5));
        // Plain ORDER BY defaults ascending; LIMIT stands alone.
        let Statement::Select(sel) = parse("select * from T order by a").unwrap() else {
            panic!()
        };
        assert_eq!(
            sel.order_by,
            vec![(
                ColumnRef {
                    qualifier: None,
                    column: "a".into()
                },
                false
            )]
        );
        assert_eq!(sel.limit, None);
        let Statement::Select(sel) = parse("select * from T limit 0").unwrap() else {
            panic!()
        };
        assert!(sel.order_by.is_empty());
        assert_eq!(sel.limit, Some(0));
        // ORDER/LIMIT are not swallowed as bare aliases, but ordinary
        // bare aliases still work.
        let Statement::Select(sel) = parse("select * from T x order by a limit 1").unwrap() else {
            panic!()
        };
        assert_eq!(sel.from[0].alias.as_deref(), Some("x"));
        // Malformed clauses are parse errors, not silent no-ops.
        assert!(parse("select * from T order a").is_err());
        assert!(parse("select * from T limit").is_err());
        assert!(parse("select * from T limit -1").is_err());
    }

    #[test]
    fn parse_errors_are_informative() {
        let err = parse("select from S").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        let err = parse("insert Sightings values ('x')").unwrap_err();
        assert!(err.to_string().contains("Into") || err.to_string().contains("expected"));
        let err = parse("select * from S where a = ").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        let err = parse("select * from S extra garbage ; more").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        let err = parse("frobnicate").unwrap_err();
        assert!(err.to_string().contains("SELECT"));
    }

    #[test]
    fn integer_literals_in_conditions_and_values() {
        let stmt = parse("insert into T values (1, -2, 'x')").unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!()
        };
        assert_eq!(ins.values[0], Literal::Int(1));
        assert_eq!(ins.values[1], Literal::Int(-2));
        let stmt = parse("select * from T where a >= 10").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.conditions[0].op, CmpOp::Ge);
    }
}
