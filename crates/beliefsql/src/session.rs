//! Interactive sessions: parse → lower → execute against a [`Bdms`].

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lower::{lower_dml_prefix, SelectLowerer};
use crate::parser::parse;
use beliefdb_core::internal::InsertOutcome;
use beliefdb_core::{Bdms, BeliefError, ExternalSchema, GroundTuple, Sign};
use beliefdb_storage::obs::{note_statement_peak, record_statement, statements_enabled};
use beliefdb_storage::sema::{self, codes, lint_program, Diagnostic};
use beliefdb_storage::{
    metrics, Expr, Metric, MetricsSnapshot, Plan, QueryTrace, Recorder, Row, SortKey, StatementObs,
    Value, SYS_PREFIX,
};
use std::fmt;
use std::time::Instant;

/// Result of executing one BeliefSQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// `SELECT`: column labels and (sorted, deduplicated) rows.
    Rows {
        columns: Vec<String>,
        rows: Vec<Row>,
    },
    /// `INSERT`: what Algorithm 4 did with the statement.
    Inserted(InsertOutcome),
    /// `DELETE`: number of explicit statements removed.
    Deleted(usize),
    /// `UPDATE`: number of tuples rewritten.
    Updated(usize),
    /// `EXPLAIN <select>`: the lowered query, its Datalog translation, and
    /// the optimized physical plan of every rule.
    Explain(String),
}

impl ExecResult {
    /// Rows of a `SELECT` result (empty for DML).
    pub fn rows(&self) -> &[Row] {
        match self {
            ExecResult::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// Column labels of a `SELECT` result.
    pub fn columns(&self) -> &[String] {
        match self {
            ExecResult::Rows { columns, .. } => columns,
            _ => &[],
        }
    }
}

impl fmt::Display for ExecResult {
    /// Render as an aligned text table (for examples and the REPL-style
    /// binaries).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecResult::Inserted(outcome) => write!(f, "-- insert: {outcome:?}"),
            ExecResult::Deleted(n) => write!(f, "-- deleted {n} statement(s)"),
            ExecResult::Updated(n) => write!(f, "-- updated {n} tuple(s)"),
            ExecResult::Explain(text) => write!(f, "{}", text.trim_end()),
            ExecResult::Rows { columns, rows } => {
                let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|r| r.values().iter().map(|v| v.to_string()).collect())
                    .collect();
                for row in &rendered {
                    for (i, cell) in row.iter().enumerate() {
                        if i < widths.len() {
                            widths[i] = widths[i].max(cell.len());
                        }
                    }
                }
                let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
                    write!(f, "|")?;
                    for (i, c) in cells.iter().enumerate() {
                        write!(
                            f,
                            " {c:<w$} |",
                            w = widths.get(i).copied().unwrap_or(c.len())
                        )?;
                    }
                    writeln!(f)
                };
                line(f, columns)?;
                write!(f, "|")?;
                for w in &widths {
                    write!(f, "{:-<w$}|", "", w = w + 2)?;
                }
                writeln!(f)?;
                for row in &rendered {
                    line(f, row)?;
                }
                write!(
                    f,
                    "({} row{})",
                    rows.len(),
                    if rows.len() == 1 { "" } else { "s" }
                )
            }
        }
    }
}

/// A BeliefSQL session owning a BDMS instance.
pub struct Session {
    bdms: Bdms,
}

impl Session {
    /// Open a session over a fresh in-memory BDMS with the given
    /// external schema.
    pub fn new(schema: ExternalSchema) -> Result<Self> {
        Ok(Session {
            bdms: Bdms::new(schema)?,
        })
    }

    /// Initialize a session over a **durable** BDMS in `dir` (created
    /// if missing; errors when the directory already holds a belief
    /// database). Every DML statement is write-ahead logged.
    pub fn create(dir: impl AsRef<std::path::Path>, schema: ExternalSchema) -> Result<Self> {
        Ok(Session {
            bdms: Bdms::create(dir, schema)?,
        })
    }

    /// Recover a session from a durable directory: the latest snapshot
    /// is loaded and the WAL tail replayed, so query answers and
    /// statistics match the pre-shutdown state exactly.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Ok(Session {
            bdms: Bdms::open(dir)?,
        })
    }

    /// Snapshot the current state and truncate the covered WAL
    /// (durable sessions only).
    pub fn checkpoint(&mut self) -> Result<u64> {
        Ok(self.bdms.checkpoint()?)
    }

    /// Wrap an existing BDMS.
    pub fn from_bdms(bdms: Bdms) -> Self {
        Session { bdms }
    }

    /// Bound the memory each query's materialization points (hash-join
    /// builds, aggregates, sorts, distincts) may hold; past the budget
    /// they spill to disk (grace hash join, external merge sort). The
    /// shell exposes this as `\set memory <bytes>`. `None` (the
    /// default) keeps everything in memory.
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.bdms.set_memory_budget(bytes);
    }

    /// The per-query memory budget in effect (`None` = unlimited).
    pub fn memory_budget(&self) -> Option<usize> {
        self.bdms.memory_budget()
    }

    /// Toggle the magic-sets / SIP rewrite (demand-driven evaluation of
    /// bound belief queries). On by default; the shell exposes this as
    /// `\set magic on|off`. Off runs the unrewritten Algorithm 1 rule
    /// stack, byte-identical to the pre-rewrite engine.
    pub fn set_magic(&mut self, on: bool) {
        self.bdms.set_magic(on);
    }

    /// Whether the magic-sets rewrite is applied to queries.
    pub fn magic_enabled(&self) -> bool {
        self.bdms.magic_enabled()
    }

    /// Force the plan verifier on or off (process-wide). The verifier
    /// re-checks structural invariants after every optimizer pass and at
    /// the executor boundary; it is on by default under
    /// `debug_assertions` and off in release builds. The shell exposes
    /// this as `\set verify on|off`.
    pub fn set_verify(&mut self, on: bool) {
        sema::set_verify(on);
    }

    /// Whether the plan verifier is currently armed.
    pub fn verify_enabled(&self) -> bool {
        sema::verify_enabled()
    }

    /// Statically analyze a SELECT without running it.
    ///
    /// The statement is lowered to a belief conjunctive query and
    /// translated through Algorithm 1 exactly as execution would, then
    /// the resulting Datalog program is linted: safety violations,
    /// stratification problems, comparison type mismatches, and
    /// provably-empty conditions all come back as structured
    /// [`Diagnostic`]s (code, severity, message, context) in a
    /// deterministic order. An empty vector means the analyzer found
    /// nothing to report.
    pub fn lint(&self, sql: &str) -> Result<Vec<Diagnostic>> {
        let Statement::Select(sel) = parse(sql)? else {
            return Err(SqlError::Lower(
                "lint() only accepts SELECT statements".into(),
            ));
        };
        if sel.from.iter().any(|f| f.table.starts_with(SYS_PREFIX)) {
            // sys.* scans compile to a single fixed plan; nothing to lint.
            return Ok(Vec::new());
        }
        let lowered = SelectLowerer::lower(&self.bdms, &sel)?;
        match &lowered.query {
            None => Ok(vec![contradictory_constants_diag()]),
            Some(q) => {
                let translated = self.bdms.translate(q)?;
                Ok(lint_program(
                    self.bdms.internal().database(),
                    &translated.program,
                ))
            }
        }
    }

    pub fn bdms(&self) -> &Bdms {
        &self.bdms
    }

    pub fn bdms_mut(&mut self) -> &mut Bdms {
        &mut self.bdms
    }

    /// Register a user (not part of the Fig. 1 grammar; the paper manages
    /// users out of band, Sect. 5.3).
    pub fn add_user(&mut self, name: impl Into<String>) -> Result<beliefdb_core::UserId> {
        Ok(self.bdms.add_user(name)?)
    }

    /// Parse and execute one statement. `EXPLAIN <select>` and
    /// `EXPLAIN ANALYZE <select>` are handled here as statement forms.
    ///
    /// Every call feeds the cumulative per-fingerprint statement
    /// statistics (`sys.statements`) unless tracking is disabled, in
    /// which case the check is a single atomic load and nothing is
    /// allocated or recorded.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult> {
        if !statements_enabled() {
            return self.execute_inner(sql);
        }
        let before = metrics().snapshot();
        let t0 = Instant::now();
        let result = self.execute_inner(sql);
        record_statement_capture(
            sql,
            t0,
            &before,
            result.as_ref().map(|r| r.rows().len() as u64).unwrap_or(0),
            result.is_err(),
        );
        result
    }

    fn execute_inner(&mut self, sql: &str) -> Result<ExecResult> {
        if let Some(rest) = strip_explain(sql) {
            if let Some(inner) = strip_analyze(rest) {
                return Ok(ExecResult::Explain(self.explain_analyze(inner)?));
            }
            return Ok(ExecResult::Explain(self.explain(rest)?));
        }
        let mut rec = self.recorder(sql);
        let stmt = rec.span("parse", || parse(sql))?;
        let result = match stmt {
            Statement::Select(sel) => self.run_select(&sel, &mut rec),
            Statement::Insert(ins) => self.run_insert(&ins),
            Statement::Delete(del) => self.run_delete(&del),
            Statement::Update(up) => self.run_update(&up),
        };
        self.observe(rec);
        result
    }

    /// Parse and execute a read-only statement (`SELECT`, `EXPLAIN`, or
    /// `EXPLAIN ANALYZE`). Feeds `sys.statements` exactly like
    /// [`Session::execute`].
    pub fn query(&self, sql: &str) -> Result<ExecResult> {
        if !statements_enabled() {
            return self.query_inner(sql);
        }
        let before = metrics().snapshot();
        let t0 = Instant::now();
        let result = self.query_inner(sql);
        record_statement_capture(
            sql,
            t0,
            &before,
            result.as_ref().map(|r| r.rows().len() as u64).unwrap_or(0),
            result.is_err(),
        );
        result
    }

    fn query_inner(&self, sql: &str) -> Result<ExecResult> {
        if let Some(rest) = strip_explain(sql) {
            if let Some(inner) = strip_analyze(rest) {
                return Ok(ExecResult::Explain(self.explain_analyze(inner)?));
            }
            return Ok(ExecResult::Explain(self.explain(rest)?));
        }
        let mut rec = self.recorder(sql);
        let stmt = rec.span("parse", || parse(sql))?;
        let result = match stmt {
            Statement::Select(sel) => self.run_select(&sel, &mut rec),
            _ => Err(SqlError::Lower(
                "query() only accepts SELECT statements".into(),
            )),
        };
        self.observe(rec);
        result
    }

    /// A span recorder for one statement: enabled (so the run is traced
    /// and profiled) only while the slow-query log is armed — otherwise
    /// the disabled recorder, whose every hook is a single branch.
    fn recorder(&self, sql: &str) -> Recorder {
        if self.bdms.slowlog().enabled() {
            Recorder::enabled(sql.trim())
        } else {
            Recorder::disabled()
        }
    }

    /// Hand a finished trace to the slow-query log (no-op when the
    /// recorder was disabled). Profiled runs also raise the statement's
    /// peak-buffered-bytes high-water mark in `sys.statements`.
    fn observe(&self, rec: Recorder) {
        if let Some(trace) = rec.finish() {
            if statements_enabled() {
                if let Some(profile) = trace.profile.as_deref() {
                    let peak = max_peak_bytes(profile);
                    if peak > 0 {
                        note_statement_peak(&trace.statement, peak);
                    }
                }
            }
            self.bdms.slowlog().observe(trace);
        }
    }

    /// Execute a `SELECT`, streaming result rows into `on_row` as the
    /// final Datalog rule of the Algorithm 1 translation produces them:
    /// nothing is collected, so the first row reaches the consumer before
    /// the query finishes and an interrupted consumer never pays for the
    /// full result. Rows are deduplicated but arrive in executor order
    /// (unsorted — use [`Session::query`] for the sorted table). Under
    /// the vectorized executor rows are produced a chunk at a time
    /// upstream; this sink still sees them one by one, so existing
    /// consumers are source-compatible.
    ///
    /// Returns the column labels and the number of rows emitted.
    ///
    /// When the slow-query log is armed the statement runs through the
    /// traced (collecting) path instead so a capture carries the full
    /// per-operator profile, and rows are replayed to `on_row` after the
    /// fact — observability trades away streaming for that statement.
    /// With the slowlog off (the default) nothing changes.
    pub fn query_streaming(
        &self,
        sql: &str,
        on_row: impl FnMut(Row),
    ) -> Result<(Vec<String>, usize)> {
        if !statements_enabled() {
            return self.query_streaming_inner(sql, on_row);
        }
        let before = metrics().snapshot();
        let t0 = Instant::now();
        let result = self.query_streaming_inner(sql, on_row);
        // A "not streamable; use query()" rejection is an API redirection,
        // not a statement execution: the caller retries through query(),
        // which records the real call. Capturing the rejection too would
        // double-count the statement and mark it errored.
        let redirected = matches!(&result, Err(e) if e.to_string().contains("use query()"));
        if !redirected {
            record_statement_capture(
                sql,
                t0,
                &before,
                result.as_ref().map(|(_, n)| *n as u64).unwrap_or(0),
                result.is_err(),
            );
        }
        result
    }

    fn query_streaming_inner(
        &self,
        sql: &str,
        mut on_row: impl FnMut(Row),
    ) -> Result<(Vec<String>, usize)> {
        if self.bdms.slowlog().enabled() {
            let mut rec = self.recorder(sql);
            let stmt = rec.span("parse", || parse(sql))?;
            let Statement::Select(sel) = stmt else {
                return Err(SqlError::Lower(
                    "query_streaming() only accepts SELECT statements".into(),
                ));
            };
            streaming_supported(&sel)?;
            let lowered = rec.span("lower", || SelectLowerer::lower(&self.bdms, &sel))?;
            let mut emitted = 0usize;
            if let Some(q) = &lowered.query {
                for row in self.bdms.query_traced(q, &mut rec)? {
                    emitted += 1;
                    on_row(row);
                }
            }
            self.observe(rec);
            return Ok((lowered.columns, emitted));
        }
        let Statement::Select(sel) = parse(sql)? else {
            return Err(SqlError::Lower(
                "query_streaming() only accepts SELECT statements".into(),
            ));
        };
        streaming_supported(&sel)?;
        let lowered = SelectLowerer::lower(&self.bdms, &sel)?;
        let mut emitted = 0usize;
        if let Some(q) = &lowered.query {
            self.bdms.query_streaming(q, |row| {
                emitted += 1;
                on_row(row);
            })?;
        }
        Ok((lowered.columns, emitted))
    }

    /// EXPLAIN: show how a SELECT runs — the belief conjunctive query it
    /// lowers to, the non-recursive Datalog program Algorithm 1 produces,
    /// and the optimized physical plan of every rule.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let Statement::Select(sel) = parse(sql)? else {
            return Err(SqlError::Lower(
                "explain() only accepts SELECT statements".into(),
            ));
        };
        if sel.from.iter().any(|f| f.table.starts_with(SYS_PREFIX)) {
            return self.explain_sys(&sel, false);
        }
        let lowered = SelectLowerer::lower(&self.bdms, &sel)?;
        let mut out = String::new();
        match &lowered.query {
            None => {
                out.push_str("-- contradictory constants: empty result\n");
                out.push_str(&format!("--   {}\n", contradictory_constants_diag()));
            }
            Some(q) => {
                out.push_str(&format!("-- belief conjunctive query (Def. 13):\n{q}\n\n"));
                let translated = self.bdms.translate(q)?;
                out.push_str("-- Algorithm 1 translation (non-recursive Datalog over R*):\n");
                out.push_str(&translated.program.to_string());
                out.push_str("\n-- optimized physical plans:\n");
                out.push_str(&self.bdms.explain_query(q)?);
                // Lint the translated program and annotate anything of
                // substance. Style lints (unused rules, singleton
                // variables) are suppressed here: machine-generated rule
                // stacks legitimately trip them and the annotations
                // would be pure noise.
                let diags = lint_program(self.bdms.internal().database(), &translated.program);
                let mut shown = diags
                    .iter()
                    .filter(|d| d.code != codes::UNUSED_RULE && d.code != codes::SINGLETON_VAR)
                    .peekable();
                if shown.peek().is_some() {
                    out.push_str("\n-- diagnostics:\n");
                    for d in shown {
                        out.push_str(&format!("--   {d}\n"));
                    }
                }
            }
        }
        Ok(out)
    }

    /// `EXPLAIN ANALYZE`: actually run the SELECT with per-operator
    /// profiling on, then render the lowered query and each answer-rule
    /// plan annotated with estimated **and** actual rows, chunks, wall
    /// time, kernel-vs-fallback filter rows, and spill traffic.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let Statement::Select(sel) = parse(sql)? else {
            return Err(SqlError::Lower(
                "explain analyze only accepts SELECT statements".into(),
            ));
        };
        if sel.from.iter().any(|f| f.table.starts_with(SYS_PREFIX)) {
            return self.explain_sys(&sel, true);
        }
        let lowered = SelectLowerer::lower(&self.bdms, &sel)?;
        let mut out = String::new();
        match &lowered.query {
            None => out.push_str("-- contradictory constants: empty result\n"),
            Some(q) => {
                out.push_str(&format!("-- belief conjunctive query (Def. 13):\n{q}\n\n"));
                let (rows, report) = self.bdms.explain_analyze_query(q)?;
                out.push_str("-- analyzed physical plans (est vs actual):\n");
                out.push_str(&report);
                out.push_str(&format!(
                    "-- {} row{} returned\n",
                    rows.len(),
                    if rows.len() == 1 { "" } else { "s" }
                ));
            }
        }
        Ok(out)
    }

    /// Arm (or disarm, with `None`) the slow-query log: statements whose
    /// total wall time crosses the threshold are captured with their SQL
    /// text, span timings (parse → lower → translate → cache lookup →
    /// execute → sort), and full `EXPLAIN ANALYZE` profile. The shell
    /// exposes this as `\set slowlog <ms|off>`.
    pub fn set_slowlog_threshold_ms(&self, ms: Option<u64>) {
        self.bdms.set_slowlog_threshold_ms(ms);
    }

    /// The slow-query capture threshold in ms (`None` = off).
    pub fn slowlog_threshold_ms(&self) -> Option<u64> {
        self.bdms.slowlog_threshold_ms()
    }

    /// Captured slow statements, oldest first (bounded ring).
    pub fn slowlog_entries(&self) -> Vec<QueryTrace> {
        self.bdms.slowlog_entries()
    }

    /// Drop captured slow statements (the threshold is unchanged).
    pub fn clear_slowlog(&self) {
        self.bdms.clear_slowlog();
    }

    fn run_select(&self, sel: &SelectStmt, rec: &mut Recorder) -> Result<ExecResult> {
        if sel.from.iter().any(|f| f.table.starts_with(SYS_PREFIX)) {
            return self.run_sys_select(sel, rec);
        }
        let lowered = rec.span("lower", || SelectLowerer::lower(&self.bdms, sel))?;
        let mut rows = match &lowered.query {
            None => Vec::new(), // contradictory constants: empty result
            Some(q) => self.bdms.query_traced(q, rec)?,
        };
        // ORDER BY / LIMIT post-process the (already sorted, distinct)
        // belief-query answer; keys must appear in the select list.
        if !sel.order_by.is_empty() {
            let keys = resolve_order_keys(&lowered.columns, &sel.order_by)?;
            rows.sort_by(|a, b| cmp_order(&keys, a, b));
        }
        if let Some(n) = sel.limit {
            rows.truncate(n);
        }
        Ok(ExecResult::Rows {
            columns: lowered.columns,
            rows,
        })
    }

    /// A `SELECT` over one `sys.*` virtual table: built directly as a
    /// storage-layer plan (Scan → Selection → Sort → Limit → Projection)
    /// and run through the normal optimizer and chunked executor. The
    /// provider snapshots its source at scan time; nothing is cached.
    fn run_sys_select(&self, sel: &SelectStmt, rec: &mut Recorder) -> Result<ExecResult> {
        let (columns, plan) = self.sys_select_plan(sel)?;
        let db = self.bdms.internal().database();
        let plan = rec.span("optimize", || {
            beliefdb_storage::optimize(db, plan).map_err(storage_err)
        })?;
        let rows = rec.span("execute", || {
            beliefdb_storage::execute(db, &plan).map_err(storage_err)
        })?;
        Ok(ExecResult::Rows { columns, rows })
    }

    /// Lower a validated `sys.*` SELECT into column labels plus an
    /// unoptimized storage plan.
    fn sys_select_plan(&self, sel: &SelectStmt) -> Result<(Vec<String>, Plan)> {
        if sel.from.len() != 1 {
            return Err(SqlError::Lower(
                "system tables cannot be joined or mixed with other tables in one FROM".into(),
            ));
        }
        let item = &sel.from[0];
        if item.prefix.is_some() {
            return Err(SqlError::Lower(format!(
                "BELIEF prefixes do not apply to system table `{}`",
                item.table
            )));
        }
        let db = self.bdms.internal().database();
        let vt = db
            .virtual_table(&item.table)
            .ok_or_else(|| SqlError::Lower(format!("unknown system table `{}`", item.table)))?;
        let schema = vt.schema();
        let binding = item.binding();
        let resolve = |c: &ColumnRef| -> Result<usize> {
            if let Some(q) = &c.qualifier {
                if q != binding {
                    return Err(SqlError::Lower(format!(
                        "unknown alias `{q}` in system-table query"
                    )));
                }
            }
            schema.column_index(&c.column).map_err(|_| {
                SqlError::Lower(format!("no column `{}` in `{}`", c.column, item.table))
            })
        };
        let mut columns = Vec::new();
        let mut exprs = Vec::new();
        for it in &sel.items {
            match it {
                SelectItem::Wildcard => {
                    for (i, col) in schema.columns().iter().enumerate() {
                        columns.push(col.name.clone());
                        exprs.push(Expr::Col(i));
                    }
                }
                SelectItem::Column(c) => {
                    columns.push(c.to_string());
                    exprs.push(Expr::Col(resolve(c)?));
                }
            }
        }
        let mut plan = Plan::scan(item.table.clone());
        if !sel.conditions.is_empty() {
            let side = |o: &Operand| -> Result<Expr> {
                Ok(match o {
                    Operand::Column(c) => Expr::Col(resolve(c)?),
                    Operand::Literal(l) => Expr::Lit(l.to_value()),
                })
            };
            let mut conj = Vec::with_capacity(sel.conditions.len());
            for c in &sel.conditions {
                conj.push(Expr::cmp(c.op, side(&c.left)?, side(&c.right)?));
            }
            plan = plan.select(Expr::And(conj));
        }
        if !sel.order_by.is_empty() {
            let mut keys = Vec::with_capacity(sel.order_by.len());
            for (c, desc) in &sel.order_by {
                let i = resolve(c)?;
                keys.push(if *desc {
                    SortKey::desc(i)
                } else {
                    SortKey::asc(i)
                });
            }
            plan = plan.sort(keys);
        }
        if let Some(n) = sel.limit {
            plan = plan.limit(n);
        }
        Ok((columns, plan.project(exprs)))
    }

    /// `EXPLAIN [ANALYZE]` for a `sys.*` SELECT: render the optimized
    /// virtual-scan plan (with actuals when analyzing).
    fn explain_sys(&self, sel: &SelectStmt, analyze: bool) -> Result<String> {
        let (_, plan) = self.sys_select_plan(sel)?;
        let db = self.bdms.internal().database();
        let plan = beliefdb_storage::optimize(db, plan).map_err(storage_err)?;
        let mut out = String::from("-- system-catalog query (virtual table scan):\n");
        if analyze {
            let executor = beliefdb_storage::Executor::new(db);
            let (stream, profile) = executor.open_chunks_profiled(&plan).map_err(storage_err)?;
            let rows = stream.collect_rows().map_err(storage_err)?;
            out.push_str("-- analyzed physical plan (est vs actual):\n");
            out.push_str(&beliefdb_storage::opt::render_analyze(
                db,
                &beliefdb_storage::StatsCatalog::snapshot(db),
                &plan,
                &profile,
                None,
            ));
            out.push_str(&format!(
                "-- {} row{} returned\n",
                rows.len(),
                if rows.len() == 1 { "" } else { "s" }
            ));
        } else {
            out.push_str("-- optimized physical plan:\n");
            out.push_str(&beliefdb_storage::opt::render_with_snapshot(db, &plan));
        }
        Ok(out)
    }

    fn run_insert(&mut self, ins: &InsertStmt) -> Result<ExecResult> {
        reject_sys_dml("INSERT into", &ins.table)?;
        let (path, sign) = lower_dml_prefix(&self.bdms, &ins.prefix)?;
        let rel = self.bdms.schema().relation_id(&ins.table)?;
        let row = Row::new(ins.values.iter().map(|l| l.to_value()).collect::<Vec<_>>());
        let outcome = self.bdms.insert(path, rel, row, sign)?;
        Ok(ExecResult::Inserted(outcome))
    }

    fn run_delete(&mut self, del: &DeleteStmt) -> Result<ExecResult> {
        reject_sys_dml("DELETE from", &del.table)?;
        let (path, sign) = lower_dml_prefix(&self.bdms, &del.prefix)?;
        let rel = self.bdms.schema().relation_id(&del.table)?;
        let binding = del.alias.as_deref().unwrap_or(&del.table);
        let matcher = RowMatcher::new(&self.bdms, rel, binding, &del.conditions)?;

        let victims: Vec<GroundTuple> = self
            .bdms
            .explicit_statements_at(&path)?
            .into_iter()
            .filter(|s| s.tuple.rel == rel && s.sign == sign && matcher.matches(&s.tuple.row))
            .map(|s| s.tuple)
            .collect();
        let mut deleted = 0;
        for t in victims {
            if self.bdms.delete(path.clone(), rel, t.row, sign)? {
                deleted += 1;
            }
        }
        Ok(ExecResult::Deleted(deleted))
    }

    fn run_update(&mut self, up: &UpdateStmt) -> Result<ExecResult> {
        reject_sys_dml("UPDATE", &up.table)?;
        let (path, sign) = lower_dml_prefix(&self.bdms, &up.prefix)?;
        let rel = self.bdms.schema().relation_id(&up.table)?;
        let def = self.bdms.schema().relation(rel)?;
        let binding = up.alias.as_deref().unwrap_or(&up.table);
        let matcher = RowMatcher::new(&self.bdms, rel, binding, &up.conditions)?;

        let mut assignments: Vec<(usize, Value)> = Vec::with_capacity(up.assignments.len());
        for (col, lit) in &up.assignments {
            let idx = def
                .column_index(col)
                .ok_or_else(|| SqlError::Lower(format!("no column `{col}` in `{}`", up.table)))?;
            if idx == 0 {
                return Err(SqlError::Lower(
                    "cannot update the external key; insert a new tuple instead".into(),
                ));
            }
            assignments.push((idx, lit.to_value()));
        }

        // Positive updates revise what the world *believes* (Sect. 2's
        // "correct a sighting" semantics); negative updates rewrite stated
        // negatives.
        let targets: Vec<Row> = match sign {
            Sign::Pos => self
                .bdms
                .world(&path)?
                .pos_tuples()
                .filter(|t| t.rel == rel && matcher.matches(&t.row))
                .map(|t| t.row)
                .collect(),
            Sign::Neg => self
                .bdms
                .explicit_statements_at(&path)?
                .into_iter()
                .filter(|s| {
                    s.tuple.rel == rel && s.sign == Sign::Neg && matcher.matches(&s.tuple.row)
                })
                .map(|s| s.tuple.row)
                .collect(),
        };

        let mut updated = 0;
        for old in targets {
            let mut vals: Vec<Value> = old.values().to_vec();
            for (idx, v) in &assignments {
                vals[*idx] = v.clone();
            }
            let new = Row::new(vals);
            if new == old {
                continue;
            }
            match sign {
                Sign::Pos => {
                    self.bdms.update(path.clone(), rel, old, new)?;
                }
                Sign::Neg => {
                    self.bdms.delete(path.clone(), rel, old, Sign::Neg)?;
                    self.bdms.insert(path.clone(), rel, new, Sign::Neg)?;
                }
            }
            updated += 1;
        }
        Ok(ExecResult::Updated(updated))
    }
}

/// Record one finished statement execution into the per-fingerprint
/// statistics: wall time, row count, error flag, and the plan-cache /
/// spill counter deltas bracketing the run. Only called with tracking
/// enabled — the disabled path never reaches here.
fn record_statement_capture(
    sql: &str,
    t0: Instant,
    before: &MetricsSnapshot,
    rows: u64,
    error: bool,
) {
    let after = metrics().snapshot();
    let delta = |m: Metric| after.get(m).saturating_sub(before.get(m));
    record_statement(
        sql,
        StatementObs {
            wall_ns: t0.elapsed().as_nanos() as u64,
            rows,
            error,
            cache_hits: delta(Metric::PlanCacheHits),
            cache_misses: delta(Metric::PlanCacheMisses),
            spill_bytes: delta(Metric::SpillBytes),
            peak_buffered: 0,
        },
    );
}

/// The streaming path has no sort/cap stage and no virtual-scan route;
/// refuse what it cannot honor rather than silently dropping clauses.
fn streaming_supported(sel: &SelectStmt) -> Result<()> {
    if sel.from.iter().any(|f| f.table.starts_with(SYS_PREFIX)) {
        return Err(SqlError::Lower(
            "system tables are not streamable; use query()".into(),
        ));
    }
    if !sel.order_by.is_empty() || sel.limit.is_some() {
        return Err(SqlError::Lower(
            "ORDER BY / LIMIT are not supported on the streaming path; use query()".into(),
        ));
    }
    Ok(())
}

/// Refuse DML aimed at a `sys.*` virtual table with a clean error.
fn reject_sys_dml(action: &str, table: &str) -> Result<()> {
    if table.starts_with(SYS_PREFIX) {
        return Err(SqlError::Lower(format!(
            "cannot {action} system table `{table}`: sys.* relations are read-only"
        )));
    }
    Ok(())
}

/// Lift a storage-layer error through the core error type.
fn storage_err(e: beliefdb_storage::StorageError) -> SqlError {
    SqlError::Core(BeliefError::from(e))
}

/// The diagnostic emitted when lowering detects contradictory constants
/// (e.g. `WHERE x = 1 AND x = 2` over the same column): the query is
/// provably empty before any plan is built.
fn contradictory_constants_diag() -> Diagnostic {
    Diagnostic::warning(
        codes::PROVABLY_EMPTY,
        "contradictory constants in the WHERE clause: the query returns no rows",
    )
}

/// Resolve ORDER BY keys against a select list's column labels: an
/// exact label match (`S.sid`), or for an unqualified key the label's
/// final `.`-separated component.
fn resolve_order_keys(
    columns: &[String],
    order_by: &[(ColumnRef, bool)],
) -> Result<Vec<(usize, bool)>> {
    order_by
        .iter()
        .map(|(c, desc)| {
            let target = c.to_string();
            let found = columns.iter().position(|l| *l == target).or_else(|| {
                if c.qualifier.is_none() {
                    columns
                        .iter()
                        .position(|l| l.rsplit('.').next() == Some(c.column.as_str()))
                } else {
                    None
                }
            });
            match found {
                Some(i) => Ok((i, *desc)),
                None => Err(SqlError::Lower(format!(
                    "ORDER BY column `{target}` is not in the select list"
                ))),
            }
        })
        .collect()
}

/// Compare two rows under resolved `(column, descending)` keys.
fn cmp_order(keys: &[(usize, bool)], a: &Row, b: &Row) -> std::cmp::Ordering {
    for &(i, desc) in keys {
        let ord = a[i].cmp(&b[i]);
        if ord != std::cmp::Ordering::Equal {
            return if desc { ord.reverse() } else { ord };
        }
    }
    std::cmp::Ordering::Equal
}

/// The largest ` peak_bytes=N` figure in an `EXPLAIN ANALYZE` profile
/// rendering (0 when no operator reported one).
fn max_peak_bytes(profile: &str) -> u64 {
    let mut max = 0u64;
    for tail in profile.split("peak_bytes=").skip(1) {
        let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(v) = digits.parse::<u64>() {
            max = max.max(v);
        }
    }
    max
}

/// If `sql` is an `EXPLAIN <statement>`, return the inner statement text.
fn strip_explain(sql: &str) -> Option<&str> {
    let trimmed = sql.trim_start();
    let head = trimmed.get(..7)?;
    if head.eq_ignore_ascii_case("explain") && trimmed[7..].starts_with(char::is_whitespace) {
        Some(trimmed[7..].trim_start())
    } else {
        None
    }
}

/// If `rest` (the text after `EXPLAIN`) begins with the `ANALYZE`
/// keyword, return the statement after it.
fn strip_analyze(rest: &str) -> Option<&str> {
    let head = rest.get(..7)?;
    if head.eq_ignore_ascii_case("analyze") && rest[7..].starts_with(char::is_whitespace) {
        Some(rest[7..].trim_start())
    } else {
        None
    }
}

/// Evaluates a DML WHERE clause against single-table rows.
struct RowMatcher {
    conds: Vec<(CondSide, beliefdb_storage::CmpOp, CondSide)>,
}

enum CondSide {
    Col(usize),
    Lit(Value),
}

impl RowMatcher {
    fn new(
        bdms: &Bdms,
        rel: beliefdb_core::RelId,
        binding: &str,
        conditions: &[Condition],
    ) -> Result<Self> {
        let def = bdms.schema().relation(rel)?;
        let resolve = |c: &ColumnRef| -> Result<usize> {
            if let Some(q) = &c.qualifier {
                if q != binding {
                    return Err(SqlError::Lower(format!(
                        "unknown alias `{q}` in single-table statement"
                    )));
                }
            }
            def.column_index(&c.column)
                .ok_or_else(|| SqlError::Lower(format!("no column `{}`", c.column)))
        };
        let mut conds = Vec::with_capacity(conditions.len());
        for c in conditions {
            let side = |o: &Operand| -> Result<CondSide> {
                Ok(match o {
                    Operand::Column(c) => CondSide::Col(resolve(c)?),
                    Operand::Literal(l) => CondSide::Lit(l.to_value()),
                })
            };
            conds.push((side(&c.left)?, c.op, side(&c.right)?));
        }
        Ok(RowMatcher { conds })
    }

    fn matches(&self, row: &Row) -> bool {
        self.conds.iter().all(|(l, op, r)| {
            let val = |s: &CondSide| match s {
                CondSide::Col(i) => row[*i].clone(),
                CondSide::Lit(v) => v.clone(),
            };
            op.eval(&val(l), &val(r))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        let schema = ExternalSchema::new()
            .with_relation("Sightings", &["sid", "uid", "species", "date", "location"]);
        let mut s = Session::new(schema).unwrap();
        s.add_user("Alice").unwrap();
        s.add_user("Bob").unwrap();
        s.execute(
            "insert into BELIEF 'Alice' Sightings values \
             ('s2','Alice','crow','6-14-08','Lake Placid')",
        )
        .unwrap();
        s.execute(
            "insert into BELIEF 'Bob' Sightings values \
             ('s2','Alice','raven','6-14-08','Lake Placid')",
        )
        .unwrap();
        s
    }

    #[test]
    fn durable_session_round_trips_queries_and_stats() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "beliefdb-session-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let schema = ExternalSchema::new()
            .with_relation("Sightings", &["sid", "uid", "species", "date", "location"]);
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let (rows, stats) = {
            let mut s = Session::create(&dir, schema).unwrap();
            s.add_user("Alice").unwrap();
            s.add_user("Bob").unwrap();
            s.execute(
                "insert into BELIEF 'Alice' Sightings values \
                 ('s2','Alice','crow','6-14-08','Lake Placid')",
            )
            .unwrap();
            s.checkpoint().unwrap();
            s.execute(
                "insert into BELIEF 'Bob' Sightings values \
                 ('s2','Alice','raven','6-14-08','Lake Placid')",
            )
            .unwrap();
            (s.query(sql).unwrap(), s.bdms().stats())
        };
        let reopened = Session::open(&dir).unwrap();
        assert_eq!(reopened.query(sql).unwrap(), rows);
        assert_eq!(reopened.bdms().stats(), stats);
        // A second create in the same directory is refused.
        assert!(Session::create(&dir, ExternalSchema::new().with_relation("X", &["a"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_streaming_matches_collected_select() {
        let s = session();
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let collected = s.query(sql).unwrap();
        let mut streamed = Vec::new();
        let (columns, n) = s.query_streaming(sql, |row| streamed.push(row)).unwrap();
        streamed.sort();
        assert_eq!(streamed, collected.rows());
        assert_eq!(n, collected.rows().len());
        assert_eq!(columns, collected.columns());
    }

    #[test]
    fn query_streaming_feeds_the_slowlog_when_armed() {
        let s = session();
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let collected = s.query(sql).unwrap();
        s.set_slowlog_threshold_ms(Some(0));
        let mut streamed = Vec::new();
        let (columns, n) = s.query_streaming(sql, |row| streamed.push(row)).unwrap();
        s.set_slowlog_threshold_ms(None);
        // Same answers as the unarmed path...
        streamed.sort();
        assert_eq!(streamed, collected.rows());
        assert_eq!(n, collected.rows().len());
        assert_eq!(columns, collected.columns());
        // ...and the capture carries the span chain plus a full profile.
        let entries = s.slowlog_entries();
        let trace = entries
            .iter()
            .find(|t| t.statement == sql)
            .expect("streaming statement captured");
        for span in ["parse", "lower", "execute"] {
            assert!(
                trace.spans.iter().any(|s| s.name == span),
                "missing span {span}"
            );
        }
        assert!(trace.profile.as_deref().unwrap().contains("| actual "));
        s.clear_slowlog();
    }

    #[test]
    fn query_streaming_rejects_dml_and_handles_contradictions() {
        let s = session();
        assert!(s
            .query_streaming("insert into Sightings values ('a','b','c','d','e')", |_| {})
            .is_err());
        // Contradictory constants lower to "no query": zero rows, labels
        // still reported.
        let (columns, n) = s
            .query_streaming(
                "select S.sid from BELIEF 'Bob' Sightings as S \
                 where S.sid = 's1' and S.sid = 's2'",
                |_| panic!("no rows expected"),
            )
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(columns, vec!["S.sid".to_string()]);
    }

    #[test]
    fn memory_budget_threads_through_select_and_explain() {
        let mut s = session();
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let want = s.query(sql).unwrap();
        assert_eq!(s.memory_budget(), None);
        s.set_memory_budget(Some(0));
        assert_eq!(s.memory_budget(), Some(0));
        // Identical answers under a zero budget (everything spills)...
        assert_eq!(s.query(sql).unwrap(), want);
        // ...and EXPLAIN carries the spill tags.
        let text = s.explain(sql).unwrap();
        assert!(text.contains("[spill budget="), "{text}");
        s.set_memory_budget(None);
        assert!(!s.explain(sql).unwrap().contains("[spill"));
    }

    #[test]
    fn explain_statement_form() {
        let s = session();
        let sql = "explain select S.sid from BELIEF 'Bob' Sightings as S";
        let result = s.query(sql).unwrap();
        let ExecResult::Explain(text) = &result else {
            panic!("expected EXPLAIN result, got {result:?}");
        };
        assert!(text.contains("belief conjunctive query"), "{text}");
        assert!(text.contains("Algorithm 1 translation"), "{text}");
        assert!(text.contains("optimized physical plans"), "{text}");
        assert!(text.contains("Scan"), "{text}");
        // Case-insensitive keyword, and execute() handles it too.
        let mut s = session();
        let upper = s.execute("EXPLAIN select S.sid from BELIEF 'Bob' Sightings as S");
        assert!(matches!(upper, Ok(ExecResult::Explain(_))));
    }

    #[test]
    fn explain_is_deterministic() {
        let s = session();
        let sql = "explain select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let a = s.query(sql).unwrap();
        let b = s.query(sql).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explain_rejects_dml() {
        let s = session();
        assert!(s
            .query("explain insert into Sightings values ('x','y','z','d','l')")
            .is_err());
    }

    #[test]
    fn explain_display_renders_text() {
        let s = session();
        let result = s
            .query("explain select S.sid from BELIEF 'Bob' Sightings as S")
            .unwrap();
        assert!(result.to_string().contains("physical plans"));
        assert!(result.rows().is_empty());
        assert!(result.columns().is_empty());
    }

    #[test]
    fn strip_explain_parses_prefix_only() {
        assert!(strip_explain("explain select 1").is_some());
        assert!(strip_explain("  EXPLAIN  select 1").is_some());
        assert!(strip_explain("explainselect 1").is_none());
        assert!(strip_explain("select 1").is_none());
        assert!(strip_explain("ex").is_none());
        // ANALYZE is recognized only as a whole keyword after EXPLAIN.
        assert_eq!(
            strip_explain("explain analyze select 1").and_then(strip_analyze),
            Some("select 1")
        );
        assert_eq!(
            strip_explain("EXPLAIN ANALYZE  select 1").and_then(strip_analyze),
            Some("select 1")
        );
        assert!(strip_explain("explain analyzeselect 1")
            .and_then(strip_analyze)
            .is_none());
        assert!(strip_explain("explain select 1")
            .and_then(strip_analyze)
            .is_none());
    }

    #[test]
    fn explain_analyze_statement_form_reports_actuals() {
        let s = session();
        let sql = "explain analyze select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let result = s.query(sql).unwrap();
        let ExecResult::Explain(text) = &result else {
            panic!("expected EXPLAIN result, got {result:?}");
        };
        assert!(text.contains("belief conjunctive query"), "{text}");
        assert!(text.contains("analyzed physical plans"), "{text}");
        assert!(text.contains("| actual rows="), "{text}");
        assert!(text.contains("time="), "{text}");
        assert!(text.contains("row returned"), "{text}");
        // The actual root cardinality matches the executed SELECT.
        let plain = s
            .query("select S.sid, S.species from BELIEF 'Bob' Sightings as S")
            .unwrap();
        assert!(
            text.contains(&format!(
                "-- {} row{} returned",
                plain.rows().len(),
                if plain.rows().len() == 1 { "" } else { "s" }
            )),
            "{text}"
        );
        // execute() handles the form too, and DML is rejected.
        let mut s2 = session();
        assert!(matches!(
            s2.execute("EXPLAIN ANALYZE select S.sid from BELIEF 'Bob' Sightings as S"),
            Ok(ExecResult::Explain(_))
        ));
        assert!(s
            .query("explain analyze insert into Sightings values ('x','y','z','d','l')")
            .is_err());
    }

    #[test]
    fn sys_tables_queryable_and_read_only() {
        let mut s = session();
        let sel = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        s.query(sel).unwrap();

        // sys.metrics is an ordinary relation mirroring the registry.
        let m = s.query("select * from sys.metrics").unwrap();
        assert_eq!(m.columns(), ["name", "value"]);
        assert!(!m.rows().is_empty());

        // WHERE + projection + alias over a virtual table.
        let w = s
            .query("select m.value from sys.metrics m where m.name = 'query.executed'")
            .unwrap();
        assert_eq!(w.rows().len(), 1);
        assert!(w.rows()[0][0].as_int().unwrap() > 0);

        // The acceptance query, end-to-end through the chunked executor.
        let top = s
            .query("SELECT * FROM sys.statements ORDER BY total_time_ns DESC LIMIT 5")
            .unwrap();
        assert_eq!(top.columns().len(), 13);
        assert!(top.rows().len() <= 5);
        // Rows really are sorted descending on total_time_ns (column 4).
        let times: Vec<i64> = top.rows().iter().map(|r| r[4].as_int().unwrap()).collect();
        assert!(times.windows(2).all(|w| w[0] >= w[1]), "{times:?}");

        // Our SELECT shows up fingerprinted with its literal normalized.
        let stmts = s.query("select statement from sys.statements").unwrap();
        assert!(
            stmts
                .rows()
                .iter()
                .any(|r| r[0].as_str().unwrap().contains("belief ? sightings")),
            "normalized statement missing"
        );

        // sys.tables lists the internal star tables.
        let t = s.query("select name from sys.tables").unwrap();
        assert!(t
            .rows()
            .iter()
            .any(|r| r[0] == Value::str("Sightings__star")));

        // The sys path never touches the plan cache.
        let before = s.bdms().plan_cache_stats();
        s.query("select * from sys.plan_cache").unwrap();
        s.query("select * from sys.slowlog").unwrap();
        s.query("select * from sys.wal").unwrap();
        let after = s.bdms().plan_cache_stats();
        assert_eq!(before.hits + before.misses, after.hits + after.misses);
        assert_eq!(before.entries, after.entries);

        // An in-memory session has an empty sys.wal.
        assert!(s.query("select * from sys.wal").unwrap().rows().is_empty());

        // DML against sys.* is refused with a clean error.
        for dml in [
            "insert into sys.metrics values (1)",
            "delete from sys.metrics",
            "update sys.metrics set value = 0",
        ] {
            let err = s.execute(dml).unwrap_err();
            assert!(err.to_string().contains("read-only"), "{dml}: {err}");
        }

        // BELIEF prefixes, joins with base tables, and unknown sys names
        // are clean errors too.
        assert!(s.query("select * from BELIEF 'Bob' sys.metrics").is_err());
        assert!(s.query("select * from sys.metrics, Sightings").is_err());
        assert!(s.query("select * from sys.nonexistent").is_err());
        // Streaming declines sys tables rather than mis-serving them.
        assert!(s
            .query_streaming("select * from sys.metrics", |_| {})
            .is_err());

        // EXPLAIN / EXPLAIN ANALYZE render the virtual-scan plan.
        let text = s
            .query("explain select * from sys.metrics")
            .unwrap()
            .to_string();
        assert!(text.contains("Scan sys.metrics"), "{text}");
        let text = s
            .query("explain analyze select * from sys.metrics")
            .unwrap()
            .to_string();
        assert!(text.contains("| actual"), "{text}");
    }

    #[test]
    fn order_by_and_limit_post_process_belief_selects() {
        let mut s = session();
        s.execute(
            "insert into BELIEF 'Bob' Sightings values \
             ('s3','Bob','albatross','6-15-08','Lake Placid')",
        )
        .unwrap();
        let asc = s
            .query("select S.sid, S.species from BELIEF 'Bob' Sightings as S order by species")
            .unwrap();
        let species: Vec<&str> = asc.rows().iter().map(|r| r[1].as_str().unwrap()).collect();
        assert_eq!(species, ["albatross", "raven"]);
        let desc = s
            .query(
                "select S.sid, S.species from BELIEF 'Bob' Sightings as S \
                 order by S.species desc limit 1",
            )
            .unwrap();
        assert_eq!(desc.rows().len(), 1);
        assert_eq!(desc.rows()[0][1], Value::str("raven"));
        // A key outside the select list is an error, not a silent no-op.
        let err = s
            .query("select S.sid from BELIEF 'Bob' Sightings as S order by location")
            .unwrap_err();
        assert!(err.to_string().contains("ORDER BY"), "{err}");
        // Streaming refuses ORDER BY / LIMIT instead of dropping them.
        assert!(s
            .query_streaming(
                "select S.sid from BELIEF 'Bob' Sightings as S limit 1",
                |_| {}
            )
            .is_err());
    }

    #[test]
    fn statement_stats_accumulate_for_session_statements() {
        use beliefdb_storage::obs::{fingerprint, statements_snapshot};
        let s = session();
        // A distinctive statement so parallel tests can't collide.
        let sql = "select S.sid from BELIEF 'Bob' Sightings as S \
                   where S.location = 'statement-stats-probe'";
        let fp = fingerprint(sql);
        let calls_before = statements_snapshot()
            .into_iter()
            .find(|st| st.fingerprint == fp)
            .map(|st| st.calls)
            .unwrap_or(0);
        s.query(sql).unwrap();
        s.query(sql).unwrap();
        let stat = statements_snapshot()
            .into_iter()
            .find(|st| st.fingerprint == fp)
            .expect("statement tracked");
        assert_eq!(stat.calls, calls_before + 2);
        assert!(stat.total_ns >= stat.min_ns);
        assert!(stat.max_ns >= stat.min_ns);
        // Different literals, same fingerprint: the probe normalizes to
        // the same text as a changed-literal variant.
        let variant = "select S.sid from BELIEF 'Bob' Sightings as S \
                       where S.location = 'another-literal'";
        assert_eq!(fp, fingerprint(variant));
        // Errors are counted, not dropped.
        let bad = "select S.nope from BELIEF 'Bob' Sightings as S \
                   where S.location = 'statement-stats-probe-err'";
        let bad_fp = fingerprint(bad);
        let _ = s.query(bad);
        let stat = statements_snapshot()
            .into_iter()
            .find(|st| st.fingerprint == bad_fp)
            .expect("failed statement tracked");
        assert!(stat.errors >= 1);
    }

    #[test]
    fn slowlog_captures_sql_statements_with_spans() {
        let s = session();
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        assert_eq!(s.slowlog_threshold_ms(), None);
        s.query(sql).unwrap();
        assert!(s.slowlog_entries().is_empty());

        s.set_slowlog_threshold_ms(Some(0));
        s.query(sql).unwrap();
        let entries = s.slowlog_entries();
        assert_eq!(entries.len(), 1);
        let trace = &entries[0];
        assert_eq!(trace.statement, sql);
        let names: Vec<&str> = trace.spans.iter().map(|sp| sp.name).collect();
        for expected in [
            "parse",
            "lower",
            "translate",
            "cache_lookup",
            "execute",
            "sort",
        ] {
            assert!(
                names.contains(&expected),
                "missing span {expected}: {names:?}"
            );
        }
        assert!(
            trace.profile.as_deref().unwrap().contains("| actual"),
            "{trace:?}"
        );
        // Identical answers with the slowlog armed (profiled path).
        let plain = {
            s.set_slowlog_threshold_ms(None);
            s.query(sql).unwrap()
        };
        s.set_slowlog_threshold_ms(Some(0));
        assert_eq!(s.query(sql).unwrap(), plain);
        s.clear_slowlog();
        assert!(s.slowlog_entries().is_empty());
    }
}
