//! Interactive sessions: parse → lower → execute against a [`Bdms`].

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lower::{lower_dml_prefix, SelectLowerer};
use crate::parser::parse;
use beliefdb_core::internal::InsertOutcome;
use beliefdb_core::{Bdms, ExternalSchema, GroundTuple, Sign};
use beliefdb_storage::{QueryTrace, Recorder, Row, Value};
use std::fmt;

/// Result of executing one BeliefSQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// `SELECT`: column labels and (sorted, deduplicated) rows.
    Rows {
        columns: Vec<String>,
        rows: Vec<Row>,
    },
    /// `INSERT`: what Algorithm 4 did with the statement.
    Inserted(InsertOutcome),
    /// `DELETE`: number of explicit statements removed.
    Deleted(usize),
    /// `UPDATE`: number of tuples rewritten.
    Updated(usize),
    /// `EXPLAIN <select>`: the lowered query, its Datalog translation, and
    /// the optimized physical plan of every rule.
    Explain(String),
}

impl ExecResult {
    /// Rows of a `SELECT` result (empty for DML).
    pub fn rows(&self) -> &[Row] {
        match self {
            ExecResult::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// Column labels of a `SELECT` result.
    pub fn columns(&self) -> &[String] {
        match self {
            ExecResult::Rows { columns, .. } => columns,
            _ => &[],
        }
    }
}

impl fmt::Display for ExecResult {
    /// Render as an aligned text table (for examples and the REPL-style
    /// binaries).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecResult::Inserted(outcome) => write!(f, "-- insert: {outcome:?}"),
            ExecResult::Deleted(n) => write!(f, "-- deleted {n} statement(s)"),
            ExecResult::Updated(n) => write!(f, "-- updated {n} tuple(s)"),
            ExecResult::Explain(text) => write!(f, "{}", text.trim_end()),
            ExecResult::Rows { columns, rows } => {
                let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|r| r.values().iter().map(|v| v.to_string()).collect())
                    .collect();
                for row in &rendered {
                    for (i, cell) in row.iter().enumerate() {
                        if i < widths.len() {
                            widths[i] = widths[i].max(cell.len());
                        }
                    }
                }
                let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
                    write!(f, "|")?;
                    for (i, c) in cells.iter().enumerate() {
                        write!(
                            f,
                            " {c:<w$} |",
                            w = widths.get(i).copied().unwrap_or(c.len())
                        )?;
                    }
                    writeln!(f)
                };
                line(f, columns)?;
                write!(f, "|")?;
                for w in &widths {
                    write!(f, "{:-<w$}|", "", w = w + 2)?;
                }
                writeln!(f)?;
                for row in &rendered {
                    line(f, row)?;
                }
                write!(
                    f,
                    "({} row{})",
                    rows.len(),
                    if rows.len() == 1 { "" } else { "s" }
                )
            }
        }
    }
}

/// A BeliefSQL session owning a BDMS instance.
pub struct Session {
    bdms: Bdms,
}

impl Session {
    /// Open a session over a fresh in-memory BDMS with the given
    /// external schema.
    pub fn new(schema: ExternalSchema) -> Result<Self> {
        Ok(Session {
            bdms: Bdms::new(schema)?,
        })
    }

    /// Initialize a session over a **durable** BDMS in `dir` (created
    /// if missing; errors when the directory already holds a belief
    /// database). Every DML statement is write-ahead logged.
    pub fn create(dir: impl AsRef<std::path::Path>, schema: ExternalSchema) -> Result<Self> {
        Ok(Session {
            bdms: Bdms::create(dir, schema)?,
        })
    }

    /// Recover a session from a durable directory: the latest snapshot
    /// is loaded and the WAL tail replayed, so query answers and
    /// statistics match the pre-shutdown state exactly.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Ok(Session {
            bdms: Bdms::open(dir)?,
        })
    }

    /// Snapshot the current state and truncate the covered WAL
    /// (durable sessions only).
    pub fn checkpoint(&mut self) -> Result<u64> {
        Ok(self.bdms.checkpoint()?)
    }

    /// Wrap an existing BDMS.
    pub fn from_bdms(bdms: Bdms) -> Self {
        Session { bdms }
    }

    /// Bound the memory each query's materialization points (hash-join
    /// builds, aggregates, sorts, distincts) may hold; past the budget
    /// they spill to disk (grace hash join, external merge sort). The
    /// shell exposes this as `\set memory <bytes>`. `None` (the
    /// default) keeps everything in memory.
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.bdms.set_memory_budget(bytes);
    }

    /// The per-query memory budget in effect (`None` = unlimited).
    pub fn memory_budget(&self) -> Option<usize> {
        self.bdms.memory_budget()
    }

    /// Toggle the magic-sets / SIP rewrite (demand-driven evaluation of
    /// bound belief queries). On by default; the shell exposes this as
    /// `\set magic on|off`. Off runs the unrewritten Algorithm 1 rule
    /// stack, byte-identical to the pre-rewrite engine.
    pub fn set_magic(&mut self, on: bool) {
        self.bdms.set_magic(on);
    }

    /// Whether the magic-sets rewrite is applied to queries.
    pub fn magic_enabled(&self) -> bool {
        self.bdms.magic_enabled()
    }

    pub fn bdms(&self) -> &Bdms {
        &self.bdms
    }

    pub fn bdms_mut(&mut self) -> &mut Bdms {
        &mut self.bdms
    }

    /// Register a user (not part of the Fig. 1 grammar; the paper manages
    /// users out of band, Sect. 5.3).
    pub fn add_user(&mut self, name: impl Into<String>) -> Result<beliefdb_core::UserId> {
        Ok(self.bdms.add_user(name)?)
    }

    /// Parse and execute one statement. `EXPLAIN <select>` and
    /// `EXPLAIN ANALYZE <select>` are handled here as statement forms.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult> {
        if let Some(rest) = strip_explain(sql) {
            if let Some(inner) = strip_analyze(rest) {
                return Ok(ExecResult::Explain(self.explain_analyze(inner)?));
            }
            return Ok(ExecResult::Explain(self.explain(rest)?));
        }
        let mut rec = self.recorder(sql);
        let stmt = rec.span("parse", || parse(sql))?;
        let result = match stmt {
            Statement::Select(sel) => self.run_select(&sel, &mut rec),
            Statement::Insert(ins) => self.run_insert(&ins),
            Statement::Delete(del) => self.run_delete(&del),
            Statement::Update(up) => self.run_update(&up),
        };
        self.observe(rec);
        result
    }

    /// Parse and execute a read-only statement (`SELECT`, `EXPLAIN`, or
    /// `EXPLAIN ANALYZE`).
    pub fn query(&self, sql: &str) -> Result<ExecResult> {
        if let Some(rest) = strip_explain(sql) {
            if let Some(inner) = strip_analyze(rest) {
                return Ok(ExecResult::Explain(self.explain_analyze(inner)?));
            }
            return Ok(ExecResult::Explain(self.explain(rest)?));
        }
        let mut rec = self.recorder(sql);
        let stmt = rec.span("parse", || parse(sql))?;
        let result = match stmt {
            Statement::Select(sel) => self.run_select(&sel, &mut rec),
            _ => Err(SqlError::Lower(
                "query() only accepts SELECT statements".into(),
            )),
        };
        self.observe(rec);
        result
    }

    /// A span recorder for one statement: enabled (so the run is traced
    /// and profiled) only while the slow-query log is armed — otherwise
    /// the disabled recorder, whose every hook is a single branch.
    fn recorder(&self, sql: &str) -> Recorder {
        if self.bdms.slowlog().enabled() {
            Recorder::enabled(sql.trim())
        } else {
            Recorder::disabled()
        }
    }

    /// Hand a finished trace to the slow-query log (no-op when the
    /// recorder was disabled).
    fn observe(&self, rec: Recorder) {
        if let Some(trace) = rec.finish() {
            self.bdms.slowlog().observe(trace);
        }
    }

    /// Execute a `SELECT`, streaming result rows into `on_row` as the
    /// final Datalog rule of the Algorithm 1 translation produces them:
    /// nothing is collected, so the first row reaches the consumer before
    /// the query finishes and an interrupted consumer never pays for the
    /// full result. Rows are deduplicated but arrive in executor order
    /// (unsorted — use [`Session::query`] for the sorted table). Under
    /// the vectorized executor rows are produced a chunk at a time
    /// upstream; this sink still sees them one by one, so existing
    /// consumers are source-compatible.
    ///
    /// Returns the column labels and the number of rows emitted.
    ///
    /// When the slow-query log is armed the statement runs through the
    /// traced (collecting) path instead so a capture carries the full
    /// per-operator profile, and rows are replayed to `on_row` after the
    /// fact — observability trades away streaming for that statement.
    /// With the slowlog off (the default) nothing changes.
    pub fn query_streaming(
        &self,
        sql: &str,
        mut on_row: impl FnMut(Row),
    ) -> Result<(Vec<String>, usize)> {
        if self.bdms.slowlog().enabled() {
            let mut rec = self.recorder(sql);
            let stmt = rec.span("parse", || parse(sql))?;
            let Statement::Select(sel) = stmt else {
                return Err(SqlError::Lower(
                    "query_streaming() only accepts SELECT statements".into(),
                ));
            };
            let lowered = rec.span("lower", || SelectLowerer::lower(&self.bdms, &sel))?;
            let mut emitted = 0usize;
            if let Some(q) = &lowered.query {
                for row in self.bdms.query_traced(q, &mut rec)? {
                    emitted += 1;
                    on_row(row);
                }
            }
            self.observe(rec);
            return Ok((lowered.columns, emitted));
        }
        let Statement::Select(sel) = parse(sql)? else {
            return Err(SqlError::Lower(
                "query_streaming() only accepts SELECT statements".into(),
            ));
        };
        let lowered = SelectLowerer::lower(&self.bdms, &sel)?;
        let mut emitted = 0usize;
        if let Some(q) = &lowered.query {
            self.bdms.query_streaming(q, |row| {
                emitted += 1;
                on_row(row);
            })?;
        }
        Ok((lowered.columns, emitted))
    }

    /// EXPLAIN: show how a SELECT runs — the belief conjunctive query it
    /// lowers to, the non-recursive Datalog program Algorithm 1 produces,
    /// and the optimized physical plan of every rule.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let Statement::Select(sel) = parse(sql)? else {
            return Err(SqlError::Lower(
                "explain() only accepts SELECT statements".into(),
            ));
        };
        let lowered = SelectLowerer::lower(&self.bdms, &sel)?;
        let mut out = String::new();
        match &lowered.query {
            None => out.push_str("-- contradictory constants: empty result\n"),
            Some(q) => {
                out.push_str(&format!("-- belief conjunctive query (Def. 13):\n{q}\n\n"));
                let translated = self.bdms.translate(q)?;
                out.push_str("-- Algorithm 1 translation (non-recursive Datalog over R*):\n");
                out.push_str(&translated.program.to_string());
                out.push_str("\n-- optimized physical plans:\n");
                out.push_str(&self.bdms.explain_query(q)?);
            }
        }
        Ok(out)
    }

    /// `EXPLAIN ANALYZE`: actually run the SELECT with per-operator
    /// profiling on, then render the lowered query and each answer-rule
    /// plan annotated with estimated **and** actual rows, chunks, wall
    /// time, kernel-vs-fallback filter rows, and spill traffic.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let Statement::Select(sel) = parse(sql)? else {
            return Err(SqlError::Lower(
                "explain analyze only accepts SELECT statements".into(),
            ));
        };
        let lowered = SelectLowerer::lower(&self.bdms, &sel)?;
        let mut out = String::new();
        match &lowered.query {
            None => out.push_str("-- contradictory constants: empty result\n"),
            Some(q) => {
                out.push_str(&format!("-- belief conjunctive query (Def. 13):\n{q}\n\n"));
                let (rows, report) = self.bdms.explain_analyze_query(q)?;
                out.push_str("-- analyzed physical plans (est vs actual):\n");
                out.push_str(&report);
                out.push_str(&format!(
                    "-- {} row{} returned\n",
                    rows.len(),
                    if rows.len() == 1 { "" } else { "s" }
                ));
            }
        }
        Ok(out)
    }

    /// Arm (or disarm, with `None`) the slow-query log: statements whose
    /// total wall time crosses the threshold are captured with their SQL
    /// text, span timings (parse → lower → translate → cache lookup →
    /// execute → sort), and full `EXPLAIN ANALYZE` profile. The shell
    /// exposes this as `\set slowlog <ms|off>`.
    pub fn set_slowlog_threshold_ms(&self, ms: Option<u64>) {
        self.bdms.set_slowlog_threshold_ms(ms);
    }

    /// The slow-query capture threshold in ms (`None` = off).
    pub fn slowlog_threshold_ms(&self) -> Option<u64> {
        self.bdms.slowlog_threshold_ms()
    }

    /// Captured slow statements, oldest first (bounded ring).
    pub fn slowlog_entries(&self) -> Vec<QueryTrace> {
        self.bdms.slowlog_entries()
    }

    /// Drop captured slow statements (the threshold is unchanged).
    pub fn clear_slowlog(&self) {
        self.bdms.clear_slowlog();
    }

    fn run_select(&self, sel: &SelectStmt, rec: &mut Recorder) -> Result<ExecResult> {
        let lowered = rec.span("lower", || SelectLowerer::lower(&self.bdms, sel))?;
        let rows = match &lowered.query {
            None => Vec::new(), // contradictory constants: empty result
            Some(q) => self.bdms.query_traced(q, rec)?,
        };
        Ok(ExecResult::Rows {
            columns: lowered.columns,
            rows,
        })
    }

    fn run_insert(&mut self, ins: &InsertStmt) -> Result<ExecResult> {
        let (path, sign) = lower_dml_prefix(&self.bdms, &ins.prefix)?;
        let rel = self.bdms.schema().relation_id(&ins.table)?;
        let row = Row::new(ins.values.iter().map(|l| l.to_value()).collect::<Vec<_>>());
        let outcome = self.bdms.insert(path, rel, row, sign)?;
        Ok(ExecResult::Inserted(outcome))
    }

    fn run_delete(&mut self, del: &DeleteStmt) -> Result<ExecResult> {
        let (path, sign) = lower_dml_prefix(&self.bdms, &del.prefix)?;
        let rel = self.bdms.schema().relation_id(&del.table)?;
        let binding = del.alias.as_deref().unwrap_or(&del.table);
        let matcher = RowMatcher::new(&self.bdms, rel, binding, &del.conditions)?;

        let victims: Vec<GroundTuple> = self
            .bdms
            .explicit_statements_at(&path)?
            .into_iter()
            .filter(|s| s.tuple.rel == rel && s.sign == sign && matcher.matches(&s.tuple.row))
            .map(|s| s.tuple)
            .collect();
        let mut deleted = 0;
        for t in victims {
            if self.bdms.delete(path.clone(), rel, t.row, sign)? {
                deleted += 1;
            }
        }
        Ok(ExecResult::Deleted(deleted))
    }

    fn run_update(&mut self, up: &UpdateStmt) -> Result<ExecResult> {
        let (path, sign) = lower_dml_prefix(&self.bdms, &up.prefix)?;
        let rel = self.bdms.schema().relation_id(&up.table)?;
        let def = self.bdms.schema().relation(rel)?;
        let binding = up.alias.as_deref().unwrap_or(&up.table);
        let matcher = RowMatcher::new(&self.bdms, rel, binding, &up.conditions)?;

        let mut assignments: Vec<(usize, Value)> = Vec::with_capacity(up.assignments.len());
        for (col, lit) in &up.assignments {
            let idx = def
                .column_index(col)
                .ok_or_else(|| SqlError::Lower(format!("no column `{col}` in `{}`", up.table)))?;
            if idx == 0 {
                return Err(SqlError::Lower(
                    "cannot update the external key; insert a new tuple instead".into(),
                ));
            }
            assignments.push((idx, lit.to_value()));
        }

        // Positive updates revise what the world *believes* (Sect. 2's
        // "correct a sighting" semantics); negative updates rewrite stated
        // negatives.
        let targets: Vec<Row> = match sign {
            Sign::Pos => self
                .bdms
                .world(&path)?
                .pos_tuples()
                .filter(|t| t.rel == rel && matcher.matches(&t.row))
                .map(|t| t.row)
                .collect(),
            Sign::Neg => self
                .bdms
                .explicit_statements_at(&path)?
                .into_iter()
                .filter(|s| {
                    s.tuple.rel == rel && s.sign == Sign::Neg && matcher.matches(&s.tuple.row)
                })
                .map(|s| s.tuple.row)
                .collect(),
        };

        let mut updated = 0;
        for old in targets {
            let mut vals: Vec<Value> = old.values().to_vec();
            for (idx, v) in &assignments {
                vals[*idx] = v.clone();
            }
            let new = Row::new(vals);
            if new == old {
                continue;
            }
            match sign {
                Sign::Pos => {
                    self.bdms.update(path.clone(), rel, old, new)?;
                }
                Sign::Neg => {
                    self.bdms.delete(path.clone(), rel, old, Sign::Neg)?;
                    self.bdms.insert(path.clone(), rel, new, Sign::Neg)?;
                }
            }
            updated += 1;
        }
        Ok(ExecResult::Updated(updated))
    }
}

/// If `sql` is an `EXPLAIN <statement>`, return the inner statement text.
fn strip_explain(sql: &str) -> Option<&str> {
    let trimmed = sql.trim_start();
    let head = trimmed.get(..7)?;
    if head.eq_ignore_ascii_case("explain") && trimmed[7..].starts_with(char::is_whitespace) {
        Some(trimmed[7..].trim_start())
    } else {
        None
    }
}

/// If `rest` (the text after `EXPLAIN`) begins with the `ANALYZE`
/// keyword, return the statement after it.
fn strip_analyze(rest: &str) -> Option<&str> {
    let head = rest.get(..7)?;
    if head.eq_ignore_ascii_case("analyze") && rest[7..].starts_with(char::is_whitespace) {
        Some(rest[7..].trim_start())
    } else {
        None
    }
}

/// Evaluates a DML WHERE clause against single-table rows.
struct RowMatcher {
    conds: Vec<(CondSide, beliefdb_storage::CmpOp, CondSide)>,
}

enum CondSide {
    Col(usize),
    Lit(Value),
}

impl RowMatcher {
    fn new(
        bdms: &Bdms,
        rel: beliefdb_core::RelId,
        binding: &str,
        conditions: &[Condition],
    ) -> Result<Self> {
        let def = bdms.schema().relation(rel)?;
        let resolve = |c: &ColumnRef| -> Result<usize> {
            if let Some(q) = &c.qualifier {
                if q != binding {
                    return Err(SqlError::Lower(format!(
                        "unknown alias `{q}` in single-table statement"
                    )));
                }
            }
            def.column_index(&c.column)
                .ok_or_else(|| SqlError::Lower(format!("no column `{}`", c.column)))
        };
        let mut conds = Vec::with_capacity(conditions.len());
        for c in conditions {
            let side = |o: &Operand| -> Result<CondSide> {
                Ok(match o {
                    Operand::Column(c) => CondSide::Col(resolve(c)?),
                    Operand::Literal(l) => CondSide::Lit(l.to_value()),
                })
            };
            conds.push((side(&c.left)?, c.op, side(&c.right)?));
        }
        Ok(RowMatcher { conds })
    }

    fn matches(&self, row: &Row) -> bool {
        self.conds.iter().all(|(l, op, r)| {
            let val = |s: &CondSide| match s {
                CondSide::Col(i) => row[*i].clone(),
                CondSide::Lit(v) => v.clone(),
            };
            op.eval(&val(l), &val(r))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        let schema = ExternalSchema::new()
            .with_relation("Sightings", &["sid", "uid", "species", "date", "location"]);
        let mut s = Session::new(schema).unwrap();
        s.add_user("Alice").unwrap();
        s.add_user("Bob").unwrap();
        s.execute(
            "insert into BELIEF 'Alice' Sightings values \
             ('s2','Alice','crow','6-14-08','Lake Placid')",
        )
        .unwrap();
        s.execute(
            "insert into BELIEF 'Bob' Sightings values \
             ('s2','Alice','raven','6-14-08','Lake Placid')",
        )
        .unwrap();
        s
    }

    #[test]
    fn durable_session_round_trips_queries_and_stats() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "beliefdb-session-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let schema = ExternalSchema::new()
            .with_relation("Sightings", &["sid", "uid", "species", "date", "location"]);
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let (rows, stats) = {
            let mut s = Session::create(&dir, schema).unwrap();
            s.add_user("Alice").unwrap();
            s.add_user("Bob").unwrap();
            s.execute(
                "insert into BELIEF 'Alice' Sightings values \
                 ('s2','Alice','crow','6-14-08','Lake Placid')",
            )
            .unwrap();
            s.checkpoint().unwrap();
            s.execute(
                "insert into BELIEF 'Bob' Sightings values \
                 ('s2','Alice','raven','6-14-08','Lake Placid')",
            )
            .unwrap();
            (s.query(sql).unwrap(), s.bdms().stats())
        };
        let reopened = Session::open(&dir).unwrap();
        assert_eq!(reopened.query(sql).unwrap(), rows);
        assert_eq!(reopened.bdms().stats(), stats);
        // A second create in the same directory is refused.
        assert!(Session::create(&dir, ExternalSchema::new().with_relation("X", &["a"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_streaming_matches_collected_select() {
        let s = session();
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let collected = s.query(sql).unwrap();
        let mut streamed = Vec::new();
        let (columns, n) = s.query_streaming(sql, |row| streamed.push(row)).unwrap();
        streamed.sort();
        assert_eq!(streamed, collected.rows());
        assert_eq!(n, collected.rows().len());
        assert_eq!(columns, collected.columns());
    }

    #[test]
    fn query_streaming_feeds_the_slowlog_when_armed() {
        let s = session();
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let collected = s.query(sql).unwrap();
        s.set_slowlog_threshold_ms(Some(0));
        let mut streamed = Vec::new();
        let (columns, n) = s.query_streaming(sql, |row| streamed.push(row)).unwrap();
        s.set_slowlog_threshold_ms(None);
        // Same answers as the unarmed path...
        streamed.sort();
        assert_eq!(streamed, collected.rows());
        assert_eq!(n, collected.rows().len());
        assert_eq!(columns, collected.columns());
        // ...and the capture carries the span chain plus a full profile.
        let entries = s.slowlog_entries();
        let trace = entries
            .iter()
            .find(|t| t.statement == sql)
            .expect("streaming statement captured");
        for span in ["parse", "lower", "execute"] {
            assert!(
                trace.spans.iter().any(|s| s.name == span),
                "missing span {span}"
            );
        }
        assert!(trace.profile.as_deref().unwrap().contains("| actual "));
        s.clear_slowlog();
    }

    #[test]
    fn query_streaming_rejects_dml_and_handles_contradictions() {
        let s = session();
        assert!(s
            .query_streaming("insert into Sightings values ('a','b','c','d','e')", |_| {})
            .is_err());
        // Contradictory constants lower to "no query": zero rows, labels
        // still reported.
        let (columns, n) = s
            .query_streaming(
                "select S.sid from BELIEF 'Bob' Sightings as S \
                 where S.sid = 's1' and S.sid = 's2'",
                |_| panic!("no rows expected"),
            )
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(columns, vec!["S.sid".to_string()]);
    }

    #[test]
    fn memory_budget_threads_through_select_and_explain() {
        let mut s = session();
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let want = s.query(sql).unwrap();
        assert_eq!(s.memory_budget(), None);
        s.set_memory_budget(Some(0));
        assert_eq!(s.memory_budget(), Some(0));
        // Identical answers under a zero budget (everything spills)...
        assert_eq!(s.query(sql).unwrap(), want);
        // ...and EXPLAIN carries the spill tags.
        let text = s.explain(sql).unwrap();
        assert!(text.contains("[spill budget="), "{text}");
        s.set_memory_budget(None);
        assert!(!s.explain(sql).unwrap().contains("[spill"));
    }

    #[test]
    fn explain_statement_form() {
        let s = session();
        let sql = "explain select S.sid from BELIEF 'Bob' Sightings as S";
        let result = s.query(sql).unwrap();
        let ExecResult::Explain(text) = &result else {
            panic!("expected EXPLAIN result, got {result:?}");
        };
        assert!(text.contains("belief conjunctive query"), "{text}");
        assert!(text.contains("Algorithm 1 translation"), "{text}");
        assert!(text.contains("optimized physical plans"), "{text}");
        assert!(text.contains("Scan"), "{text}");
        // Case-insensitive keyword, and execute() handles it too.
        let mut s = session();
        let upper = s.execute("EXPLAIN select S.sid from BELIEF 'Bob' Sightings as S");
        assert!(matches!(upper, Ok(ExecResult::Explain(_))));
    }

    #[test]
    fn explain_is_deterministic() {
        let s = session();
        let sql = "explain select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let a = s.query(sql).unwrap();
        let b = s.query(sql).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explain_rejects_dml() {
        let s = session();
        assert!(s
            .query("explain insert into Sightings values ('x','y','z','d','l')")
            .is_err());
    }

    #[test]
    fn explain_display_renders_text() {
        let s = session();
        let result = s
            .query("explain select S.sid from BELIEF 'Bob' Sightings as S")
            .unwrap();
        assert!(result.to_string().contains("physical plans"));
        assert!(result.rows().is_empty());
        assert!(result.columns().is_empty());
    }

    #[test]
    fn strip_explain_parses_prefix_only() {
        assert!(strip_explain("explain select 1").is_some());
        assert!(strip_explain("  EXPLAIN  select 1").is_some());
        assert!(strip_explain("explainselect 1").is_none());
        assert!(strip_explain("select 1").is_none());
        assert!(strip_explain("ex").is_none());
        // ANALYZE is recognized only as a whole keyword after EXPLAIN.
        assert_eq!(
            strip_explain("explain analyze select 1").and_then(strip_analyze),
            Some("select 1")
        );
        assert_eq!(
            strip_explain("EXPLAIN ANALYZE  select 1").and_then(strip_analyze),
            Some("select 1")
        );
        assert!(strip_explain("explain analyzeselect 1")
            .and_then(strip_analyze)
            .is_none());
        assert!(strip_explain("explain select 1")
            .and_then(strip_analyze)
            .is_none());
    }

    #[test]
    fn explain_analyze_statement_form_reports_actuals() {
        let s = session();
        let sql = "explain analyze select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        let result = s.query(sql).unwrap();
        let ExecResult::Explain(text) = &result else {
            panic!("expected EXPLAIN result, got {result:?}");
        };
        assert!(text.contains("belief conjunctive query"), "{text}");
        assert!(text.contains("analyzed physical plans"), "{text}");
        assert!(text.contains("| actual rows="), "{text}");
        assert!(text.contains("time="), "{text}");
        assert!(text.contains("row returned"), "{text}");
        // The actual root cardinality matches the executed SELECT.
        let plain = s
            .query("select S.sid, S.species from BELIEF 'Bob' Sightings as S")
            .unwrap();
        assert!(
            text.contains(&format!(
                "-- {} row{} returned",
                plain.rows().len(),
                if plain.rows().len() == 1 { "" } else { "s" }
            )),
            "{text}"
        );
        // execute() handles the form too, and DML is rejected.
        let mut s2 = session();
        assert!(matches!(
            s2.execute("EXPLAIN ANALYZE select S.sid from BELIEF 'Bob' Sightings as S"),
            Ok(ExecResult::Explain(_))
        ));
        assert!(s
            .query("explain analyze insert into Sightings values ('x','y','z','d','l')")
            .is_err());
    }

    #[test]
    fn slowlog_captures_sql_statements_with_spans() {
        let s = session();
        let sql = "select S.sid, S.species from BELIEF 'Bob' Sightings as S";
        assert_eq!(s.slowlog_threshold_ms(), None);
        s.query(sql).unwrap();
        assert!(s.slowlog_entries().is_empty());

        s.set_slowlog_threshold_ms(Some(0));
        s.query(sql).unwrap();
        let entries = s.slowlog_entries();
        assert_eq!(entries.len(), 1);
        let trace = &entries[0];
        assert_eq!(trace.statement, sql);
        let names: Vec<&str> = trace.spans.iter().map(|sp| sp.name).collect();
        for expected in [
            "parse",
            "lower",
            "translate",
            "cache_lookup",
            "execute",
            "sort",
        ] {
            assert!(
                names.contains(&expected),
                "missing span {expected}: {names:?}"
            );
        }
        assert!(
            trace.profile.as_deref().unwrap().contains("| actual"),
            "{trace:?}"
        );
        // Identical answers with the slowlog armed (profiled path).
        let plain = {
            s.set_slowlog_threshold_ms(None);
            s.query(sql).unwrap()
        };
        s.set_slowlog_threshold_ms(Some(0));
        assert_eq!(s.query(sql).unwrap(), plain);
        s.clear_slowlog();
        assert!(s.slowlog_entries().is_empty());
    }
}
