//! # beliefdb-sql — BeliefSQL
//!
//! The SQL surface syntax of the paper's Fig. 1: standard SQL `SELECT` /
//! `INSERT` / `DELETE` / `UPDATE` extended with `(BELIEF user)+ not?`
//! prefixes on relation names. Statements lower onto
//! [`beliefdb_core::Bdms`]: selects become belief conjunctive queries
//! (evaluated through the Algorithm 1 translation), DML becomes
//! statement-level updates (Algorithms 2–4).
//!
//! ```
//! use beliefdb_sql::Session;
//! use beliefdb_core::ExternalSchema;
//!
//! let schema = ExternalSchema::new()
//!     .with_relation("Sightings", &["sid", "uid", "species", "date", "location"]);
//! let mut session = Session::new(schema).unwrap();
//! session.add_user("Alice").unwrap();
//! session.add_user("Bob").unwrap();
//!
//! // Carol's sighting (base data) and Bob's disagreement (a belief).
//! session.execute("insert into Sightings values \
//!     ('s1','Carol','bald eagle','6-14-08','Lake Forest')").unwrap();
//! session.execute("insert into BELIEF 'Bob' not Sightings values \
//!     ('s1','Carol','bald eagle','6-14-08','Lake Forest')").unwrap();
//!
//! // Alice believes the sighting by default; Bob does not.
//! let result = session.query(
//!     "select U.name, S.species from Users as U, BELIEF U.uid Sightings as S"
//! ).unwrap();
//! let shown = result.to_string();
//! assert!(shown.contains("Alice"));
//! assert!(!shown.contains("Bob"));
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod session;

pub use ast::Statement;
pub use beliefdb_storage::sema::{Diagnostic, Severity};
pub use error::{Result, SqlError};
pub use parser::parse;
pub use session::{ExecResult, Session};

#[cfg(test)]
mod tests {
    use super::*;
    use beliefdb_core::{naturemapping_schema, running_example, Bdms};
    use beliefdb_storage::row;

    /// A session preloaded with the paper's running example via SQL — the
    /// eight inserts i1–i8 of Sect. 2, exactly as printed.
    fn paper_session() -> Session {
        let mut s = Session::new(naturemapping_schema()).unwrap();
        s.add_user("Alice").unwrap();
        s.add_user("Bob").unwrap();
        s.add_user("Carol").unwrap();
        let inserts = [
            // i1
            "insert into Sightings values ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
            // i2
            "insert into BELIEF 'Bob' not Sightings values ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
            // i3
            "insert into BELIEF 'Bob' not Sightings values ('s1','Carol','fish eagle','6-14-08','Lake Forest')",
            // i4
            "insert into BELIEF 'Alice' Sightings values ('s2','Alice','crow','6-14-08','Lake Placid')",
            // i5
            "insert into BELIEF 'Alice' Comments values ('c1','found feathers','s2')",
            // i6
            "insert into BELIEF 'Bob' Sightings values ('s2','Alice','raven','6-14-08','Lake Placid')",
            // i7
            "insert into BELIEF 'Bob' BELIEF 'Alice' Comments values ('c2','black feathers','s2')",
            // i8
            "insert into BELIEF 'Bob' Comments values ('c2','purple-black feathers','s2')",
        ];
        for sql in inserts {
            let out = s.execute(sql).unwrap();
            assert!(matches!(
                out,
                ExecResult::Inserted(beliefdb_core::internal::InsertOutcome::Inserted)
            ));
        }
        s
    }

    #[test]
    fn sql_ingest_matches_programmatic_running_example() {
        let session = paper_session();
        let (reference, ..) = running_example();
        let via_sql = session.bdms().to_belief_database().unwrap();
        assert_eq!(via_sql.statements(), reference.statements());
    }

    #[test]
    fn paper_query_q1() {
        // "Sightings believed by Bob" (the paper prints Lake Forest but the
        // answer tuple is the Lake Placid raven; we use the location that
        // matches the stated answer).
        let session = paper_session();
        let result = session
            .query(
                "select S.sid, S.uid, S.species \
                 from Users as U, BELIEF U.uid Sightings as S \
                 where U.name = 'Bob' and S.location = 'Lake Placid'",
            )
            .unwrap();
        assert_eq!(result.rows(), &[row!["s2", "Alice", "raven"]]);
        assert_eq!(result.columns(), &["S.sid", "S.uid", "S.species"]);
    }

    #[test]
    fn paper_query_q2() {
        let session = paper_session();
        let result = session
            .query(
                "select U2.name, S1.species, S2.species \
                 from Users as U1, Users as U2, \
                      BELIEF U1.uid Sightings as S1, \
                      BELIEF U2.uid Sightings as S2 \
                 where U1.name = 'Alice' and S1.sid = S2.sid \
                   and S1.species <> S2.species",
            )
            .unwrap();
        assert_eq!(result.rows(), &[row!["Bob", "crow", "raven"]]);
    }

    #[test]
    fn negated_from_item_finds_disagreements() {
        // Example 15 in SQL: who disagrees with one of Alice's beliefs?
        let session = paper_session();
        let result = session
            .query(
                "select U2.name \
                 from Users as U1, Users as U2, \
                      BELIEF U1.uid Sightings as S1, \
                      BELIEF U2.uid not Sightings as S2 \
                 where U1.name = 'Alice' \
                   and S1.sid = S2.sid and S1.uid = S2.uid \
                   and S1.species = S2.species and S1.date = S2.date \
                   and S1.location = S2.location",
            )
            .unwrap();
        assert_eq!(result.rows(), &[row!["Bob"]]);
    }

    #[test]
    fn underconstrained_negation_is_a_clear_error() {
        let session = paper_session();
        let err = session
            .query(
                "select U.name from Users as U, BELIEF U.uid not Sightings as S \
                 where S.sid = 's1'",
            )
            .unwrap_err();
        assert!(err.to_string().contains("every"), "got: {err}");
    }

    #[test]
    fn wildcard_select() {
        let session = paper_session();
        let result = session.query("select * from Comments").unwrap();
        // Root world has no comments (all comment beliefs are annotated).
        assert!(result.rows().is_empty());
        assert_eq!(
            result.columns(),
            &["Comments.cid", "Comments.comment", "Comments.sid"]
        );

        let result = session
            .query("select * from BELIEF 'Alice' Comments")
            .unwrap();
        assert_eq!(result.rows(), &[row!["c1", "found feathers", "s2"]]);
    }

    #[test]
    fn delete_retracts_belief() {
        let mut session = paper_session();
        // Bob retracts his disagreement with the bald eagle.
        let out = session
            .execute("delete from BELIEF 'Bob' not Sightings where species = 'bald eagle'")
            .unwrap();
        assert_eq!(out, ExecResult::Deleted(1));
        // Only the exact-tuple negative blocked the bald eagle, so the
        // default belief flows back in (his fish-eagle negative has the same
        // key but is a different tuple).
        let result = session
            .query(
                "select S.species from Users as U, BELIEF U.uid Sightings as S \
                 where U.name = 'Bob' and S.sid = 's1'",
            )
            .unwrap();
        assert_eq!(result.rows(), &[row!["bald eagle"]]);
    }

    #[test]
    fn update_revises_belief() {
        let mut session = paper_session();
        let out = session
            .execute("update BELIEF 'Bob' Sightings set species = 'heron' where sid = 's2'")
            .unwrap();
        assert_eq!(out, ExecResult::Updated(1));
        let result = session
            .query(
                "select S.species from Users as U, BELIEF U.uid Sightings as S \
                 where U.name = 'Bob' and S.sid = 's2'",
            )
            .unwrap();
        assert_eq!(result.rows(), &[row!["heron"]]);
    }

    #[test]
    fn contradictory_constants_yield_empty_result() {
        let session = paper_session();
        let result = session
            .query("select S.sid from Sightings as S where S.sid = 's1' and S.sid = 's2'")
            .unwrap();
        assert!(result.rows().is_empty());
        // literal-vs-literal contradiction too
        let result = session
            .query("select S.sid from Sightings as S where 'a' = 'b'")
            .unwrap();
        assert!(result.rows().is_empty());
    }

    #[test]
    fn lower_errors() {
        let mut session = paper_session();
        // unknown table
        assert!(session.query("select * from Nope").is_err());
        // duplicate alias
        assert!(session
            .query("select * from Sightings as S, Comments as S")
            .is_err());
        // unknown alias in select list
        assert!(session.query("select Z.sid from Sightings as S").is_err());
        // ambiguous unqualified column
        assert!(session
            .query("select sid from Sightings as A, Sightings as B")
            .is_err());
        // BELIEF on the Users catalog
        assert!(session.query("select * from BELIEF 'Bob' Users").is_err());
        // unknown user name
        assert!(session
            .execute("insert into BELIEF 'Zoe' Sightings values ('x','y','z','d','l')")
            .is_err());
        // column user ref in DML
        assert!(session
            .execute("insert into BELIEF U.uid Sightings values ('x','y','z','d','l')")
            .is_err());
        // updating the key
        assert!(session.execute("update Sightings set sid = 'zz'").is_err());
        // query() refuses DML
        assert!(session
            .query("insert into Sightings values ('x','y','z','d','l')")
            .is_err());
    }

    #[test]
    fn unqualified_columns_resolve_when_unique() {
        let session = paper_session();
        let result = session
            .query("select species from BELIEF 'Bob' Sightings where sid = 's2'")
            .unwrap();
        assert_eq!(result.rows(), &[row!["raven"]]);
    }

    #[test]
    fn exec_result_display_renders_table() {
        let session = paper_session();
        let result = session
            .query("select S.sid, S.species from BELIEF 'Bob' Sightings as S")
            .unwrap();
        let shown = result.to_string();
        assert!(shown.contains("S.sid"));
        assert!(shown.contains("raven"));
        assert!(shown.contains("(1 row)"));
    }

    #[test]
    fn from_bdms_wraps_existing_instance() {
        let (db, ..) = running_example();
        let bdms = Bdms::from_belief_database(&db).unwrap();
        let session = Session::from_bdms(bdms);
        let result = session
            .query("select S.species from BELIEF 'Alice' Sightings as S where S.sid = 's2'")
            .unwrap();
        assert_eq!(result.rows(), &[row!["crow"]]);
        // bdms() / bdms_mut() accessors
        assert_eq!(session.bdms().users().len(), 3);
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use beliefdb_core::naturemapping_schema;

    #[test]
    fn explain_shows_bcq_and_datalog() {
        let mut s = Session::new(naturemapping_schema()).unwrap();
        s.add_user("Alice").unwrap();
        s.add_user("Bob").unwrap();
        let text = s
            .explain(
                "select S.species from Users as U, BELIEF U.uid Sightings as S \
                 where U.name = 'Bob'",
            )
            .unwrap();
        assert!(text.contains("belief conjunctive query"), "{text}");
        assert!(text.contains("Algorithm 1"), "{text}");
        assert!(text.contains("__bcq_T1"), "{text}");
        assert!(text.contains("E("), "temp rule walks E: {text}");
        assert!(text.contains("__bcq_answer"), "{text}");
        // DML is rejected.
        assert!(s.explain("update Sightings set species = 'x'").is_err());
        // Contradictions short-circuit.
        let text = s
            .explain("select S.sid from Sightings as S where 'a' = 'b'")
            .unwrap();
        assert!(text.contains("empty result"));
    }
}
