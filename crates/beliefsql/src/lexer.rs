//! Tokenizer for BeliefSQL (the Fig. 1 grammar plus the constructs used by
//! the paper's example statements: aliases, qualified columns, `<>`).

use crate::error::{Result, SqlError};
use std::fmt;

/// Keywords are matched case-insensitively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    As,
    Belief,
    Not,
    Insert,
    Into,
    Values,
    Delete,
    Update,
    Set,
}

impl Keyword {
    fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "AS" => Keyword::As,
            "BELIEF" => Keyword::Belief,
            "NOT" => Keyword::Not,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "VALUES" => Keyword::Values,
            "DELETE" => Keyword::Delete,
            "UPDATE" => Keyword::Update,
            "SET" => Keyword::Set,
            _ => return None,
        })
    }
}

/// One token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(Keyword),
    /// Unquoted identifier (table, alias, or column name).
    Ident(String),
    /// `'single quoted'` string; `''` escapes a quote.
    Str(String),
    /// Integer literal.
    Int(i64),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize a statement. The trailing token is always [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        message: "unexpected `!` (did you mean `!=`?)".into(),
                        offset: start,
                    });
                }
            }
            '\'' => {
                // Collect raw bytes (a quote is ASCII and can never occur
                // inside a multi-byte UTF-8 sequence), then re-validate.
                let mut out: Vec<u8> = Vec::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                message: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                out.push(b'\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            out.push(b);
                            i += 1;
                        }
                    }
                }
                let text = String::from_utf8(out).expect("input was valid UTF-8");
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    offset: start,
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let text = &input[i..j];
                let value = text.parse::<i64>().map_err(|_| SqlError::Lex {
                    message: format!("invalid integer literal `{text}`"),
                    offset: start,
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let c = bytes[j] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let kind = match Keyword::from_ident(text) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(text.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(SqlError::Lex {
                    message: format!("unexpected character `{other}`"),
                    offset: start,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select FROM Where and"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Keyword(Keyword::And),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("BELIEF belief Belief"),
            vec![
                TokenKind::Keyword(Keyword::Belief),
                TokenKind::Keyword(Keyword::Belief),
                TokenKind::Keyword(Keyword::Belief),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_and_qualified_names() {
        assert_eq!(
            kinds("S1.species"),
            vec![
                TokenKind::Ident("S1".into()),
                TokenKind::Dot,
                TokenKind::Ident("species".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            kinds("'bald eagle'"),
            vec![TokenKind::Str("bald eagle".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
        assert!(matches!(tokenize("'open"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42), TokenKind::Eof]);
        assert_eq!(kinds("-7"), vec![TokenKind::Int(-7), TokenKind::Eof]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
        assert!(matches!(tokenize("!x"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn punctuation_and_offsets() {
        let tokens = tokenize("a, (b) *;").unwrap();
        assert_eq!(tokens[0].offset, 0);
        assert_eq!(tokens[1].kind, TokenKind::Comma);
        assert_eq!(tokens[2].kind, TokenKind::LParen);
        assert_eq!(tokens[4].kind, TokenKind::RParen);
        assert_eq!(tokens[5].kind, TokenKind::Star);
        assert_eq!(tokens[6].kind, TokenKind::Semicolon);
    }

    #[test]
    fn full_insert_statement() {
        let toks = kinds(
            "insert into BELIEF 'Bob' not Sightings values ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
        );
        assert!(toks.contains(&TokenKind::Keyword(Keyword::Belief)));
        assert!(toks.contains(&TokenKind::Keyword(Keyword::Not)));
        assert!(toks.contains(&TokenKind::Str("bald eagle".into())));
        assert_eq!(toks.iter().filter(|t| **t == TokenKind::Comma).count(), 4);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(matches!(
            tokenize("a @ b"),
            Err(SqlError::Lex { offset: 2, .. })
        ));
    }
}
