//! # beliefdb-gen
//!
//! Synthetic belief-annotation workloads for the paper's evaluation
//! (Sect. 6.1): a parametric generator over the running example's
//! `Sightings` schema with configurable user participation (uniform /
//! generalized Zipf / the paper's 50-25-12.5 geometric example), nesting
//! depth distributions (`Pr[d = x]`), key-space clustering, and
//! negative-belief rates. Generation is deterministic per seed.
//!
//! ```
//! use beliefdb_gen::{GeneratorConfig, generate_bdms};
//!
//! let cfg = GeneratorConfig::new(10, 500); // m = 10 users, n = 500 annotations
//! let (bdms, report) = generate_bdms(&cfg).unwrap();
//! assert_eq!(report.accepted, 500);
//! let overhead = bdms.stats().relative_overhead(500);
//! assert!(overhead > 1.0); // |R*| / n, the measure of Table 1 / Fig. 6
//! ```

pub mod depth;
pub mod generator;
pub mod participation;
pub mod scenarios;

pub use depth::DepthDist;
pub use generator::{
    experiment_schema, fresh_bdms, generate_bdms, generate_logical, populate, CandidateStream,
    GeneratorConfig, PopulateReport,
};
pub use participation::{Participation, UserSampler};
