//! User-participation distributions (Sect. 6.1).
//!
//! The paper models "user participation as either uniform or following a
//! generalized Zipf distribution (e.g. user 1 is responsible for 50% of all
//! annotations, user 2 for 25%, ...)". We provide uniform, power-law Zipf
//! (`p_i ∝ 1/i^θ`), and the geometric shape of the paper's 50/25/12.5 %
//! example.

use rand::Rng;

/// How annotation authorship is distributed over the `m` users.
#[derive(Debug, Clone, PartialEq)]
pub enum Participation {
    /// Every user equally likely.
    Uniform,
    /// Generalized Zipf: `Pr[user i] ∝ 1 / i^theta` (ranks start at 1).
    Zipf { theta: f64 },
    /// Geometric: `Pr[user i] ∝ ratio^i` — the paper's 50/25/12.5 example
    /// is `ratio = 0.5`.
    Geometric { ratio: f64 },
}

impl Participation {
    /// The paper's skewed example (user 1 → 50 %, user 2 → 25 %, ...).
    pub fn paper_zipf() -> Self {
        Participation::Geometric { ratio: 0.5 }
    }

    /// Cumulative distribution over `m` users (normalized).
    pub fn cdf(&self, m: usize) -> Vec<f64> {
        assert!(m > 0, "need at least one user");
        let weights: Vec<f64> = match self {
            Participation::Uniform => vec![1.0; m],
            Participation::Zipf { theta } => {
                (1..=m).map(|i| 1.0 / (i as f64).powf(*theta)).collect()
            }
            Participation::Geometric { ratio } => {
                assert!(*ratio > 0.0 && *ratio < 1.0, "ratio must be in (0, 1)");
                (1..=m).map(|i| ratio.powi(i as i32)).collect()
            }
        };
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    }
}

/// Samples user ranks from a participation distribution.
#[derive(Debug, Clone)]
pub struct UserSampler {
    cdf: Vec<f64>,
}

impl UserSampler {
    pub fn new(participation: &Participation, m: usize) -> Self {
        UserSampler {
            cdf: participation.cdf(m),
        }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a user rank in `1..=m`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(p: &Participation, m: usize, n: usize) -> Vec<f64> {
        let sampler = UserSampler::new(p, m);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; m];
        for _ in 0..n {
            counts[sampler.sample(&mut rng) - 1] += 1;
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn uniform_is_flat() {
        let freq = frequencies(&Participation::Uniform, 10, 100_000);
        for f in freq {
            assert!((f - 0.1).abs() < 0.01, "frequency {f} too far from 0.1");
        }
    }

    #[test]
    fn paper_zipf_matches_50_25_example() {
        let freq = frequencies(&Participation::paper_zipf(), 10, 200_000);
        assert!(
            (freq[0] - 0.5).abs() < 0.01,
            "user 1 should author ~50%: {}",
            freq[0]
        );
        assert!(
            (freq[1] - 0.25).abs() < 0.01,
            "user 2 should author ~25%: {}",
            freq[1]
        );
        assert!((freq[2] - 0.125).abs() < 0.01);
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let freq = frequencies(&Participation::Zipf { theta: 1.0 }, 20, 200_000);
        for pair in freq.windows(2) {
            assert!(
                pair[0] + 0.01 >= pair[1],
                "Zipf frequencies must not increase"
            );
        }
        // heavier head than uniform
        assert!(freq[0] > 0.2);
    }

    #[test]
    fn cdf_ends_at_one() {
        for p in [
            Participation::Uniform,
            Participation::Zipf { theta: 1.5 },
            Participation::paper_zipf(),
        ] {
            let cdf = p.cdf(17);
            assert_eq!(cdf.len(), 17);
            assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
            assert!(cdf.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let sampler = UserSampler::new(&Participation::Zipf { theta: 2.0 }, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = sampler.sample(&mut rng);
            assert!((1..=5).contains(&u));
        }
        assert_eq!(sampler.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_panics() {
        let _ = Participation::Uniform.cdf(0);
    }
}
