//! Parameter presets for the paper's experiments (Sect. 6).

use crate::depth::DepthDist;
use crate::generator::GeneratorConfig;
use crate::participation::Participation;

/// One cell of Table 1: a labeled configuration.
#[derive(Debug, Clone)]
pub struct Table1Cell {
    pub label: String,
    pub depth_label: &'static str,
    pub users: usize,
    pub zipf: bool,
    pub config: GeneratorConfig,
}

/// The 12 cells of Table 1: `n = 10,000`, `m ∈ {10, 100}`, participation
/// ∈ {Zipf, uniform}, three depth pmfs. `n` is scalable so smoke tests and
/// CI can run the same grid cheaply.
type DepthPreset = (&'static str, fn() -> DepthDist);

pub fn table1_cells(n: usize, seed: u64) -> Vec<Table1Cell> {
    let depths: [DepthPreset; 3] = [
        ("[1/3, 1/3, 1/3]", DepthDist::uniform_012),
        ("[0.8, 0.19, 0.01]", DepthDist::skewed_shallow),
        ("[0.199, 0.8, 0.001]", DepthDist::skewed_depth1),
    ];
    let mut cells = Vec::new();
    for (depth_label, depth) in depths {
        for users in [10usize, 100] {
            for zipf in [true, false] {
                // Power-law Zipf (θ = 1) rather than the geometric example:
                // the paper's m=100 Zipf overhead (130) clearly exceeds its
                // m=10 Zipf one (31), so participation must still spread
                // with m — p_i ∝ 1/i does, the 50/25/12.5 geometric doesn't.
                let participation = if zipf {
                    Participation::Zipf { theta: 1.0 }
                } else {
                    Participation::Uniform
                };
                let config = GeneratorConfig::new(users, n)
                    .with_participation(participation.clone())
                    .with_depth(depth())
                    .with_seed(seed);
                cells.push(Table1Cell {
                    label: format!(
                        "m={users} {} {}",
                        if zipf { "Zipf" } else { "uniform" },
                        depth_label
                    ),
                    depth_label,
                    users,
                    zipf,
                    config,
                });
            }
        }
    }
    cells
}

/// Figure 6: `|R*|/n` vs. `n` for 100 users with uniform participation and
/// two depth distributions. Returns `(series label, configs per n)`.
pub fn fig6_series(ns: &[usize], seed: u64) -> Vec<(&'static str, Vec<GeneratorConfig>)> {
    let mk = |depth: DepthDist| -> Vec<GeneratorConfig> {
        ns.iter()
            .map(|&n| {
                GeneratorConfig::new(100, n)
                    .with_participation(Participation::Uniform)
                    .with_depth(depth.clone())
                    .with_seed(seed)
            })
            .collect()
    };
    vec![
        ("Pr[d] = [1/3, 1/3, 1/3]", mk(DepthDist::uniform_012())),
        (
            "Pr[d] = [0.199, 0.8, 0.001]",
            mk(DepthDist::skewed_depth1()),
        ),
    ]
}

/// The Table 2 database: `n` annotations with nesting depths up to 4
/// ("the depth of its belief path d ∈ {0, ..., 4}") over 10 users.
pub fn table2_config(n: usize, seed: u64) -> GeneratorConfig {
    GeneratorConfig::new(10, n)
        .with_depth(DepthDist::table2_mix())
        .with_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_grid_has_12_cells() {
        let cells = table1_cells(100, 1);
        assert_eq!(cells.len(), 12);
        assert_eq!(cells.iter().filter(|c| c.zipf).count(), 6);
        assert_eq!(cells.iter().filter(|c| c.users == 100).count(), 6);
        // labels are unique
        let mut labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 12);
        for c in &cells {
            assert_eq!(c.config.annotations, 100);
        }
    }

    #[test]
    fn fig6_series_cover_requested_ns() {
        let ns = [10, 100, 1000];
        let series = fig6_series(&ns, 2);
        assert_eq!(series.len(), 2);
        for (_, configs) in &series {
            assert_eq!(configs.len(), 3);
            assert!(configs.iter().all(|c| c.users == 100));
            assert_eq!(
                configs.iter().map(|c| c.annotations).collect::<Vec<_>>(),
                vec![10, 100, 1000]
            );
        }
    }

    #[test]
    fn table2_config_has_depth_4() {
        let cfg = table2_config(500, 3);
        assert_eq!(cfg.depth.max_depth(), 4);
        assert_eq!(cfg.users, 10);
    }
}
