//! The parametric annotation generator (Sect. 6.1).
//!
//! "We use a generic annotation generator that creates parameterized belief
//! annotations. We model annotation skew as discrete probability
//! distributions `Pr[k = x]` of the nesting depth of annotations [...] and
//! user participation as either uniform or following a generalized Zipf
//! distribution."
//!
//! The generator produces an endless stream of *candidate* belief
//! statements; [`populate`] ingests candidates into a BDMS until exactly
//! `n` annotations were accepted (inconsistent candidates are rejected by
//! Algorithm 4 and retried with fresh ones), mirroring the paper's setup of
//! "n = 10,000 annotations" per database.

use crate::depth::DepthDist;
use crate::participation::{Participation, UserSampler};
use beliefdb_core::{
    Bdms, BeliefDatabase, BeliefError, BeliefStatement, ExternalSchema, GroundTuple, Result, Sign,
    UserId,
};
use beliefdb_storage::{Row, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The single-relation experiment schema of Sect. 6: the running example
/// "neglecting the comments table".
pub fn experiment_schema() -> ExternalSchema {
    ExternalSchema::new().with_relation("S", &["sid", "uid", "species", "date", "location"])
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of users `m`.
    pub users: usize,
    /// Number of annotations `n` to ingest.
    pub annotations: usize,
    /// Who writes annotations.
    pub participation: Participation,
    /// Nesting-depth pmf `Pr[d = x]`.
    pub depth: DepthDist,
    /// Number of distinct external keys (sightings under discussion).
    /// Smaller = more conflicts and more annotation clustering.
    pub key_space: usize,
    /// Distinct species values per key — the alternatives users argue about.
    pub species_pool: usize,
    /// Probability that an annotation with depth ≥ 1 is a negative belief.
    pub negative_rate: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl GeneratorConfig {
    /// A reasonable default: `m` users, `n` annotations, a key space that
    /// clusters ~5 annotations per sighting, and a quarter of annotations
    /// disagreeing.
    pub fn new(users: usize, annotations: usize) -> Self {
        GeneratorConfig {
            users,
            annotations,
            participation: Participation::Uniform,
            depth: DepthDist::uniform_012(),
            key_space: (annotations / 5).max(1),
            species_pool: 8,
            negative_rate: 0.25,
            seed: 42,
        }
    }

    pub fn with_participation(mut self, p: Participation) -> Self {
        self.participation = p;
        self
    }

    pub fn with_depth(mut self, d: DepthDist) -> Self {
        self.depth = d;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_key_space(mut self, keys: usize) -> Self {
        self.key_space = keys.max(1);
        self
    }

    pub fn with_negative_rate(mut self, rate: f64) -> Self {
        self.negative_rate = rate;
        self
    }
}

/// An endless stream of candidate belief statements.
pub struct CandidateStream {
    rng: StdRng,
    sampler: UserSampler,
    depth: DepthDist,
    key_space: usize,
    species_pool: usize,
    negative_rate: f64,
    rel: beliefdb_core::RelId,
}

impl CandidateStream {
    pub fn new(cfg: &GeneratorConfig) -> Self {
        let schema = experiment_schema();
        CandidateStream {
            rng: StdRng::seed_from_u64(cfg.seed),
            sampler: UserSampler::new(&cfg.participation, cfg.users),
            depth: cfg.depth.clone(),
            key_space: cfg.key_space,
            species_pool: cfg.species_pool,
            negative_rate: cfg.negative_rate,
            rel: schema.relation_id("S").expect("schema has S"),
        }
    }

    /// Produce the next candidate statement.
    pub fn next_candidate(&mut self) -> BeliefStatement {
        let depth = self.depth.sample(&mut self.rng);
        // Belief path: adjacent-distinct users from the participation
        // distribution (resample on repeats; with ≥ 2 users this halts
        // quickly, with 1 user only depth ≤ 1 paths exist).
        let mut users: Vec<UserId> = Vec::with_capacity(depth);
        for _ in 0..depth {
            loop {
                let u = UserId(self.sampler.sample(&mut self.rng) as u32);
                if users.last() != Some(&u) {
                    users.push(u);
                    break;
                }
                if self.sampler.len() == 1 {
                    break; // cannot extend further
                }
            }
        }
        let path =
            beliefdb_core::BeliefPath::new(users).expect("adjacent-distinct by construction");

        let key_idx = self.rng.gen_range(0..self.key_space);
        let species_idx = self.rng.gen_range(0..self.species_pool);
        let reporter = self.sampler.sample(&mut self.rng);
        let location_idx = key_idx % 17;
        let row = Row::new(vec![
            Value::str(format!("s{key_idx}")),
            Value::str(format!("u{reporter}")),
            Value::str(format!("species{species_idx}")),
            Value::str("6-14-08"),
            Value::str(format!("loc{location_idx}")),
        ]);
        let sign = if !path.is_root() && self.rng.gen_bool(self.negative_rate) {
            Sign::Neg
        } else {
            // Fig. 1's grammar only allows `not` after a BELIEF prefix:
            // root-world inserts are always positive.
            Sign::Pos
        };
        BeliefStatement::new(path, GroundTuple::new(self.rel, row), sign)
    }
}

/// Outcome counts of one ingest run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PopulateReport {
    /// Annotations accepted (the paper's `n`).
    pub accepted: usize,
    /// Candidates rejected by the consistency gate (Alg. 4 line 5).
    pub rejected: usize,
    /// Candidates that were already present.
    pub duplicates: usize,
}

impl PopulateReport {
    pub fn attempts(&self) -> usize {
        self.accepted + self.rejected + self.duplicates
    }
}

/// Create a BDMS with `cfg.users` registered users (named `u1..um`).
pub fn fresh_bdms(cfg: &GeneratorConfig) -> Result<Bdms> {
    let mut bdms = Bdms::new(experiment_schema())?;
    for i in 1..=cfg.users {
        bdms.add_user(format!("u{i}"))?;
    }
    Ok(bdms)
}

/// Ingest candidates into `bdms` until `cfg.annotations` were accepted.
pub fn populate(bdms: &mut Bdms, cfg: &GeneratorConfig) -> Result<PopulateReport> {
    let mut stream = CandidateStream::new(cfg);
    let mut report = PopulateReport::default();
    // Safety valve: tiny key spaces can saturate (every candidate conflicts
    // or duplicates); bail out rather than spin forever.
    let max_attempts = cfg.annotations.saturating_mul(50).max(10_000);
    while report.accepted < cfg.annotations {
        if report.attempts() >= max_attempts {
            return Err(BeliefError::Inconsistent(format!(
                "generator saturated after {} attempts ({} accepted); \
                 enlarge key_space or species_pool",
                report.attempts(),
                report.accepted
            )));
        }
        let stmt = stream.next_candidate();
        match bdms.insert_statement(&stmt)? {
            o if o.changed() => report.accepted += 1,
            beliefdb_core::internal::InsertOutcome::AlreadyExplicit => report.duplicates += 1,
            _ => report.rejected += 1,
        }
    }
    Ok(report)
}

/// Generate a whole BDMS in one call.
pub fn generate_bdms(cfg: &GeneratorConfig) -> Result<(Bdms, PopulateReport)> {
    let mut bdms = fresh_bdms(cfg)?;
    let report = populate(&mut bdms, cfg)?;
    Ok((bdms, report))
}

/// Ingest candidates into a *logical* belief database (for the in-memory
/// closure/Kripke ablations) with the same acceptance semantics.
pub fn generate_logical(cfg: &GeneratorConfig) -> Result<(BeliefDatabase, PopulateReport)> {
    let mut db = BeliefDatabase::new(experiment_schema());
    for i in 1..=cfg.users {
        db.add_user(format!("u{i}"))?;
    }
    let mut stream = CandidateStream::new(cfg);
    let mut report = PopulateReport::default();
    let max_attempts = cfg.annotations.saturating_mul(50).max(10_000);
    while report.accepted < cfg.annotations {
        if report.attempts() >= max_attempts {
            return Err(BeliefError::Inconsistent(
                "generator saturated; enlarge key_space or species_pool".into(),
            ));
        }
        let stmt = stream.next_candidate();
        match db.insert(stmt) {
            Ok(true) => report.accepted += 1,
            Ok(false) => report.duplicates += 1,
            Err(BeliefError::Inconsistent(_)) => report.rejected += 1,
            Err(e) => return Err(e),
        }
    }
    Ok((db, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_are_deterministic_per_seed() {
        let cfg = GeneratorConfig::new(5, 100).with_seed(9);
        let mut a = CandidateStream::new(&cfg);
        let mut b = CandidateStream::new(&cfg);
        for _ in 0..50 {
            assert_eq!(a.next_candidate(), b.next_candidate());
        }
        let mut c = CandidateStream::new(&GeneratorConfig::new(5, 100).with_seed(10));
        let differs = (0..50).any(|_| a.next_candidate() != c.next_candidate());
        assert!(differs, "different seeds should give different streams");
    }

    #[test]
    fn candidate_paths_respect_depth_distribution_support() {
        let cfg = GeneratorConfig::new(4, 100).with_depth(DepthDist::uniform_012());
        let mut stream = CandidateStream::new(&cfg);
        let mut seen = [false; 3];
        for _ in 0..500 {
            let c = stream.next_candidate();
            assert!(c.depth() <= 2);
            seen[c.depth()] = true;
        }
        assert!(seen.iter().all(|s| *s), "all depths 0..=2 should occur");
    }

    #[test]
    fn root_candidates_are_positive() {
        let cfg = GeneratorConfig::new(4, 100).with_negative_rate(0.9);
        let mut stream = CandidateStream::new(&cfg);
        for _ in 0..300 {
            let c = stream.next_candidate();
            if c.path.is_root() {
                assert_eq!(c.sign, Sign::Pos);
            }
        }
    }

    #[test]
    fn populate_reaches_exact_annotation_count() {
        let cfg = GeneratorConfig::new(6, 200).with_seed(3);
        let (bdms, report) = generate_bdms(&cfg).unwrap();
        assert_eq!(report.accepted, 200);
        assert!(report.attempts() >= 200);
        // The store really holds the statements: explicit count equals n.
        let logical = bdms.to_belief_database().unwrap();
        assert_eq!(logical.len(), 200);
        assert!(logical.is_consistent());
    }

    #[test]
    fn logical_and_store_generation_agree() {
        let cfg = GeneratorConfig::new(5, 150).with_seed(17);
        let (bdms, r1) = generate_bdms(&cfg).unwrap();
        let (db, r2) = generate_logical(&cfg).unwrap();
        assert_eq!(r1, r2, "acceptance decisions must match");
        assert_eq!(
            bdms.to_belief_database().unwrap().statements(),
            db.statements()
        );
    }

    #[test]
    fn zipf_concentrates_annotations() {
        let cfg = GeneratorConfig::new(10, 300)
            .with_participation(Participation::paper_zipf())
            .with_seed(5);
        let (db, _) = generate_logical(&cfg).unwrap();
        // Count statements authored by user 1 (first path element) vs user 10.
        let mut by_user = vec![0usize; 11];
        for stmt in db.statements() {
            if let Some(u) = stmt.path.first() {
                by_user[u.0 as usize] += 1;
            }
        }
        assert!(
            by_user[1] > by_user[10] * 3,
            "Zipf head should dominate: {by_user:?}"
        );
    }

    #[test]
    fn saturation_is_detected() {
        // One key, one species, one user: after a handful of statements
        // everything is a duplicate.
        let cfg = GeneratorConfig {
            users: 1,
            annotations: 100,
            participation: Participation::Uniform,
            depth: DepthDist::new(&[1.0]),
            key_space: 1,
            species_pool: 1,
            negative_rate: 0.0,
            seed: 1,
        };
        let err = generate_bdms(&cfg).unwrap_err();
        assert!(matches!(err, BeliefError::Inconsistent(_)));
    }

    #[test]
    fn schema_matches_experiment_setup() {
        let s = experiment_schema();
        assert_eq!(s.relations().len(), 1);
        assert_eq!(s.relations()[0].arity(), 5);
        assert_eq!(s.relations()[0].key_column(), "sid");
    }
}
