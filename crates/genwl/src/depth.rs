//! Annotation-depth distributions: the paper's `Pr[d = x]` pmf over belief
//! path nesting depths (Sect. 6.1, Table 1).

use rand::Rng;

/// A discrete probability mass function over nesting depths `0, 1, 2, ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthDist {
    cdf: Vec<f64>,
}

impl DepthDist {
    /// Build from a pmf (weights are normalized; they need not sum to 1).
    pub fn new(pmf: &[f64]) -> Self {
        assert!(
            !pmf.is_empty(),
            "depth distribution needs at least one entry"
        );
        assert!(
            pmf.iter().all(|p| *p >= 0.0),
            "probabilities must be non-negative"
        );
        let total: f64 = pmf.iter().sum();
        assert!(
            total > 0.0,
            "at least one depth must have positive probability"
        );
        let mut acc = 0.0;
        let cdf = pmf
            .iter()
            .map(|p| {
                acc += p / total;
                acc
            })
            .collect();
        DepthDist { cdf }
    }

    /// Table 1 row 1: `Pr[d = {0,1,2}] = [1/3, 1/3, 1/3]`.
    pub fn uniform_012() -> Self {
        DepthDist::new(&[1.0, 1.0, 1.0])
    }

    /// Table 1 row 2: `[0.8, 0.19, 0.01]` — mostly base data.
    pub fn skewed_shallow() -> Self {
        DepthDist::new(&[0.8, 0.19, 0.01])
    }

    /// Table 1 row 3: `[0.199, 0.8, 0.001]` — mostly depth-1 annotations.
    pub fn skewed_depth1() -> Self {
        DepthDist::new(&[0.199, 0.8, 0.001])
    }

    /// The depth-≤4 mix used for the Table 2 query benchmark database
    /// (content queries go down to depth 4 there). Root inserts are rare:
    /// every root fact fans out to *all* belief worlds under the eager
    /// default rule, and the paper's Table 2 database has a modest overhead
    /// of 22.4, which implies annotation-heavy, fact-light data.
    pub fn table2_mix() -> Self {
        DepthDist::new(&[0.04, 0.56, 0.30, 0.08, 0.02])
    }

    /// Maximum depth with non-zero probability.
    pub fn max_depth(&self) -> usize {
        self.cdf.len() - 1
    }

    /// Sample a depth.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(d: &DepthDist, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; d.max_depth() + 1];
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn uniform_012_splits_evenly() {
        let f = frequencies(&DepthDist::uniform_012(), 120_000);
        for p in f {
            assert!((p - 1.0 / 3.0).abs() < 0.01);
        }
    }

    #[test]
    fn skewed_distributions_match_table1_rows() {
        let f = frequencies(&DepthDist::skewed_shallow(), 200_000);
        assert!((f[0] - 0.8).abs() < 0.01);
        assert!((f[1] - 0.19).abs() < 0.01);
        assert!((f[2] - 0.01).abs() < 0.005);

        let f = frequencies(&DepthDist::skewed_depth1(), 200_000);
        assert!((f[1] - 0.8).abs() < 0.01);
        assert!(f[2] < 0.01);
    }

    #[test]
    fn normalization_is_automatic() {
        let d = DepthDist::new(&[2.0, 2.0]);
        let f = frequencies(&d, 50_000);
        assert!((f[0] - 0.5).abs() < 0.02);
    }

    #[test]
    fn max_depth_reported() {
        assert_eq!(DepthDist::uniform_012().max_depth(), 2);
        assert_eq!(DepthDist::table2_mix().max_depth(), 4);
        assert_eq!(DepthDist::new(&[1.0]).max_depth(), 0);
    }

    #[test]
    #[should_panic(expected = "positive probability")]
    fn all_zero_pmf_panics() {
        let _ = DepthDist::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_probability_panics() {
        let _ = DepthDist::new(&[0.5, -0.1]);
    }
}
