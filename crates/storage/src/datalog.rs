//! Datalog over the relational engine.
//!
//! Section 5.2 of the paper translates belief conjunctive queries "into
//! non-recursive Datalog (and, hence, to SQL)". This module is that target
//! language: rules with positive atoms, negated atoms (safe, i.e. all their
//! variables bound positively), comparison literals, and — because
//! Algorithm 1's conditions for negative subgoals "require nested
//! disjunctions with negation" — a DNF disjunction literal.
//!
//! Rules compile to [`Plan`]s: positive atoms become joins, negated atoms
//! anti-joins, comparisons selections. Non-recursive programs (everything
//! Algorithm 1 emits) materialize derived relations rule-at-a-time in
//! definition order. Recursive programs — which the magic-sets rewrite
//! ([`crate::opt::magic`]) produces for recursive demand — are evaluated
//! stratum-by-stratum with semi-naive fixpoint iteration: each round
//! joins only against the previous round's newly derived tuples.

use crate::catalog::Database;
use crate::error::{Result, StorageError};
use crate::exec::execute;
use crate::expr::{CmpOp, Expr};
use crate::plan::Plan;
use crate::row::Row;
use crate::value::Value;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Entries kept in a [`PlanCache`] before first-in-first-out eviction.
const PLAN_CACHE_CAP: usize = 64;

/// Total rows embedded (as `Values` leaves) across all cached plans the
/// cache will hold; entries are evicted FIFO past this budget, and a
/// single program whose plans embed more than the whole budget is not
/// cached at all. Keeps the cache from pinning large intermediate
/// results in memory after queries complete.
const PLAN_CACHE_ROW_BUDGET: usize = 200_000;

/// A cache of optimized physical plans for the *answer* rules of whole
/// programs, keyed by the program's deterministic textual rendering plus
/// a table version vector captured at planning time. Repeat queries
/// against an unmutated database skip compilation, every optimizer
/// rewrite pass, **and the re-derivation of intermediate relations**.
/// Invalidation is precise to the program's *read set*
/// ([`PlanCache::read_versions`]): entries record the version of every
/// base table the program's rules reference, so a mutation of an
/// unrelated table leaves cached answers valid. (The coarse
/// whole-database vector, [`PlanCache::db_versions`], remains available
/// for callers that key manually.)
///
/// Only the plans of rules deriving the final head are stored: by
/// compile time every derived relation they read is embedded as a
/// `Values` leaf, so they are self-contained. Replaying them is sound
/// because program evaluation is deterministic — with identical
/// base-table versions every derived relation is reproduced exactly.
/// For the same reason the cache only serves evaluators with **no
/// pre-registered derived relations** ([`Evaluator::define`]) — those
/// rows are outside the cache key.
///
/// Locking discipline: [`PlanCache::lookup`] and [`PlanCache::store`]
/// are brief (a version compare plus an `Arc` clone); callers holding
/// the cache behind a mutex should release it while the plans execute
/// (see `beliefdb-core`'s `bcq::translate::evaluate`).
pub struct PlanCache {
    entries: HashMap<String, CachedProgram>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
    /// Rows embedded across all cached entries (tracked against the
    /// budget).
    total_rows: usize,
    row_budget: usize,
    hits: u64,
    misses: u64,
}

struct CachedProgram {
    /// `(table, version)` per table, sorted by name (the catalog order).
    versions: Vec<(String, u64)>,
    /// Optimized plans of the rules deriving the final head, in program
    /// order, shared so a cache hit never deep-copies embedded rows.
    plans: Arc<Vec<Plan>>,
    /// Rows embedded in `plans` as `Values` leaves.
    rows: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    pub fn new() -> Self {
        PlanCache::with_row_budget(PLAN_CACHE_ROW_BUDGET)
    }

    /// A cache with an explicit embedded-row budget (tests and memory-
    /// constrained embedders).
    pub fn with_row_budget(row_budget: usize) -> Self {
        PlanCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            total_rows: 0,
            row_budget,
            hits: 0,
            misses: 0,
        }
    }

    /// The coarse version vector: every table in the database. Kept for
    /// callers that key entries manually; [`PlanCache::read_versions`]
    /// is the precise (and default) choice.
    pub fn db_versions(db: &Database) -> Vec<(String, u64)> {
        db.table_names()
            .into_iter()
            .map(|n| {
                let v = db.table(n).expect("name from catalog").version();
                (n.to_string(), v)
            })
            .collect()
    }

    /// The version vector of the base tables `program` actually reads:
    /// every table referenced by a body atom (positive or negated),
    /// sorted by name. Derived relations have no version — program
    /// evaluation is deterministic, so with identical base-table
    /// versions every derived relation is reproduced exactly — and
    /// tables the program never touches are deliberately absent: their
    /// mutations must not invalidate this program's entry.
    pub fn read_versions(db: &Database, program: &Program) -> Vec<(String, u64)> {
        let mut names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for rule in &program.rules {
            for lit in &rule.body {
                if let BodyLit::Pos(a) | BodyLit::Neg(a) = lit {
                    names.insert(a.relation.as_str());
                }
            }
        }
        names
            .into_iter()
            .filter(|n| db.has_table(n))
            .map(|n| {
                let v = db.table(n).expect("existence checked").version();
                (n.to_string(), v)
            })
            .collect()
    }

    /// True when `program` reads (or derives into) any registered
    /// virtual (`sys.*`) relation. Such programs must never be cached:
    /// virtual rows are scan-time snapshots with no version counter, so
    /// [`PlanCache::read_versions`] cannot represent them and a cached
    /// entry would silently serve stale introspection data. All cached
    /// entry points check this and fall back to direct evaluation.
    pub fn program_reads_virtual(db: &Database, program: &Program) -> bool {
        program.rules.iter().any(|rule| {
            db.is_virtual(&rule.head.relation)
                || rule.body.iter().any(|lit| match lit {
                    BodyLit::Pos(a) | BodyLit::Neg(a) => db.is_virtual(&a.relation),
                    _ => false,
                })
        })
    }

    /// Cached answer plans for `key`, if present and planned at exactly
    /// these table versions. Counts a hit or miss.
    pub fn lookup(&mut self, key: &str, versions: &[(String, u64)]) -> Option<Arc<Vec<Plan>>> {
        match self.entries.get(key) {
            Some(entry) if entry.versions == versions => {
                self.hits += 1;
                crate::obs::metrics().incr(crate::obs::Metric::PlanCacheHits);
                Some(Arc::clone(&entry.plans))
            }
            _ => {
                self.misses += 1;
                crate::obs::metrics().incr(crate::obs::Metric::PlanCacheMisses);
                None
            }
        }
    }

    /// Record the answer plans of a freshly planned program. Oversized
    /// entries (more embedded rows than the whole budget) are dropped;
    /// otherwise older entries are evicted FIFO until both the entry
    /// count and the row budget fit.
    pub fn store(&mut self, key: String, versions: Vec<(String, u64)>, plans: Vec<Plan>) {
        let rows: usize = plans.iter().map(embedded_rows).sum();
        if rows > self.row_budget {
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.total_rows -= old.rows;
            self.order.retain(|k| k != &key);
        }
        while !self.order.is_empty()
            && (self.order.len() >= PLAN_CACHE_CAP || self.total_rows + rows > self.row_budget)
        {
            let victim = self.order.pop_front().expect("order non-empty");
            if let Some(evicted) = self.entries.remove(&victim) {
                self.total_rows -= evicted.rows;
            }
        }
        self.total_rows += rows;
        self.order.push_back(key.clone());
        self.entries.insert(
            key,
            CachedProgram {
                versions,
                plans: Arc::new(plans),
                rows,
            },
        );
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rows embedded (as `Values` leaves) across all cached entries.
    pub fn embedded_row_count(&self) -> usize {
        self.total_rows
    }

    /// Lookups served from the cache since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to plan from scratch.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Rows a plan carries inline as `Values` leaves (the memory a cached
/// plan pins).
fn embedded_rows(plan: &Plan) -> usize {
    let own = match plan {
        Plan::Values { rows, .. } => rows.len(),
        _ => 0,
    };
    own + plan
        .children()
        .into_iter()
        .map(embedded_rows)
        .sum::<usize>()
}

/// A term in an atom: a named variable, a constant, or a wildcard.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    Var(String),
    Const(Value),
    /// Anonymous variable `_`: matches anything, binds nothing. Only
    /// meaningful in body atoms.
    Any,
}

impl Term {
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }
}

/// `relation(t1, ..., tn)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    pub relation: String,
    pub terms: Vec<Term>,
}

impl Atom {
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }
}

/// A single comparison `a op b`.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpLit {
    pub left: Term,
    pub op: CmpOp,
    pub right: Term,
}

/// One literal in a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyLit {
    /// `R(t̄)` — joins the relation in.
    Pos(Atom),
    /// `¬R(t̄)` — anti-join; every variable must be bound elsewhere.
    Neg(Atom),
    /// `a op b` — selection; both sides must be bound or constant.
    Cmp(CmpLit),
    /// Disjunction of conjunctions of comparisons (DNF). This is what the
    /// nested conditions of Algorithm 1 lower to.
    Or(Vec<Vec<CmpLit>>),
}

/// `head :− body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub head: Atom,
    pub body: Vec<BodyLit>,
}

/// An ordered list of rules. Rules deriving the same head relation union
/// their results. Non-recursive programs use derived relations defined by
/// earlier rules only, and evaluate rule-at-a-time in order; programs
/// whose head-dependency graph has cycles are evaluated by stratified
/// semi-naive fixpoint iteration instead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub rules: Vec<Rule>,
}

/// Which executor evaluates rule plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The vectorized chunk-at-a-time streaming executor (default):
    /// rule rows flow out of the executor a batch at a time.
    #[default]
    Chunked,
    /// The row-at-a-time streaming executor (the PR 2 pipeline), kept as
    /// the vectorization baseline and differential voice.
    RowAtATime,
    /// The operator-at-a-time materializing executor (the executable
    /// specification the streaming executors are tested against).
    Materializing,
}

/// Each answer rule's optimized plan paired with its execution profile —
/// what a profiled program run (`run_*_analyze`) returns.
pub type AnalyzedPlans = Vec<(Plan, crate::obs::Profile)>;

/// Evaluates programs and rules against a database, holding materialized
/// derived relations.
///
/// By default every compiled rule plan is run through the cost-based
/// optimizer ([`crate::opt`]) before execution — this is the layer where
/// the paper delegates to "the database optimizer". Construct with
/// [`Evaluator::new_unoptimized`] to execute plans exactly as compiled
/// (the differential tests compare the two).
pub struct Evaluator<'a> {
    db: &'a Database,
    derived: HashMap<String, (usize, Vec<Row>)>,
    optimizer: Option<crate::opt::OptimizerOptions>,
    stats: Option<crate::opt::StatsCatalog>,
    /// Which executor runs rule plans (differential testing and the
    /// vectorization benches switch this; production stays chunked).
    mode: ExecMode,
    /// Memory budget for the chunked executor's materialization points
    /// (see [`crate::exec::spill`]); unlimited by default. The row and
    /// materializing executors ignore it (they are test baselines).
    spill: crate::exec::SpillOptions,
    /// Leaf-scan layout for the chunked executor (columnar by default;
    /// the differential suites also run the row-layout chunks).
    layout: crate::exec::ChunkLayout,
}

/// Pull every result row of `plan` through the chosen executor into
/// `sink`, in executor order. The chunked path hands whole batches
/// across the executor boundary — the per-row virtual call of the PR 2
/// interface happens only inside this loop, not per operator.
fn drive(
    db: &Database,
    plan: &Plan,
    mode: ExecMode,
    spill: &crate::exec::SpillOptions,
    layout: crate::exec::ChunkLayout,
    mut sink: impl FnMut(Row),
) -> Result<()> {
    // Rows delivered are accumulated locally and added to the metrics
    // registry once per plan — no atomic traffic in the row loop.
    let mut emitted = 0u64;
    let mut sink = |row| {
        emitted += 1;
        sink(row)
    };
    let result = (|| {
        match mode {
            ExecMode::Chunked => {
                // Drain through a reused scratch buffer so each chunk's
                // backing storage goes back to the executor's pool instead
                // of being reallocated per batch.
                let mut scratch: Vec<Row> = Vec::new();
                for chunk in crate::exec::Executor::with_spill(db, spill.clone())
                    .layout(layout)
                    .open_chunks(plan)?
                {
                    chunk?.drain_into(&mut scratch);
                    for row in scratch.drain(..) {
                        sink(row);
                    }
                }
            }
            ExecMode::RowAtATime => {
                for item in crate::exec::stream_rows(db, plan)? {
                    sink(item?);
                }
            }
            ExecMode::Materializing => {
                for row in crate::exec::execute_materialized(db, plan)? {
                    sink(row);
                }
            }
        }
        Ok(())
    })();
    crate::obs::metrics().add(crate::obs::Metric::RowsEmitted, emitted);
    result
}

/// [`drive`] with per-operator profiling on: always runs the chunked
/// executor (profiles describe its operator tree) and returns the live
/// [`Profile`](crate::obs::Profile) alongside. The `EXPLAIN ANALYZE`
/// backend.
fn drive_profiled(
    db: &Database,
    plan: &Plan,
    spill: &crate::exec::SpillOptions,
    layout: crate::exec::ChunkLayout,
    mut sink: impl FnMut(Row),
) -> Result<crate::obs::Profile> {
    let exec = crate::exec::Executor::with_spill(db, spill.clone()).layout(layout);
    let (stream, profile) = exec.open_chunks_profiled(plan)?;
    let mut scratch: Vec<Row> = Vec::new();
    let mut emitted = 0u64;
    let result = (|| {
        for chunk in stream {
            chunk?.drain_into(&mut scratch);
            for row in scratch.drain(..) {
                emitted += 1;
                sink(row);
            }
        }
        Ok(())
    })();
    crate::obs::metrics().add(crate::obs::Metric::RowsEmitted, emitted);
    result.map(|()| profile)
}

/// Reserved name prefix for the per-round delta relations the
/// semi-naive evaluator publishes while iterating a recursive stratum.
const DELTA_PREFIX: &str = "__sn_delta__";

/// Dependency graph over a program's head relations: one node per head
/// (first-definition order), an edge from a head to every head relation
/// its rules' bodies read (positively or negatively).
pub(crate) struct HeadGraph {
    pub(crate) rels: Vec<String>,
    deps: Vec<Vec<usize>>,
}

pub(crate) fn head_graph(program: &Program) -> HeadGraph {
    let mut rels: Vec<String> = Vec::new();
    let mut idx: HashMap<&str, usize> = HashMap::new();
    for rule in &program.rules {
        if !idx.contains_key(rule.head.relation.as_str()) {
            idx.insert(rule.head.relation.as_str(), rels.len());
            rels.push(rule.head.relation.clone());
        }
    }
    let mut deps: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); rels.len()];
    for rule in &program.rules {
        let head = idx[rule.head.relation.as_str()];
        for lit in &rule.body {
            if let BodyLit::Pos(a) | BodyLit::Neg(a) = lit {
                if let Some(&dep) = idx.get(a.relation.as_str()) {
                    deps[head].insert(dep);
                }
            }
        }
    }
    HeadGraph {
        rels,
        deps: deps.into_iter().map(|s| s.into_iter().collect()).collect(),
    }
}

impl HeadGraph {
    /// Strongly connected components in dependency order: a component
    /// appears after every component it reads from, so evaluating the
    /// returned list front to back always finds dependencies
    /// materialized. Iterative Tarjan, deterministic.
    pub(crate) fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.rels.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            // Explicit call stack of (node, next-dependency cursor).
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&(v, cursor)) = call.last() {
                if cursor == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if cursor < self.deps[v].len() {
                    call.last_mut().expect("just peeked").1 += 1;
                    let w = self.deps[v][cursor];
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        comps.push(comp);
                    }
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        comps
    }

    /// Whether a component needs fixpoint iteration: more than one
    /// member, or a single member that reads itself.
    pub(crate) fn component_recursive(&self, comp: &[usize]) -> bool {
        comp.len() > 1 || self.deps[comp[0]].binary_search(&comp[0]).is_ok()
    }
}

/// Whether any head relation of `program` participates in a dependency
/// cycle (direct or mutual recursion). Recursive programs take the
/// semi-naive fixpoint path in [`Evaluator::run`] and are excluded from
/// plan caching, streaming plan collection, and `EXPLAIN`.
pub fn program_recursive(program: &Program) -> bool {
    let graph = head_graph(program);
    graph
        .sccs()
        .iter()
        .any(|comp| graph.component_recursive(comp))
}

impl<'a> Evaluator<'a> {
    pub fn new(db: &'a Database) -> Self {
        Evaluator {
            db,
            derived: HashMap::new(),
            optimizer: Some(crate::opt::OptimizerOptions::default()),
            stats: None,
            mode: ExecMode::Chunked,
            spill: crate::exec::SpillOptions::unlimited(),
            layout: crate::exec::ChunkLayout::default(),
        }
    }

    /// An evaluator that executes rule plans exactly as compiled.
    pub fn new_unoptimized(db: &'a Database) -> Self {
        Evaluator {
            db,
            derived: HashMap::new(),
            optimizer: None,
            stats: None,
            mode: ExecMode::Chunked,
            spill: crate::exec::SpillOptions::unlimited(),
            layout: crate::exec::ChunkLayout::default(),
        }
    }

    /// An evaluator with explicit optimizer options.
    pub fn with_optimizer(db: &'a Database, opts: crate::opt::OptimizerOptions) -> Self {
        Evaluator {
            db,
            derived: HashMap::new(),
            optimizer: Some(opts),
            stats: None,
            mode: ExecMode::Chunked,
            spill: crate::exec::SpillOptions::unlimited(),
            layout: crate::exec::ChunkLayout::default(),
        }
    }

    /// Evaluate rule plans with the materializing executor
    /// ([`crate::exec::execute_materialized`]) instead of the streaming
    /// one. The executors are differentially tested to agree; this
    /// switch exists so higher layers can run both sides of that
    /// comparison.
    pub fn use_materializing_executor(self) -> Self {
        self.with_exec_mode(ExecMode::Materializing)
    }

    /// Evaluate rule plans with the row-at-a-time streaming executor
    /// ([`crate::exec::stream_rows`]) instead of the chunked one — the
    /// vectorization baseline side of the differential suites and the
    /// `exec_vectorized` bench.
    pub fn use_row_executor(self) -> Self {
        self.with_exec_mode(ExecMode::RowAtATime)
    }

    /// Evaluate rule plans with an explicit executor.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Bound the memory the chunked executor's materialization points
    /// (hash-join builds, aggregates, sorts, distincts) may hold per
    /// query; past the budget they spill to disk (grace hash join,
    /// external merge sort — see [`crate::exec::spill`]). `None` (the
    /// default) keeps every materialization fully in memory.
    pub fn with_memory_budget(mut self, budget: Option<usize>) -> Self {
        self.spill.budget = budget;
        self
    }

    /// Replace the full spill options (budget + run-file directory).
    pub fn with_spill_options(mut self, spill: crate::exec::SpillOptions) -> Self {
        self.spill = spill;
        self
    }

    /// Choose the chunked executor's leaf-scan layout (columnar by
    /// default; [`crate::exec::ChunkLayout::Rows`] keeps the row-layout
    /// chunks as a differential voice).
    pub fn with_layout(mut self, layout: crate::exec::ChunkLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Seed this evaluator with a pre-built statistics snapshot (e.g. one
    /// cached across queries by the owner of the database). A stale seed is
    /// fine — it is version-checked and refreshed incrementally on use.
    pub fn seed_stats(mut self, catalog: crate::opt::StatsCatalog) -> Self {
        self.stats = Some(catalog);
        self
    }

    /// Refresh the statistics snapshot for this evaluator's database when
    /// the database has mutated since the last use.
    fn refresh_stats(&mut self) {
        match &mut self.stats {
            Some(s) => s.refresh(self.db),
            None => self.stats = Some(crate::opt::StatsCatalog::snapshot(self.db)),
        }
    }

    /// Compile a rule and run it through the optimizer (when enabled).
    pub fn plan_rule(&mut self, rule: &Rule) -> Result<Plan> {
        let plan = self.compile_rule(rule)?;
        match self.optimizer.clone() {
            Some(opts) => {
                self.refresh_stats();
                let stats = self.stats.as_ref().expect("just refreshed");
                crate::opt::optimize_with_stats(self.db, stats, plan, &opts)
            }
            None => Ok(plan),
        }
    }

    /// Render the optimized physical plan of each rule (the program-level
    /// `EXPLAIN`).
    ///
    /// Intermediate heads are materialized so later rules compile against
    /// real derived relations (their sizes drive the cost estimates shown);
    /// the final rule — the query answer — is planned but **not** executed.
    /// Rules produced by the magic-sets rewrite carry a deterministic
    /// `[magic … adorn=…]` tag after their header line. Recursive
    /// programs have no static rule-at-a-time plan and are rejected.
    pub fn explain_program(&mut self, program: &Program) -> Result<String> {
        if program_recursive(program) {
            return Err(StorageError::DatalogError(
                "cannot EXPLAIN a recursive program (plans vary per fixpoint round)".into(),
            ));
        }
        let mut out = String::new();
        for (i, rule) in program.rules.iter().enumerate() {
            self.check_nonrecursive(rule)?;
            out.push_str(&format!("-- {rule}"));
            if let Some(tag) = crate::opt::magic::rule_tag(rule) {
                out.push_str(&tag);
            }
            out.push('\n');
            let plan = self.plan_rule(rule)?;
            self.refresh_stats();
            let stats = self.stats.as_ref().expect("just refreshed");
            out.push_str(&crate::opt::render_with_budget(
                self.db,
                stats,
                &plan,
                self.spill.budget,
            ));
            if i + 1 < program.rules.len() {
                let rows = execute(self.db, &plan)?;
                self.materialize_head(rule, rows)?;
            }
        }
        Ok(out)
    }

    /// Render the `EXPLAIN ANALYZE` report for plans profiled by
    /// [`Evaluator::run_collecting_analyze`] /
    /// [`Evaluator::run_cached_analyze`]: every operator line carries its
    /// estimate **and** what actually happened (rows, chunks, wall time,
    /// kernel-vs-fallback rows, spill traffic). Call after the run so the
    /// profiles are final.
    pub fn render_analyze_report(&mut self, profiled: &[(Plan, crate::obs::Profile)]) -> String {
        self.refresh_stats();
        let stats = self.stats.as_ref().expect("just refreshed");
        let mut out = String::new();
        for (plan, profile) in profiled {
            out.push_str(&crate::opt::render_analyze(
                self.db,
                stats,
                plan,
                profile,
                self.spill.budget,
            ));
        }
        out
    }

    /// Fold `rows` into the head relation's derived entry, enforcing that
    /// every rule deriving the same head agrees on its arity.
    fn materialize_head(&mut self, rule: &Rule, rows: Vec<Row>) -> Result<()> {
        let entry = self.head_entry(rule)?;
        entry.1.extend(rows);
        dedup_rows(&mut entry.1);
        Ok(())
    }

    /// The derived entry a rule's head feeds, created on first use and
    /// checked for a consistent arity across rules.
    fn head_entry(&mut self, rule: &Rule) -> Result<&mut (usize, Vec<Row>)> {
        let arity = rule.head.terms.len();
        let entry = self
            .derived
            .entry(rule.head.relation.clone())
            .or_insert_with(|| (arity, Vec::new()));
        if entry.0 != arity {
            return Err(StorageError::DatalogError(format!(
                "relation `{}` derived with conflicting arities {} and {arity}",
                rule.head.relation, entry.0
            )));
        }
        Ok(entry)
    }

    /// Evaluate `plan` and fold its rows into the rule's head relation,
    /// deduplicating incrementally. On the (default) chunked path whole
    /// batches flow from the executor straight into the derived entry —
    /// no per-rule intermediate `Vec`, and no per-row virtual call at
    /// the executor boundary.
    fn consume_into_head(&mut self, rule: &Rule, plan: &Plan) -> Result<()> {
        let db = self.db;
        let mode = self.mode;
        let layout = self.layout;
        let spill = self.spill.clone();
        let entry = self.head_entry(rule)?;
        let mut seen: HashSet<Row> = entry.1.iter().cloned().collect();
        drive(db, plan, mode, &spill, layout, |row| {
            if seen.insert(row.clone()) {
                entry.1.push(row);
            }
        })
    }

    /// [`Evaluator::consume_into_head`] with per-operator profiling on
    /// (chunked executor only — profiles describe its operator tree).
    fn consume_into_head_profiled(
        &mut self,
        rule: &Rule,
        plan: &Plan,
    ) -> Result<crate::obs::Profile> {
        let db = self.db;
        let layout = self.layout;
        let spill = self.spill.clone();
        let entry = self.head_entry(rule)?;
        let mut seen: HashSet<Row> = entry.1.iter().cloned().collect();
        drive_profiled(db, plan, &spill, layout, |row| {
            if seen.insert(row.clone()) {
                entry.1.push(row);
            }
        })
    }

    /// Register a pre-materialized relation (e.g. a literal temp table).
    pub fn define(&mut self, name: impl Into<String>, arity: usize, rows: Vec<Row>) {
        self.derived.insert(name.into(), (arity, rows));
    }

    /// Materialized rows of a derived relation.
    pub fn relation(&self, name: &str) -> Option<&[Row]> {
        self.derived.get(name).map(|(_, rows)| rows.as_slice())
    }

    /// Run every rule, materializing head relations. Returns the name of
    /// the last head (by convention the query answer). Non-recursive
    /// programs evaluate rule-at-a-time in definition order, rows
    /// streaming from the executor into the derived relations — exactly
    /// the pre-recursion engine, byte for byte. Programs whose
    /// head-dependency graph has cycles switch to stratified semi-naive
    /// fixpoint evaluation ([`Evaluator::run_recursive`]).
    pub fn run(&mut self, program: &Program) -> Result<Option<String>> {
        let graph = head_graph(program);
        let comps = graph.sccs();
        if comps.iter().any(|c| graph.component_recursive(c)) {
            return self.run_recursive(program, &graph, &comps);
        }
        let mut last = None;
        for rule in &program.rules {
            self.check_nonrecursive(rule)?;
            let plan = self.plan_rule(rule)?;
            self.consume_into_head(rule, &plan)?;
            last = Some(rule.head.relation.clone());
        }
        Ok(last)
    }

    /// Stratified semi-naive evaluation for recursive programs.
    ///
    /// Head relations are grouped into strongly connected components of
    /// the dependency graph and evaluated in dependency order (a
    /// component runs only after everything it reads from). Rules in a
    /// non-recursive component run exactly like [`Evaluator::run`]'s
    /// loop. A recursive component iterates to a fixpoint: round zero
    /// evaluates each member rule in full, and every later round
    /// evaluates, per rule and per positive in-component body atom, a
    /// variant that reads that one atom from the previous round's delta
    /// relation — so per-round work tracks newly derived tuples, not the
    /// accumulated relation. Negation on a relation inside its own
    /// component is not stratifiable and is rejected.
    fn run_recursive(
        &mut self,
        program: &Program,
        graph: &HeadGraph,
        comps: &[Vec<usize>],
    ) -> Result<Option<String>> {
        for rule in &program.rules {
            if self.db.has_table(&rule.head.relation) {
                return Err(StorageError::DatalogError(format!(
                    "cannot derive into base table `{}`",
                    rule.head.relation
                )));
            }
            if rule.head.relation.starts_with(DELTA_PREFIX) {
                return Err(StorageError::DatalogError(format!(
                    "relation name `{}` uses the reserved semi-naive delta prefix",
                    rule.head.relation
                )));
            }
        }
        for comp in comps {
            let members: HashSet<&str> = comp.iter().map(|&i| graph.rels[i].as_str()).collect();
            let rules: Vec<&Rule> = program
                .rules
                .iter()
                .filter(|r| members.contains(r.head.relation.as_str()))
                .collect();
            if graph.component_recursive(comp) {
                self.eval_stratum(&rules, &members)?;
            } else {
                for rule in rules {
                    let plan = self.plan_rule(rule)?;
                    self.consume_into_head(rule, &plan)?;
                }
            }
        }
        Ok(program.rules.last().map(|r| r.head.relation.clone()))
    }

    /// Fixpoint-evaluate one recursive component (see
    /// [`Evaluator::run_recursive`] for the semi-naive scheme).
    fn eval_stratum(&mut self, rules: &[&Rule], members: &HashSet<&str>) -> Result<()> {
        for rule in rules {
            for lit in &rule.body {
                if let BodyLit::Neg(a) = lit {
                    if members.contains(a.relation.as_str()) {
                        // BD002, naming the whole offending cycle — the
                        // same diagnostic `sema::lint_program` reports
                        // statically.
                        let cycle: Vec<&str> = members.iter().copied().collect();
                        return Err(StorageError::DatalogError(
                            crate::sema::unstratifiable(&rule.head.relation, &a.relation, &cycle)
                                .with_context(format!("rule `{rule}`"))
                                .code_message(),
                        ));
                    }
                }
            }
        }
        // Create every member relation (empty if nothing pre-registered)
        // before any rule reads a fellow member, and snapshot the
        // pre-existing rows as the dedup baseline. Pre-existing rows feed
        // derivations through round zero's full evaluation.
        let mut seen: HashMap<String, HashSet<Row>> = HashMap::new();
        for rule in rules {
            let entry = self.head_entry(rule)?;
            seen.entry(rule.head.relation.clone())
                .or_insert_with(|| entry.1.iter().cloned().collect());
        }
        // Round zero: full evaluation of every member rule.
        let mut candidates: Vec<(String, Vec<Row>)> = Vec::new();
        for rule in rules {
            let rows = self.eval_rule_rows(rule)?;
            candidates.push((rule.head.relation.clone(), rows));
        }
        let mut delta = self.absorb_round(members, candidates, &mut seen);
        while delta.values().any(|rows| !rows.is_empty()) {
            // Publish this round's deltas as reserved derived relations.
            for (rel, rows) in &delta {
                let arity = self.derived.get(rel).expect("member created above").0;
                self.define(format!("{DELTA_PREFIX}{rel}"), arity, rows.clone());
            }
            let mut candidates: Vec<(String, Vec<Row>)> = Vec::new();
            for rule in rules {
                for pos in 0..rule.body.len() {
                    let rel = match &rule.body[pos] {
                        BodyLit::Pos(a) if members.contains(a.relation.as_str()) => {
                            a.relation.clone()
                        }
                        _ => continue,
                    };
                    if delta[&rel].is_empty() {
                        continue;
                    }
                    let mut variant = (*rule).clone();
                    if let BodyLit::Pos(a) = &mut variant.body[pos] {
                        a.relation = format!("{DELTA_PREFIX}{}", a.relation);
                    }
                    let rows = self.eval_rule_rows(&variant)?;
                    candidates.push((rule.head.relation.clone(), rows));
                }
            }
            delta = self.absorb_round(members, candidates, &mut seen);
        }
        let stale: Vec<String> = self
            .derived
            .keys()
            .filter(|name| name.starts_with(DELTA_PREFIX))
            .cloned()
            .collect();
        for name in stale {
            self.derived.remove(&name);
        }
        Ok(())
    }

    /// Fold one fixpoint round's candidate rows into the derived
    /// relations, returning per-relation vectors of the genuinely new
    /// rows (the next round's deltas).
    fn absorb_round(
        &mut self,
        members: &HashSet<&str>,
        candidates: Vec<(String, Vec<Row>)>,
        seen: &mut HashMap<String, HashSet<Row>>,
    ) -> HashMap<String, Vec<Row>> {
        let mut delta: HashMap<String, Vec<Row>> = members
            .iter()
            .map(|rel| ((*rel).to_string(), Vec::new()))
            .collect();
        for (rel, rows) in candidates {
            let seen_rel = seen.get_mut(&rel).expect("member seeded in eval_stratum");
            let entry = self.derived.get_mut(&rel).expect("member created above");
            let fresh = delta.get_mut(&rel).expect("delta seeded per member");
            for row in rows {
                if seen_rel.insert(row.clone()) {
                    entry.1.push(row.clone());
                    fresh.push(row);
                }
            }
        }
        delta
    }

    /// Plan and execute one rule, returning its rows in executor order
    /// (head-level deduplication is the caller's job).
    fn eval_rule_rows(&mut self, rule: &Rule) -> Result<Vec<Row>> {
        let plan = self.plan_rule(rule)?;
        let mut rows = Vec::new();
        drive(self.db, &plan, self.mode, &self.spill, self.layout, |row| {
            rows.push(row)
        })?;
        Ok(rows)
    }

    /// Like [`Evaluator::run`], but consulting `cache` for the optimized
    /// answer plans of the program: a hit (same program text, same table
    /// versions) skips compilation, safety checks, every optimizer
    /// rewrite pass, and the re-derivation of intermediate relations —
    /// **on a hit only the final head relation is materialized**. Falls
    /// back to the uncached path when this evaluator carries
    /// pre-registered derived relations (their rows are outside the
    /// cache key) or has the optimizer disabled.
    ///
    /// This convenience holds no lock; callers sharing a `PlanCache`
    /// behind a mutex should instead do the brief
    /// [`PlanCache::lookup`]/[`PlanCache::store`] calls under the lock
    /// and run [`Evaluator::run_cached_plans`] /
    /// [`Evaluator::run_collecting_plans`] outside it.
    pub fn run_cached(
        &mut self,
        program: &Program,
        cache: &mut PlanCache,
    ) -> Result<Option<String>> {
        if !self.derived.is_empty()
            || self.optimizer.is_none()
            || program_recursive(program)
            || PlanCache::program_reads_virtual(self.db, program)
        {
            return self.run(program);
        }
        let key = program.to_string();
        let versions = PlanCache::read_versions(self.db, program);
        if let Some(plans) = cache.lookup(&key, &versions) {
            return self.run_cached_plans(program, &plans);
        }
        let (last, plans) = self.run_collecting_plans(program)?;
        cache.store(key, versions, plans);
        Ok(last)
    }

    /// Execute cached answer plans (from [`PlanCache::lookup`]) for
    /// `program`: only the rules deriving the final head run — their
    /// plans embed every derived relation they read as `Values` — and
    /// only that head is materialized. Falls back to [`Evaluator::run`]
    /// if the plan list does not line up with the program (a stale or
    /// foreign cache entry).
    pub fn run_cached_plans(
        &mut self,
        program: &Program,
        plans: &[Plan],
    ) -> Result<Option<String>> {
        let Some(last) = program.rules.last() else {
            return Ok(None);
        };
        let answer_rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| r.head.relation == last.head.relation)
            .collect();
        if answer_rules.len() != plans.len() {
            return self.run(program);
        }
        for (rule, plan) in answer_rules.into_iter().zip(plans) {
            self.consume_into_head(rule, plan)?;
        }
        Ok(Some(last.head.relation.clone()))
    }

    /// Run the whole program (exactly like [`Evaluator::run`]) and also
    /// return the optimized plans of the rules deriving the final head,
    /// for a later [`PlanCache::store`].
    pub fn run_collecting_plans(
        &mut self,
        program: &Program,
    ) -> Result<(Option<String>, Vec<Plan>)> {
        if program_recursive(program) {
            // Fixpoint rounds have no fixed answer-plan list to cache.
            let last = self.run(program)?;
            return Ok((last, Vec::new()));
        }
        let mut plans: Vec<(String, Plan)> = Vec::with_capacity(program.rules.len());
        let mut last = None;
        for rule in &program.rules {
            self.check_nonrecursive(rule)?;
            let plan = self.plan_rule(rule)?;
            self.consume_into_head(rule, &plan)?;
            plans.push((rule.head.relation.clone(), plan));
            last = Some(rule.head.relation.clone());
        }
        let answer_plans = match &last {
            Some(head) => plans
                .into_iter()
                .filter(|(h, _)| h == head)
                .map(|(_, p)| p)
                .collect(),
            None => Vec::new(),
        };
        Ok((last, answer_plans))
    }

    /// Run the whole program (exactly like [`Evaluator::run`]), profiling
    /// the rules that derive the final head: returns the last head name
    /// plus each answer rule's optimized plan and execution profile —
    /// the `EXPLAIN ANALYZE` backend. The answer plans are the same list
    /// [`Evaluator::run_collecting_plans`] would hand to
    /// [`PlanCache::store`].
    pub fn run_collecting_analyze(
        &mut self,
        program: &Program,
    ) -> Result<(Option<String>, AnalyzedPlans)> {
        if program_recursive(program) {
            // Per-round variants make per-rule profiles ill-defined.
            let last = self.run(program)?;
            return Ok((last, Vec::new()));
        }
        let answer_head = program.rules.last().map(|r| r.head.relation.clone());
        let mut profiled = Vec::new();
        let mut last = None;
        for rule in &program.rules {
            self.check_nonrecursive(rule)?;
            let plan = self.plan_rule(rule)?;
            if Some(&rule.head.relation) == answer_head.as_ref() {
                let profile = self.consume_into_head_profiled(rule, &plan)?;
                profiled.push((plan, profile));
            } else {
                self.consume_into_head(rule, &plan)?;
            }
            last = Some(rule.head.relation.clone());
        }
        Ok((last, profiled))
    }

    /// Execute cached answer plans (like [`Evaluator::run_cached_plans`])
    /// with profiling on, returning each plan's execution profile. Falls
    /// back to [`Evaluator::run_collecting_analyze`] if the plan list
    /// does not line up with the program.
    pub fn run_cached_analyze(
        &mut self,
        program: &Program,
        plans: &[Plan],
    ) -> Result<(Option<String>, AnalyzedPlans)> {
        let Some(last) = program.rules.last() else {
            return Ok((None, Vec::new()));
        };
        let answer_rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| r.head.relation == last.head.relation)
            .collect();
        if answer_rules.len() != plans.len() {
            return self.run_collecting_analyze(program);
        }
        let mut profiled = Vec::with_capacity(plans.len());
        for (rule, plan) in answer_rules.into_iter().zip(plans) {
            let profile = self.consume_into_head_profiled(rule, plan)?;
            profiled.push((plan.clone(), profile));
        }
        Ok((Some(last.head.relation.clone()), profiled))
    }

    /// Run every rule, materializing intermediate heads, but **stream**
    /// the final head's rows into `sink` as the executor produces them —
    /// the query answer is never collected into a `Vec` here. Rows
    /// derived by earlier rules sharing the final rule's head are
    /// emitted first (they are part of the answer, exactly as in
    /// [`Evaluator::run`]); the final rule's own rows then stream,
    /// deduplicated against them. Rows arrive in executor order,
    /// unsorted.
    pub fn run_streaming(&mut self, program: &Program, sink: impl FnMut(Row)) -> Result<()> {
        self.run_streaming_collecting_plans(program, sink)
            .map(|_| ())
    }

    /// [`Evaluator::run_streaming`], additionally returning the optimized
    /// plans of the rules deriving the final head for a later
    /// [`PlanCache::store`] (the streaming counterpart of
    /// [`Evaluator::run_collecting_plans`]).
    pub fn run_streaming_collecting_plans(
        &mut self,
        program: &Program,
        mut sink: impl FnMut(Row),
    ) -> Result<Vec<Plan>> {
        let Some((last, init)) = program.rules.split_last() else {
            return Ok(Vec::new());
        };
        if program_recursive(program) {
            // No single streaming answer plan exists: evaluate the
            // fixpoint fully, then emit the final head's rows.
            self.run(program)?;
            if let Some((_, rows)) = self.derived.get(&last.head.relation) {
                for row in rows.clone() {
                    sink(row);
                }
            }
            return Ok(Vec::new());
        }
        let mut answer_plans: Vec<Plan> = Vec::new();
        for rule in init {
            self.check_nonrecursive(rule)?;
            let plan = self.plan_rule(rule)?;
            self.consume_into_head(rule, &plan)?;
            if rule.head.relation == last.head.relation {
                answer_plans.push(plan);
            }
        }
        self.check_nonrecursive(last)?;
        let plan = self.plan_rule(last)?;
        let mut seen: HashSet<Row> = match self.derived.get(&last.head.relation) {
            Some((arity, rows)) => {
                if *arity != last.head.terms.len() {
                    return Err(StorageError::DatalogError(format!(
                        "relation `{}` derived with conflicting arities {} and {}",
                        last.head.relation,
                        arity,
                        last.head.terms.len()
                    )));
                }
                // Earlier rules already derived (deduplicated) answer
                // rows: they belong to the streamed result.
                for row in rows {
                    sink(row.clone());
                }
                rows.iter().cloned().collect()
            }
            None => HashSet::new(),
        };
        drive(self.db, &plan, self.mode, &self.spill, self.layout, |row| {
            if seen.insert(row.clone()) {
                sink(row);
            }
        })?;
        answer_plans.push(plan);
        Ok(answer_plans)
    }

    /// Stream cached answer plans (from [`PlanCache::lookup`]) into
    /// `sink`: nothing but the final head's rows is computed — the
    /// cached plans embed every derived relation they read — and the
    /// answer is never collected. Rows are deduplicated across the
    /// plans. Falls back to [`Evaluator::run_streaming`] if the plan
    /// list does not line up with the program.
    pub fn stream_cached_plans(
        &mut self,
        program: &Program,
        plans: &[Plan],
        mut sink: impl FnMut(Row),
    ) -> Result<()> {
        let Some(last) = program.rules.last() else {
            return Ok(());
        };
        let n_answer = program
            .rules
            .iter()
            .filter(|r| r.head.relation == last.head.relation)
            .count();
        if n_answer != plans.len() {
            return self.run_streaming(program, sink);
        }
        let mut seen: HashSet<Row> = HashSet::new();
        for plan in plans {
            drive(self.db, plan, self.mode, &self.spill, self.layout, |row| {
                if seen.insert(row.clone()) {
                    sink(row);
                }
            })?;
        }
        Ok(())
    }

    fn check_nonrecursive(&self, rule: &Rule) -> Result<()> {
        for lit in &rule.body {
            if let BodyLit::Pos(a) | BodyLit::Neg(a) = lit {
                if a.relation == rule.head.relation {
                    return Err(StorageError::DatalogError(format!(
                        "rule for `{}` references its own head (recursion is not supported)",
                        a.relation
                    )));
                }
            }
        }
        if self.db.has_table(&rule.head.relation) {
            return Err(StorageError::DatalogError(format!(
                "cannot derive into base table `{}`",
                rule.head.relation
            )));
        }
        if self.db.is_virtual(&rule.head.relation) {
            return Err(StorageError::ReservedName(
                crate::sema::Diagnostic::error(
                    crate::sema::codes::RESERVED_NAME,
                    format!("cannot derive into system table `{}`", rule.head.relation),
                )
                .code_message(),
            ));
        }
        Ok(())
    }

    /// Evaluate a single rule to its (deduplicated) head rows.
    pub fn eval_rule(&self, rule: &Rule) -> Result<Vec<Row>> {
        let mut plan = self.compile_rule(rule)?;
        if let Some(opts) = &self.optimizer {
            plan = crate::opt::optimize_with(self.db, plan, opts)?;
        }
        let mut rows = Vec::new();
        drive(self.db, &plan, self.mode, &self.spill, self.layout, |row| {
            rows.push(row)
        })?;
        dedup_rows(&mut rows);
        Ok(rows)
    }

    /// Compile a rule into a plan producing the head projection.
    pub fn compile_rule(&self, rule: &Rule) -> Result<Plan> {
        let mut acc = Plan::unit();
        let mut acc_arity: usize = 0;
        let mut bind: HashMap<String, usize> = HashMap::new();

        // Deferred literals: applied as soon as all their variables bind.
        let mut pending: Vec<&BodyLit> = Vec::new();

        let positives: Vec<&Atom> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                BodyLit::Pos(a) => Some(a),
                _ => None,
            })
            .collect();

        for lit in &rule.body {
            match lit {
                BodyLit::Pos(_) => {}
                other => pending.push(other),
            }
        }

        for atom in positives {
            let (src, src_arity) = self.atom_source(atom)?;
            // Intra-atom constraints: constants and repeated variables.
            let mut local_preds: Vec<Expr> = Vec::new();
            let mut first_seen: HashMap<&str, usize> = HashMap::new();
            let mut joins: Vec<(usize, usize)> = Vec::new();
            let mut new_binds: Vec<(String, usize)> = Vec::new();
            for (pos, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(v) => local_preds.push(Expr::col_eq_lit(pos, v.clone())),
                    Term::Any => {}
                    Term::Var(name) => {
                        if let Some(&prev) = first_seen.get(name.as_str()) {
                            local_preds.push(Expr::col_eq_col(prev, pos));
                        } else {
                            first_seen.insert(name, pos);
                            if let Some(&acc_col) = bind.get(name) {
                                joins.push((acc_col, pos));
                            } else {
                                new_binds.push((name.clone(), acc_arity + pos));
                            }
                        }
                    }
                }
            }
            let src = if local_preds.is_empty() {
                src
            } else {
                src.select(Expr::and(local_preds))
            };
            acc = acc.join(src, joins);
            acc_arity += src_arity;
            for (name, col) in new_binds {
                bind.insert(name, col);
            }
            self.apply_ready(&mut acc, &bind, &mut pending)?;
        }

        // Anything still pending must now be applicable (negated atoms and
        // comparisons whose variables never bound are unsafe).
        self.apply_ready(&mut acc, &bind, &mut pending)?;
        if let Some(stuck) = pending.first() {
            return Err(StorageError::DatalogError(format!(
                "unsafe rule: literal {stuck:?} has variables with no positive binding"
            )));
        }

        // Head projection.
        let mut exprs = Vec::with_capacity(rule.head.terms.len());
        for term in &rule.head.terms {
            match term {
                Term::Var(name) => {
                    let col = bind.get(name).ok_or_else(|| {
                        StorageError::DatalogError(format!(
                            "head variable `{name}` is not bound in the body"
                        ))
                    })?;
                    exprs.push(Expr::Col(*col));
                }
                Term::Const(v) => exprs.push(Expr::Lit(v.clone())),
                Term::Any => {
                    return Err(StorageError::DatalogError(
                        "wildcard `_` cannot appear in a rule head".into(),
                    ))
                }
            }
        }
        Ok(acc.project(exprs).distinct())
    }

    /// Apply every pending literal whose variables are all bound.
    fn apply_ready(
        &self,
        acc: &mut Plan,
        bind: &HashMap<String, usize>,
        pending: &mut Vec<&BodyLit>,
    ) -> Result<()> {
        let mut i = 0;
        while i < pending.len() {
            let lit = pending[i];
            if self.lit_ready(lit, bind) {
                let taken = pending.remove(i);
                let next = std::mem::replace(acc, Plan::unit());
                *acc = self.apply_lit(next, taken, bind)?;
                // Restart: applying one literal never unbinds others, but
                // keeps the scan simple.
                i = 0;
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    fn lit_ready(&self, lit: &BodyLit, bind: &HashMap<String, usize>) -> bool {
        let term_ready = |t: &Term| match t {
            Term::Var(n) => bind.contains_key(n),
            Term::Const(_) | Term::Any => true,
        };
        match lit {
            BodyLit::Pos(_) => false,
            BodyLit::Neg(a) => a.terms.iter().all(term_ready),
            BodyLit::Cmp(c) => term_ready(&c.left) && term_ready(&c.right),
            BodyLit::Or(disjuncts) => disjuncts
                .iter()
                .flatten()
                .all(|c| term_ready(&c.left) && term_ready(&c.right)),
        }
    }

    fn apply_lit(&self, acc: Plan, lit: &BodyLit, bind: &HashMap<String, usize>) -> Result<Plan> {
        match lit {
            BodyLit::Pos(_) => unreachable!("positive atoms are joined, not applied"),
            BodyLit::Cmp(c) => {
                let e = self.cmp_expr(c, bind, 0)?;
                Ok(acc.select(e))
            }
            BodyLit::Or(disjuncts) => {
                let mut parts = Vec::with_capacity(disjuncts.len());
                for conj in disjuncts {
                    let mut es = Vec::with_capacity(conj.len());
                    for c in conj {
                        es.push(self.cmp_expr(c, bind, 0)?);
                    }
                    parts.push(Expr::and(es));
                }
                Ok(acc.select(Expr::or(parts)))
            }
            BodyLit::Neg(atom) => {
                let (src, _src_arity) = self.atom_source(atom)?;
                let mut local_preds: Vec<Expr> = Vec::new();
                let mut joins: Vec<(usize, usize)> = Vec::new();
                let mut first_seen: HashMap<&str, usize> = HashMap::new();
                for (pos, term) in atom.terms.iter().enumerate() {
                    match term {
                        Term::Const(v) => local_preds.push(Expr::col_eq_lit(pos, v.clone())),
                        Term::Any => {}
                        Term::Var(name) => {
                            if let Some(&prev) = first_seen.get(name.as_str()) {
                                local_preds.push(Expr::col_eq_col(prev, pos));
                            } else {
                                first_seen.insert(name, pos);
                                let acc_col = bind[name.as_str()];
                                joins.push((acc_col, pos));
                            }
                        }
                    }
                }
                let src = if local_preds.is_empty() {
                    src
                } else {
                    src.select(Expr::and(local_preds))
                };
                Ok(acc.anti_join(src, joins))
            }
        }
    }

    /// Comparison over bound columns/constants. `offset` shifts column
    /// positions (unused today, kept for joined-row contexts).
    fn cmp_expr(&self, c: &CmpLit, bind: &HashMap<String, usize>, offset: usize) -> Result<Expr> {
        let side = |t: &Term| -> Result<Expr> {
            match t {
                Term::Var(n) => {
                    let col = bind.get(n).ok_or_else(|| {
                        StorageError::DatalogError(format!("comparison variable `{n}` unbound"))
                    })?;
                    Ok(Expr::Col(col + offset))
                }
                Term::Const(v) => Ok(Expr::Lit(v.clone())),
                Term::Any => Err(StorageError::DatalogError(
                    "wildcard `_` cannot appear in a comparison".into(),
                )),
            }
        };
        Ok(Expr::cmp(c.op, side(&c.left)?, side(&c.right)?))
    }

    /// Plan + arity for a body atom's relation (base table or derived).
    fn atom_source(&self, atom: &Atom) -> Result<(Plan, usize)> {
        if let Some((arity, rows)) = self.derived.get(&atom.relation) {
            if atom.terms.len() != *arity {
                return Err(StorageError::DatalogError(format!(
                    "atom `{}` has {} terms but relation has arity {arity}",
                    atom.relation,
                    atom.terms.len()
                )));
            }
            return Ok((
                Plan::Values {
                    arity: *arity,
                    rows: rows.clone(),
                },
                *arity,
            ));
        }
        let t = self.db.table(&atom.relation)?;
        let arity = t.schema().arity();
        if atom.terms.len() != arity {
            return Err(StorageError::DatalogError(format!(
                "atom `{}` has {} terms but table has arity {arity}",
                atom.relation,
                atom.terms.len()
            )));
        }
        Ok((Plan::scan(&atom.relation), arity))
    }
}

fn dedup_rows(rows: &mut Vec<Row>) {
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    rows.retain(|r| seen.insert(r.clone()));
}

/// Convenience: shorthand constructors for terms.
pub mod dsl {
    use super::*;

    pub fn v(name: &str) -> Term {
        Term::var(name)
    }

    pub fn c(value: impl Into<Value>) -> Term {
        Term::val(value)
    }

    pub fn any() -> Term {
        Term::Any
    }

    pub fn atom(rel: &str, terms: Vec<Term>) -> Atom {
        Atom::new(rel, terms)
    }

    pub fn pos(rel: &str, terms: Vec<Term>) -> BodyLit {
        BodyLit::Pos(atom(rel, terms))
    }

    pub fn neg(rel: &str, terms: Vec<Term>) -> BodyLit {
        BodyLit::Neg(atom(rel, terms))
    }

    pub fn cmp(left: Term, op: CmpOp, right: Term) -> BodyLit {
        BodyLit::Cmp(CmpLit { left, op, right })
    }

    pub fn rule(head_rel: &str, head_terms: Vec<Term>, body: Vec<BodyLit>) -> Rule {
        Rule {
            head: atom(head_rel, head_terms),
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;
    use crate::row;
    use crate::schema::TableSchema;

    /// Users/parent fixture: classic datalog examples.
    fn db() -> Database {
        let mut db = Database::new();
        let users = db
            .create_table(TableSchema::with_key("Users", &["uid", "name"]))
            .unwrap();
        users.insert(row![1, "Alice"]).unwrap();
        users.insert(row![2, "Bob"]).unwrap();
        users.insert(row![3, "Carol"]).unwrap();
        let e = db
            .create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
            .unwrap();
        e.insert(row![0, 1, 1]).unwrap();
        e.insert(row![0, 2, 2]).unwrap();
        e.insert(row![0, 3, 0]).unwrap();
        e.insert(row![1, 2, 2]).unwrap();
        e.insert(row![2, 1, 3]).unwrap();
        db
    }

    #[test]
    fn single_atom_rule() {
        let db = db();
        let ev = Evaluator::new(&db);
        let r = rule("Q", vec![v("n")], vec![pos("Users", vec![v("u"), v("n")])]);
        let mut rows = ev.eval_rule(&r).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row!["Alice"], row!["Bob"], row!["Carol"]]);
    }

    #[test]
    fn constants_select() {
        let db = db();
        let ev = Evaluator::new(&db);
        let r = rule(
            "Q",
            vec![v("u")],
            vec![pos("Users", vec![v("u"), c("Bob")])],
        );
        assert_eq!(ev.eval_rule(&r).unwrap(), vec![row![2]]);
    }

    #[test]
    fn join_via_shared_variable() {
        let db = db();
        let ev = Evaluator::new(&db);
        // Two-hop paths from world 0: E(0,u1,w), E(w,u2,w2)
        let r = rule(
            "Q",
            vec![v("u1"), v("u2"), v("w2")],
            vec![
                pos("E", vec![c(0), v("u1"), v("w")]),
                pos("E", vec![v("w"), v("u2"), v("w2")]),
            ],
        );
        let mut rows = ev.eval_rule(&r).unwrap();
        rows.sort();
        // From 0: (1→1),(2→2),(3→0). Hops: 1→(1,2,2); 2→(2,1,3); 0→ all three.
        assert_eq!(
            rows,
            vec![
                row![1, 2, 2], // via w=1
                row![2, 1, 3], // via w=2
                row![3, 1, 1], // via w=0
                row![3, 2, 2],
                row![3, 3, 0],
            ]
        );
    }

    #[test]
    fn repeated_variable_within_atom() {
        let db = db();
        let ev = Evaluator::new(&db);
        // Self-loops: E(w, u, w)
        let r = rule(
            "Q",
            vec![v("w")],
            vec![pos("E", vec![v("w"), any(), v("w")])],
        );
        assert_eq!(ev.eval_rule(&r).unwrap(), vec![row![0]]);
    }

    #[test]
    fn negated_atom() {
        let db = db();
        let ev = Evaluator::new(&db);
        // Users with no outgoing edge from world 1: E(1, u, _) misses u ∈ {1,3}.
        let r = rule(
            "Q",
            vec![v("u")],
            vec![
                pos("Users", vec![v("u"), any()]),
                neg("E", vec![c(1), v("u"), any()]),
            ],
        );
        let mut rows = ev.eval_rule(&r).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row![1], row![3]]);
    }

    #[test]
    fn comparison_literals() {
        let db = db();
        let ev = Evaluator::new(&db);
        let r = rule(
            "Q",
            vec![v("u")],
            vec![
                pos("Users", vec![v("u"), any()]),
                cmp(v("u"), CmpOp::Gt, c(1)),
            ],
        );
        let mut rows = ev.eval_rule(&r).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row![2], row![3]]);
    }

    #[test]
    fn disjunction_literal() {
        let db = db();
        let ev = Evaluator::new(&db);
        let r = rule(
            "Q",
            vec![v("n")],
            vec![
                pos("Users", vec![v("u"), v("n")]),
                BodyLit::Or(vec![
                    vec![CmpLit {
                        left: v("u"),
                        op: CmpOp::Eq,
                        right: c(1),
                    }],
                    vec![CmpLit {
                        left: v("n"),
                        op: CmpOp::Eq,
                        right: c("Carol"),
                    }],
                ]),
            ],
        );
        let mut rows = ev.eval_rule(&r).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row!["Alice"], row!["Carol"]]);
    }

    #[test]
    fn head_constants_and_duplicates_deduped() {
        let db = db();
        let ev = Evaluator::new(&db);
        let r = rule(
            "Q",
            vec![c("marker")],
            vec![pos("Users", vec![any(), any()])],
        );
        assert_eq!(ev.eval_rule(&r).unwrap(), vec![row!["marker"]]);
    }

    #[test]
    fn unsafe_rules_rejected() {
        let db = db();
        let ev = Evaluator::new(&db);
        // Head var never bound.
        let r = rule("Q", vec![v("x")], vec![pos("Users", vec![v("u"), any()])]);
        assert!(ev.eval_rule(&r).is_err());
        // Negated atom with unbound var.
        let r = rule(
            "Q",
            vec![v("u")],
            vec![
                pos("Users", vec![v("u"), any()]),
                neg("E", vec![v("w"), v("u"), any()]),
            ],
        );
        assert!(matches!(
            ev.eval_rule(&r),
            Err(StorageError::DatalogError(_))
        ));
        // Comparison with unbound var.
        let r = rule(
            "Q",
            vec![v("u")],
            vec![
                pos("Users", vec![v("u"), any()]),
                cmp(v("z"), CmpOp::Eq, c(1)),
            ],
        );
        assert!(ev.eval_rule(&r).is_err());
    }

    #[test]
    fn program_with_derived_relations() {
        let db = db();
        let mut ev = Evaluator::new(&db);
        let prog = Program {
            rules: vec![
                // Reach1(w) :- E(0, _, w)
                rule(
                    "Reach1",
                    vec![v("w")],
                    vec![pos("E", vec![c(0), any(), v("w")])],
                ),
                // Reach2(w) :- Reach1(x), E(x, _, w)
                rule(
                    "Reach2",
                    vec![v("w")],
                    vec![
                        pos("Reach1", vec![v("x")]),
                        pos("E", vec![v("x"), any(), v("w")]),
                    ],
                ),
            ],
        };
        let last = ev.run(&prog).unwrap();
        assert_eq!(last.as_deref(), Some("Reach2"));
        let mut r1 = ev.relation("Reach1").unwrap().to_vec();
        r1.sort();
        assert_eq!(r1, vec![row![0], row![1], row![2]]);
        let mut r2 = ev.relation("Reach2").unwrap().to_vec();
        r2.sort();
        assert_eq!(r2, vec![row![0], row![1], row![2], row![3]]);
    }

    #[test]
    fn recursion_evaluates_to_fixpoint() {
        let db = db();
        // A self-loop over an undefined-but-created head: fixpoint is
        // empty, and evaluation terminates instead of erroring.
        let mut ev = Evaluator::new(&db);
        let prog = Program {
            rules: vec![rule("R", vec![v("w")], vec![pos("R", vec![v("w")])])],
        };
        assert_eq!(ev.run(&prog).unwrap(), Some("R".to_string()));
        assert_eq!(ev.relation("R").unwrap(), &[] as &[Row]);
        // Transitive closure over E's (w1, u) edges: base edges 0→1,
        // 0→2, 0→3, 1→2, 2→1 plus the derived cycles (1,1) and (2,2).
        let mut ev = Evaluator::new(&db);
        let tc = Program {
            rules: vec![
                rule(
                    "TC",
                    vec![v("a"), v("b")],
                    vec![pos("E", vec![v("a"), v("b"), any()])],
                ),
                rule(
                    "TC",
                    vec![v("a"), v("c")],
                    vec![
                        pos("TC", vec![v("a"), v("b")]),
                        pos("E", vec![v("b"), v("c"), any()]),
                    ],
                ),
            ],
        };
        assert_eq!(ev.run(&tc).unwrap(), Some("TC".to_string()));
        let mut got = ev.relation("TC").unwrap().to_vec();
        got.sort();
        assert_eq!(
            got,
            vec![
                row![0, 1],
                row![0, 2],
                row![0, 3],
                row![1, 1],
                row![1, 2],
                row![2, 1],
                row![2, 2],
            ]
        );
    }

    #[test]
    fn recursive_negation_is_rejected_as_unstratifiable() {
        let db = db();
        let mut ev = Evaluator::new(&db);
        // win(x) :- E(x, y, _), not win(y): negation through the head's
        // own recursive component.
        let prog = Program {
            rules: vec![rule(
                "Win",
                vec![v("x")],
                vec![
                    pos("E", vec![v("x"), v("y"), any()]),
                    neg("Win", vec![v("y")]),
                ],
            )],
        };
        let err = ev.run(&prog).unwrap_err();
        assert_eq!(err.code(), Some("BD002"), "{err}");
        assert!(err.to_string().contains("cycle: Win -> Win"), "{err}");
    }

    #[test]
    fn cannot_derive_into_base_table() {
        let db = db();
        let mut ev = Evaluator::new(&db);
        let prog = Program {
            rules: vec![rule(
                "Users",
                vec![v("u"), v("n")],
                vec![pos("E", vec![v("u"), v("n"), any()])],
            )],
        };
        assert!(ev.run(&prog).is_err());
    }

    #[test]
    fn manual_temp_tables() {
        let db = db();
        let mut ev = Evaluator::new(&db);
        ev.define("T", 2, vec![row![1, "x"], row![2, "y"]]);
        let r = rule(
            "Q",
            vec![v("n"), v("tag")],
            vec![
                pos("Users", vec![v("u"), v("n")]),
                pos("T", vec![v("u"), v("tag")]),
            ],
        );
        let mut rows = ev.eval_rule(&r).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row!["Alice", "x"], row!["Bob", "y"]]);
    }

    #[test]
    fn optimized_and_unoptimized_agree() {
        let db = db();
        let rules = vec![
            rule(
                "Q",
                vec![v("u1"), v("u2"), v("w2")],
                vec![
                    pos("E", vec![c(0), v("u1"), v("w")]),
                    pos("E", vec![v("w"), v("u2"), v("w2")]),
                    pos("Users", vec![v("u1"), any()]),
                ],
            ),
            rule(
                "R",
                vec![v("u")],
                vec![
                    pos("Users", vec![v("u"), any()]),
                    neg("E", vec![c(1), v("u"), any()]),
                    cmp(v("u"), CmpOp::Gt, c(0)),
                ],
            ),
        ];
        for r in &rules {
            let optimized = Evaluator::new(&db);
            let plain = Evaluator::new_unoptimized(&db);
            let mut a = optimized.eval_rule(r).unwrap();
            let mut b = plain.eval_rule(r).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "optimizer changed rule semantics for {r}");
        }
    }

    #[test]
    fn explain_program_renders_each_rule() {
        let db = db();
        let mut ev = Evaluator::new(&db);
        let prog = Program {
            rules: vec![
                rule(
                    "Reach1",
                    vec![v("w")],
                    vec![pos("E", vec![c(0), any(), v("w")])],
                ),
                rule(
                    "Reach2",
                    vec![v("w")],
                    vec![
                        pos("Reach1", vec![v("x")]),
                        pos("E", vec![v("x"), any(), v("w")]),
                    ],
                ),
            ],
        };
        let text = ev.explain_program(&prog).unwrap();
        assert!(text.contains("-- Reach1(w) :- E(0, _, w)."), "{text}");
        assert!(text.contains("Scan E"), "{text}");
        // Deterministic across evaluators.
        let mut ev2 = Evaluator::new(&db);
        assert_eq!(text, ev2.explain_program(&prog).unwrap());
    }

    #[test]
    fn explain_program_rejects_conflicting_head_arities() {
        let db = db();
        let prog = Program {
            rules: vec![
                rule("Q", vec![v("u")], vec![pos("Users", vec![v("u"), any()])]),
                rule(
                    "Q",
                    vec![v("u"), v("n")],
                    vec![pos("Users", vec![v("u"), v("n")])],
                ),
                // A third rule so the conflicting second rule is not last
                // (the final rule is planned but not executed).
                rule("Z", vec![v("x")], vec![pos("Q", vec![v("x")])]),
            ],
        };
        let mut ev = Evaluator::new(&db);
        assert!(matches!(
            ev.explain_program(&prog),
            Err(StorageError::DatalogError(_))
        ));
        let mut ev = Evaluator::new(&db);
        assert!(matches!(ev.run(&prog), Err(StorageError::DatalogError(_))));
    }

    #[test]
    fn arity_mismatch_detected() {
        let db = db();
        let ev = Evaluator::new(&db);
        let r = rule("Q", vec![v("u")], vec![pos("Users", vec![v("u")])]);
        assert!(matches!(
            ev.eval_rule(&r),
            Err(StorageError::DatalogError(_))
        ));
    }

    fn reach_program() -> Program {
        Program {
            rules: vec![
                rule(
                    "Reach1",
                    vec![v("w")],
                    vec![pos("E", vec![c(0), any(), v("w")])],
                ),
                rule(
                    "Reach2",
                    vec![v("w")],
                    vec![
                        pos("Reach1", vec![v("x")]),
                        pos("E", vec![v("x"), any(), v("w")]),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn plan_cache_hits_on_repeat_and_invalidates_on_mutation() {
        let mut db = db();
        let prog = reach_program();
        let mut cache = PlanCache::new();

        let mut ev = Evaluator::new(&db);
        ev.run_cached(&prog, &mut cache).unwrap();
        let mut first = ev.relation("Reach2").unwrap().to_vec();
        first.sort();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 1);

        // Same program, unmutated database: served from the cache, same
        // answer — and the intermediate relation is *not* re-derived
        // (the cached answer plan embeds it).
        let mut ev = Evaluator::new(&db);
        ev.run_cached(&prog, &mut cache).unwrap();
        let mut second = ev.relation("Reach2").unwrap().to_vec();
        second.sort();
        assert_eq!(cache.hits(), 1);
        assert_eq!(first, second);
        assert!(
            ev.relation("Reach1").is_none(),
            "cache hit must skip intermediate derivation"
        );

        // A mutation bumps a table version: the stale entry must not be
        // served, and the recomputed answer reflects the new row.
        db.table_mut("E").unwrap().insert(row![0, 1, 9]).unwrap();
        let mut ev = Evaluator::new(&db);
        ev.run_cached(&prog, &mut cache).unwrap();
        assert_eq!(cache.misses(), 2);
        let reach1 = ev.relation("Reach1").unwrap();
        assert!(reach1.contains(&row![9]), "{reach1:?}");

        // Against a reference evaluation without the cache.
        let mut plain = Evaluator::new(&db);
        plain.run(&prog).unwrap();
        let mut a = ev.relation("Reach2").unwrap().to_vec();
        let mut b = plain.relation("Reach2").unwrap().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn plan_cache_survives_mutations_of_unread_tables() {
        let mut db = db();
        let prog = reach_program(); // reads only E
        let mut cache = PlanCache::new();
        Evaluator::new(&db).run_cached(&prog, &mut cache).unwrap();
        assert_eq!(cache.misses(), 1);
        // Inserting into a table the program never reads must not void
        // the entry: the key covers the read set, not the whole catalog.
        db.table_mut("Users")
            .unwrap()
            .insert(row![9, "Zoe"])
            .unwrap();
        let mut ev = Evaluator::new(&db);
        ev.run_cached(&prog, &mut cache).unwrap();
        assert_eq!(cache.hits(), 1, "unrelated mutation evicted the plan");
        assert!(
            ev.relation("Reach1").is_none(),
            "hit must skip intermediate derivation"
        );
        // read_versions itself: only referenced base tables, sorted.
        let versions = PlanCache::read_versions(&db, &prog);
        assert_eq!(versions.len(), 1);
        assert_eq!(versions[0].0, "E");
    }

    #[test]
    fn row_layout_evaluator_matches_columnar() {
        let db = db();
        let prog = reach_program();
        let mut cols = Evaluator::new(&db);
        cols.run(&prog).unwrap();
        let mut rows_ev = Evaluator::new(&db).with_layout(crate::exec::ChunkLayout::Rows);
        rows_ev.run(&prog).unwrap();
        let mut a = cols.relation("Reach2").unwrap().to_vec();
        let mut b = rows_ev.relation("Reach2").unwrap().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn plan_cache_declines_predefined_relations() {
        let db = db();
        let mut cache = PlanCache::new();
        let prog = Program {
            rules: vec![rule("Q", vec![v("x")], vec![pos("T", vec![v("x")])])],
        };
        for rows in [vec![row![1]], vec![row![2]]] {
            let mut ev = Evaluator::new(&db);
            ev.define("T", 1, rows.clone());
            ev.run_cached(&prog, &mut cache).unwrap();
            // The evaluator carries out-of-program state: the cache must
            // not serve (or record) plans embedding it.
            assert_eq!(ev.relation("Q").unwrap(), rows.as_slice());
        }
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn plan_cache_evicts_fifo() {
        let db = db();
        let mut cache = PlanCache::new();
        for i in 0..(super::PLAN_CACHE_CAP + 8) as i64 {
            let prog = Program {
                rules: vec![rule(
                    "Q",
                    vec![v("u")],
                    vec![
                        pos("Users", vec![v("u"), any()]),
                        cmp(v("u"), CmpOp::Gt, c(i)),
                    ],
                )],
            };
            let mut ev = Evaluator::new(&db);
            ev.run_cached(&prog, &mut cache).unwrap();
        }
        assert_eq!(cache.len(), super::PLAN_CACHE_CAP);
    }

    #[test]
    fn run_streaming_matches_run() {
        let db = db();
        let prog = reach_program();
        let mut reference = Evaluator::new(&db);
        reference.run(&prog).unwrap();
        let mut want = reference.relation("Reach2").unwrap().to_vec();
        want.sort();

        let mut ev = Evaluator::new(&db);
        let mut got = Vec::new();
        ev.run_streaming(&prog, |row| got.push(row)).unwrap();
        got.sort();
        assert_eq!(got, want);

        // The final head is *not* materialized in the evaluator — that is
        // the point of the streaming path — but intermediates are.
        assert!(ev.relation("Reach2").is_none());
        assert!(ev.relation("Reach1").is_some());
    }

    #[test]
    fn run_streaming_unions_and_dedups_rules_with_same_head() {
        let db = db();
        // Both rules derive Q. Rule 1 contributes Alice (uid 1), which
        // rule 2 (uid > 1) does NOT re-derive: the streamed answer must
        // still include her — and Bob/Carol, re-derivable or not, only
        // once.
        let prog = Program {
            rules: vec![
                rule(
                    "Q",
                    vec![v("u")],
                    vec![pos("Users", vec![v("u"), c("Alice")])],
                ),
                rule(
                    "Q",
                    vec![v("u")],
                    vec![
                        pos("Users", vec![v("u"), any()]),
                        cmp(v("u"), CmpOp::Gt, c(1)),
                    ],
                ),
            ],
        };
        let mut reference = Evaluator::new(&db);
        reference.run(&prog).unwrap();
        let mut want = reference.relation("Q").unwrap().to_vec();
        want.sort();

        let mut ev = Evaluator::new(&db);
        let mut got = Vec::new();
        ev.run_streaming(&prog, |row| got.push(row)).unwrap();
        got.sort();
        assert_eq!(got, want);
        assert_eq!(got, vec![row![1], row![2], row![3]]);
    }

    #[test]
    fn streaming_cache_roundtrip_matches_run_streaming() {
        let db = db();
        let prog = reach_program();
        let mut cache = PlanCache::new();

        // Miss path: stream and record the answer plans.
        let mut ev = Evaluator::new(&db);
        let mut first = Vec::new();
        let plans = ev
            .run_streaming_collecting_plans(&prog, |row| first.push(row))
            .unwrap();
        cache.store(prog.to_string(), PlanCache::db_versions(&db), plans);
        first.sort();

        // Hit path: stream the cached plans — same rows, nothing but the
        // answer computed.
        let cached = cache
            .lookup(&prog.to_string(), &PlanCache::db_versions(&db))
            .expect("entry just stored");
        let mut ev = Evaluator::new(&db);
        let mut second = Vec::new();
        ev.stream_cached_plans(&prog, &cached, |row| second.push(row))
            .unwrap();
        second.sort();
        assert_eq!(first, second);
        assert!(
            ev.relation("Reach1").is_none(),
            "cached streaming must skip intermediate derivation"
        );
    }

    #[test]
    fn plan_cache_row_budget_bounds_memory() {
        let db = db();
        // Every cached answer plan embeds the Reach1 rows (3 of them) as
        // a Values leaf. With a budget of 4 embedded rows, at most one
        // such entry fits at a time, and eviction keeps the total within
        // budget.
        let mut cache = PlanCache::with_row_budget(4);
        for i in 0..3i64 {
            let prog = Program {
                rules: vec![
                    rule(
                        "Reach1",
                        vec![v("w")],
                        vec![pos("E", vec![c(0), any(), v("w")])],
                    ),
                    rule(
                        "Reach2",
                        vec![v("w")],
                        vec![
                            pos("Reach1", vec![v("x")]),
                            pos("E", vec![v("x"), any(), v("w")]),
                            cmp(v("w"), CmpOp::Ge, c(i)),
                        ],
                    ),
                ],
            };
            let mut ev = Evaluator::new(&db);
            ev.run_cached(&prog, &mut cache).unwrap();
            assert!(
                cache.embedded_row_count() <= 4,
                "budget exceeded: {} rows cached",
                cache.embedded_row_count()
            );
        }
        assert!(
            cache.len() <= 1,
            "{} entries fit a 4-row budget",
            cache.len()
        );

        // A zero budget caches nothing (every entry is oversized), but
        // evaluation still works.
        let mut none = PlanCache::with_row_budget(0);
        let prog = Program {
            rules: vec![rule(
                "Q",
                vec![v("u")],
                vec![pos("Users", vec![v("u"), any()])],
            )],
        };
        let mut ev = Evaluator::new(&db);
        ev.run_cached(&prog, &mut none).unwrap();
        assert_eq!(ev.relation("Q").unwrap().len(), 3);
        assert!(none.is_empty() || none.embedded_row_count() == 0);
    }

    #[test]
    fn materializing_executor_mode_agrees() {
        let db = db();
        let r = rule(
            "Q",
            vec![v("u1"), v("u2"), v("w2")],
            vec![
                pos("E", vec![c(0), v("u1"), v("w")]),
                pos("E", vec![v("w"), v("u2"), v("w2")]),
            ],
        );
        let chunked = Evaluator::new(&db);
        let row_at_a_time = Evaluator::new(&db).use_row_executor();
        let materializing = Evaluator::new(&db).use_materializing_executor();
        let mut a = chunked.eval_rule(&r).unwrap();
        let mut b = materializing.eval_rule(&r).unwrap();
        let mut c = row_at_a_time.eval_rule(&r).unwrap();
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn union_of_rules_same_head() {
        let db = db();
        let mut ev = Evaluator::new(&db);
        let prog = Program {
            rules: vec![
                rule(
                    "Q",
                    vec![v("u")],
                    vec![pos("Users", vec![v("u"), c("Alice")])],
                ),
                rule(
                    "Q",
                    vec![v("u")],
                    vec![pos("Users", vec![v("u"), c("Bob")])],
                ),
                // duplicate of the first: result must stay deduplicated
                rule(
                    "Q",
                    vec![v("u")],
                    vec![pos("Users", vec![v("u"), c("Alice")])],
                ),
            ],
        };
        ev.run(&prog).unwrap();
        let mut rows = ev.relation("Q").unwrap().to_vec();
        rows.sort();
        assert_eq!(rows, vec![row![1], row![2]]);
    }
}

// ---------------------------------------------------------------------------
// Display: render programs in conventional Datalog syntax (used by EXPLAIN).
// ---------------------------------------------------------------------------

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::Var(n) => write!(f, "{n}"),
            Term::Const(Value::Str(s)) => write!(f, "'{s}'"),
            Term::Const(v) => write!(f, "{v}"),
            Term::Any => write!(f, "_"),
        }
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl std::fmt::Display for CmpLit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

impl std::fmt::Display for BodyLit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BodyLit::Pos(a) => write!(f, "{a}"),
            BodyLit::Neg(a) => write!(f, "not {a}"),
            BodyLit::Cmp(c) => write!(f, "{c}"),
            BodyLit::Or(disjuncts) => {
                write!(f, "(")?;
                for (i, conj) in disjuncts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    if conj.len() > 1 {
                        write!(f, "(")?;
                    }
                    for (j, c) in conj.iter().enumerate() {
                        if j > 0 {
                            write!(f, " & ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    if conj.len() > 1 {
                        write!(f, ")")?;
                    }
                }
                write!(f, ")")
            }
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, lit) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{lit}")?;
        }
        write!(f, ".")
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::dsl::*;
    use super::*;

    #[test]
    fn rules_render_as_datalog() {
        let r = rule(
            "Q",
            vec![v("x"), c("marker")],
            vec![
                pos("E", vec![c(0), v("x"), v("z")]),
                neg("V", vec![v("z"), any()]),
                cmp(v("x"), CmpOp::Ne, c(3)),
            ],
        );
        assert_eq!(
            r.to_string(),
            "Q(x, 'marker') :- E(0, x, z), not V(z, _), x <> 3."
        );
    }

    #[test]
    fn disjunctions_render_in_dnf() {
        let r = Rule {
            head: atom("Q", vec![v("x")]),
            body: vec![
                pos("T", vec![v("x"), v("s")]),
                BodyLit::Or(vec![
                    vec![
                        CmpLit {
                            left: v("s"),
                            op: CmpOp::Eq,
                            right: c("-"),
                        },
                        CmpLit {
                            left: v("x"),
                            op: CmpOp::Eq,
                            right: c(1),
                        },
                    ],
                    vec![CmpLit {
                        left: v("s"),
                        op: CmpOp::Eq,
                        right: c("+"),
                    }],
                ]),
            ],
        };
        assert_eq!(
            r.to_string(),
            "Q(x) :- T(x, s), ((s = '-' & x = 1) | s = '+')."
        );
    }

    #[test]
    fn programs_render_line_per_rule() {
        let prog = Program {
            rules: vec![
                rule(
                    "A",
                    vec![v("x")],
                    vec![pos("E", vec![v("x"), any(), any()])],
                ),
                rule("B", vec![v("x")], vec![pos("A", vec![v("x")])]),
            ],
        };
        let text = prog.to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("A(x) :- E(x, _, _)."));
        assert!(text.contains("B(x) :- A(x)."));
    }
}
