//! Secondary hash indexes.

use crate::error::Result;
use crate::row::Row;
use crate::value::Value;
use std::collections::HashMap;

/// Identifier of a row slot inside a [`crate::table::Table`].
pub type RowId = usize;

/// A hash index over one or more columns of a table.
///
/// Maps the projected key to the set of row ids currently holding it. The
/// index is maintained eagerly by `Table::insert` / `Table::delete`.
#[derive(Debug, Clone)]
pub struct Index {
    name: String,
    cols: Vec<usize>,
    map: HashMap<Box<[Value]>, Vec<RowId>>,
}

impl Index {
    pub fn new(name: impl Into<String>, cols: Vec<usize>) -> Self {
        assert!(!cols.is_empty(), "index must cover at least one column");
        Index {
            name: name.into(),
            cols,
            map: HashMap::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Project `row` onto the indexed columns.
    pub fn key_of(&self, row: &Row) -> Result<Box<[Value]>> {
        let mut key = Vec::with_capacity(self.cols.len());
        for &c in &self.cols {
            key.push(row.get(c)?.clone());
        }
        Ok(key.into_boxed_slice())
    }

    pub fn insert(&mut self, row: &Row, rid: RowId) -> Result<()> {
        let key = self.key_of(row)?;
        self.map.entry(key).or_default().push(rid);
        Ok(())
    }

    pub fn remove(&mut self, row: &Row, rid: RowId) -> Result<()> {
        let key = self.key_of(row)?;
        if let Some(ids) = self.map.get_mut(&key) {
            if let Some(pos) = ids.iter().position(|&r| r == rid) {
                ids.swap_remove(pos);
            }
            if ids.is_empty() {
                self.map.remove(&key);
            }
        }
        Ok(())
    }

    /// Row ids whose projection equals `key`.
    pub fn get(&self, key: &[Value]) -> &[RowId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys in the index.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn insert_get_remove() {
        let mut idx = Index::new("by_wid_key", vec![0, 2]);
        let r1 = row![1, "t1", "s1"];
        let r2 = row![1, "t2", "s1"];
        let r3 = row![2, "t1", "s1"];
        idx.insert(&r1, 10).unwrap();
        idx.insert(&r2, 11).unwrap();
        idx.insert(&r3, 12).unwrap();

        let key = [Value::int(1), Value::str("s1")];
        let mut hits = idx.get(&key).to_vec();
        hits.sort_unstable();
        assert_eq!(hits, vec![10, 11]);
        assert_eq!(idx.get(&[Value::int(2), Value::str("s1")]), &[12]);
        assert_eq!(idx.get(&[Value::int(9), Value::str("s1")]), &[] as &[RowId]);

        idx.remove(&r1, 10).unwrap();
        assert_eq!(idx.get(&key), &[11]);
        idx.remove(&r2, 11).unwrap();
        assert_eq!(idx.get(&key), &[] as &[RowId]);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn remove_is_idempotent_for_missing_rid() {
        let mut idx = Index::new("i", vec![0]);
        let r = row![5];
        idx.insert(&r, 1).unwrap();
        idx.remove(&r, 99).unwrap();
        assert_eq!(idx.get(&[Value::int(5)]), &[1]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_column_list_panics() {
        let _ = Index::new("bad", vec![]);
    }
}
