//! The database catalog: a named collection of tables, plus the `sys.`
//! namespace of read-only virtual tables.

use crate::error::{Result, StorageError};
use crate::row::Row;
use crate::schema::TableSchema;
use crate::table::Table;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Prefix reserved for system relations (`sys.metrics`, `sys.tables`, ...).
/// Base tables may not use it, and everything under it is read-only.
pub const SYS_PREFIX: &str = "sys.";

/// A read-only relation whose rows are computed at scan time rather than
/// stored — the `sys.*` introspection catalog. Providers snapshot their
/// source (metrics registry, statement map, plan cache, ...) into plain
/// rows; the executor turns the snapshot into a `ColumnSet` and streams
/// it through the ordinary chunked pipeline. Virtual tables are
/// stats-less by construction (the optimizer falls back to its default
/// small-cardinality estimate), are never plan-cached, and are refused
/// as mutation / WAL / snapshot targets.
pub trait VirtualTable: Send + Sync {
    /// The relation's schema (name carries the `sys.` prefix).
    fn schema(&self) -> &TableSchema;
    /// Snapshot the backing source into rows, in provider-chosen order.
    fn rows(&self, db: &Database) -> Vec<Row>;
}

/// An in-memory database: the catalog plus all table data.
///
/// `BTreeMap` keeps iteration deterministic, which matters for the size
/// accounting experiments (Table 1 / Figure 6 of the paper) and for
/// reproducible test output.
#[derive(Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// `sys.*` providers. `Arc`-shared: cloning a `Database` clones the
    /// registrations, and providers that capture shared state (the
    /// global metrics registry, an `Arc<Mutex<PlanCache>>`) keep
    /// pointing at the live source.
    virtuals: BTreeMap<String, Arc<dyn VirtualTable>>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables)
            .field("virtuals", &self.virtuals.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a table from its schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<&mut Table> {
        let name = schema.name().to_string();
        if name.starts_with(SYS_PREFIX) {
            return Err(StorageError::ReservedName(
                crate::sema::Diagnostic::error(
                    crate::sema::codes::RESERVED_NAME,
                    format!(
                        "cannot create table `{name}`: the `{SYS_PREFIX}` namespace is \
                         reserved for system tables"
                    ),
                )
                .code_message(),
            ));
        }
        if self.tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        self.tables.insert(name.clone(), Table::new(schema));
        Ok(self.tables.get_mut(&name).expect("just inserted"))
    }

    /// Drop a table; returns it if present.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        if name.starts_with(SYS_PREFIX) {
            return Err(StorageError::ReservedName(
                crate::sema::Diagnostic::error(
                    crate::sema::codes::RESERVED_NAME,
                    format!("cannot drop `{name}`: system tables are read-only"),
                )
                .code_message(),
            ));
        }
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Register (or re-register) a `sys.*` virtual-table provider.
    /// Overwriting is allowed so `\open` can re-point providers at the
    /// freshly recovered store's plan cache / slowlog handles.
    pub fn register_virtual(&mut self, provider: Arc<dyn VirtualTable>) {
        let name = provider.schema().name().to_string();
        debug_assert!(name.starts_with(SYS_PREFIX), "virtual table outside sys.");
        self.virtuals.insert(name, provider);
    }

    /// Look up a virtual table by name.
    pub fn virtual_table(&self, name: &str) -> Option<&Arc<dyn VirtualTable>> {
        self.virtuals.get(name)
    }

    /// True when `name` is a registered virtual table.
    pub fn is_virtual(&self, name: &str) -> bool {
        self.virtuals.contains_key(name)
    }

    /// Names of all registered virtual tables, sorted.
    pub fn virtual_names(&self) -> Vec<&str> {
        self.virtuals.keys().map(|s| s.as_str()).collect()
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total number of live tuples across all tables.
    ///
    /// This is the paper's `|R*|` measure (Sect. 5.4, Sect. 6.1): "we measure
    /// the size as the number of all tuples in the database".
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Per-table tuple counts, sorted by table name.
    pub fn table_sizes(&self) -> Vec<(&str, usize)> {
        self.tables
            .iter()
            .map(|(n, t)| (n.as_str(), t.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("Users", &["uid", "name"]))
            .unwrap();
        assert!(db.has_table("Users"));
        assert!(db.table("Users").is_ok());
        assert!(matches!(
            db.table("Nope"),
            Err(StorageError::NoSuchTable(_))
        ));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("T", &["a"])).unwrap();
        assert!(matches!(
            db.create_table(TableSchema::with_key("T", &["b"])),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn drop_table() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("T", &["a"])).unwrap();
        db.drop_table("T").unwrap();
        assert!(!db.has_table("T"));
        assert!(db.drop_table("T").is_err());
    }

    #[test]
    fn total_tuples_counts_all_tables() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("U", &["uid"]))
            .unwrap();
        db.create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
            .unwrap();
        db.table_mut("U").unwrap().insert(row![1]).unwrap();
        db.table_mut("U").unwrap().insert(row![2]).unwrap();
        db.table_mut("E").unwrap().insert(row![0, 1, 1]).unwrap();
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.table_sizes(), vec![("E", 1), ("U", 2)]);
    }

    #[test]
    fn sys_prefix_is_reserved() {
        let mut db = Database::new();
        assert!(matches!(
            db.create_table(TableSchema::with_key("sys.hack", &["a"])),
            Err(StorageError::ReservedName(_))
        ));
        assert!(matches!(
            db.drop_table("sys.metrics"),
            Err(StorageError::ReservedName(_))
        ));
    }

    #[test]
    fn virtual_registration_and_lookup() {
        struct Fixed(TableSchema);
        impl VirtualTable for Fixed {
            fn schema(&self) -> &TableSchema {
                &self.0
            }
            fn rows(&self, _db: &Database) -> Vec<Row> {
                vec![row![1, 2]]
            }
        }
        let mut db = Database::new();
        db.register_virtual(Arc::new(Fixed(TableSchema::keyless(
            "sys.demo",
            &["a", "b"],
        ))));
        assert!(db.is_virtual("sys.demo"));
        assert!(!db.is_virtual("demo"));
        assert_eq!(db.virtual_names(), vec!["sys.demo"]);
        let vt = db.virtual_table("sys.demo").unwrap();
        assert_eq!(vt.rows(&db), vec![row![1, 2]]);
        // Base-table views are unaffected by virtual registrations.
        assert!(!db.has_table("sys.demo"));
        assert!(db.table("sys.demo").is_err());
        assert!(db.table_names().is_empty());
        // Clones share the registration.
        let clone = db.clone();
        assert!(clone.is_virtual("sys.demo"));
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("Zeta", &["a"]))
            .unwrap();
        db.create_table(TableSchema::with_key("Alpha", &["a"]))
            .unwrap();
        assert_eq!(db.table_names(), vec!["Alpha", "Zeta"]);
    }
}
