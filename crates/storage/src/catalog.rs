//! The database catalog: a named collection of tables.

use crate::error::{Result, StorageError};
use crate::schema::TableSchema;
use crate::table::Table;
use std::collections::BTreeMap;

/// An in-memory database: the catalog plus all table data.
///
/// `BTreeMap` keeps iteration deterministic, which matters for the size
/// accounting experiments (Table 1 / Figure 6 of the paper) and for
/// reproducible test output.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a table from its schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<&mut Table> {
        let name = schema.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        self.tables.insert(name.clone(), Table::new(schema));
        Ok(self.tables.get_mut(&name).expect("just inserted"))
    }

    /// Drop a table; returns it if present.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total number of live tuples across all tables.
    ///
    /// This is the paper's `|R*|` measure (Sect. 5.4, Sect. 6.1): "we measure
    /// the size as the number of all tuples in the database".
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Per-table tuple counts, sorted by table name.
    pub fn table_sizes(&self) -> Vec<(&str, usize)> {
        self.tables
            .iter()
            .map(|(n, t)| (n.as_str(), t.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("Users", &["uid", "name"]))
            .unwrap();
        assert!(db.has_table("Users"));
        assert!(db.table("Users").is_ok());
        assert!(matches!(
            db.table("Nope"),
            Err(StorageError::NoSuchTable(_))
        ));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("T", &["a"])).unwrap();
        assert!(matches!(
            db.create_table(TableSchema::with_key("T", &["b"])),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn drop_table() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("T", &["a"])).unwrap();
        db.drop_table("T").unwrap();
        assert!(!db.has_table("T"));
        assert!(db.drop_table("T").is_err());
    }

    #[test]
    fn total_tuples_counts_all_tables() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("U", &["uid"]))
            .unwrap();
        db.create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
            .unwrap();
        db.table_mut("U").unwrap().insert(row![1]).unwrap();
        db.table_mut("U").unwrap().insert(row![2]).unwrap();
        db.table_mut("E").unwrap().insert(row![0, 1, 1]).unwrap();
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.table_sizes(), vec![("E", 1), ("U", 2)]);
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("Zeta", &["a"]))
            .unwrap();
        db.create_table(TableSchema::with_key("Alpha", &["a"]))
            .unwrap();
        assert_eq!(db.table_names(), vec!["Alpha", "Zeta"]);
    }
}
