//! Dynamically-typed scalar values.
//!
//! The engine stores every cell as a [`Value`]. Strings are reference-counted
//! (`Arc<str>`) because the belief-database encoding duplicates the same
//! attribute values across many belief worlds (the `V` relation of the
//! paper's internal schema), and cloning must stay cheap.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A dynamically-typed scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style NULL. Compares equal to itself (we need deterministic
    /// set semantics for belief worlds, not three-valued logic).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Interned UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, if this value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a string slice, if this value is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types (Null < Bool < Int < Str).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: first by type rank, then by payload. A total order (as
    /// opposed to SQL's partial one) keeps sorting and distinct-elimination
    /// deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Str(s) => s.as_bytes().hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_within_types() {
        assert_eq!(Value::int(3), Value::int(3));
        assert_ne!(Value::int(3), Value::int(4));
        assert_eq!(Value::str("crow"), Value::str("crow"));
        assert_ne!(Value::str("crow"), Value::str("raven"));
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Bool(true), Value::Bool(true));
    }

    #[test]
    fn equality_across_types_is_false() {
        assert_ne!(Value::int(1), Value::Bool(true));
        assert_ne!(Value::int(0), Value::Null);
        assert_ne!(Value::str("1"), Value::int(1));
    }

    #[test]
    fn ordering_is_total_and_type_ranked() {
        let mut vals = vec![
            Value::str("b"),
            Value::int(10),
            Value::Null,
            Value::Bool(false),
            Value::str("a"),
            Value::int(-5),
            Value::Bool(true),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Bool(true),
                Value::int(-5),
                Value::int(10),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn hash_agrees_with_eq() {
        let mut set = HashSet::new();
        set.insert(Value::str("crow"));
        set.insert(Value::str("crow"));
        set.insert(Value::int(7));
        set.insert(Value::int(7));
        assert_eq!(set.len(), 2);
        assert!(set.contains(&Value::str("crow")));
        assert!(set.contains(&Value::int(7)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(9).as_int(), Some(9));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::int(0).is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::str("bald eagle").to_string(), "bald eagle");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn conversions() {
        let v: Value = 42i64.into();
        assert_eq!(v, Value::int(42));
        let v: Value = "crow".into();
        assert_eq!(v, Value::str("crow"));
        let v: Value = String::from("raven").into();
        assert_eq!(v, Value::str("raven"));
        let v: Value = true.into();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn string_clone_is_cheap_refcount() {
        let a = Value::str("a long species name that would be expensive to copy");
        let b = a.clone();
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
    }
}
