//! # sema — static semantic analysis
//!
//! Deductive-database practice checks programs *statically* — safety /
//! range restriction, stratification, type soundness — before a single
//! tuple is derived, and rejects ill-formed input with structured,
//! explainable diagnostics instead of a bare error string. This module
//! is that layer for the belief-database stack, in two parts:
//!
//! 1. **The linter** ([`lint_program`]): analyzes a translated Datalog
//!    program before evaluation and reports [`Diagnostic`]s with stable
//!    `BD0xx` codes — unsafe rules (head/negation/comparison variables
//!    with no positive binding), unstratifiable negation (naming the
//!    offending rule cycle), comparison type mismatches, provably-empty
//!    rules (`x = 1, x = 2`, empty ranges), unused rules, and singleton
//!    variables. [`expr_contradictory`] is the same contradiction
//!    analysis over plan predicates; the optimizer uses it to fold
//!    provably-false selections to an empty `Values`.
//!
//! 2. **The plan verifier** ([`verify_plan`]): an independent invariant
//!    checker run after every optimizer rewrite pass. It re-derives the
//!    plan's arity bottom-up with its own walker (so a bug in
//!    [`crate::plan::Plan::arity`] and a bug in a rewrite cannot hide
//!    each other), checks column resolution in every expression, and
//!    cross-checks the executor's spill-point accounting.
//!    [`verify_magic`] checks the well-formedness of magic-sets guards
//!    at the program level.
//!
//! The verifier is **on under `debug_assertions`** (every debug test run
//! verifies every plan at every rewrite stage) and off in release unless
//! forced with [`set_verify`] (the shell's `\set verify on`). The
//! disabled path is a single atomic load — zero allocation, enforced by
//! `tests/obs_overhead.rs`.
//!
//! Diagnostic codes are stable API: tests and tools match on the code
//! (`err.code() == Some("BD002")`), never on message text. The full
//! table lives in `docs/analysis.md`.

mod lint;
mod verify;

pub use lint::{expr_contradictory, lint_program};
pub(crate) use verify::verify_magic_if_enabled;
pub use verify::{verify_magic, verify_plan, verify_plan_if_enabled};

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Stable diagnostic codes. Add new codes at the end of a band; never
/// renumber (tests and scripts match on these).
pub mod codes {
    /// A head / negated / comparison variable has no positive binding
    /// (the rule is unsafe — not range-restricted).
    pub const UNSAFE_RULE: &str = "BD001";
    /// Negation through the relation's own recursive component.
    pub const UNSTRATIFIABLE: &str = "BD002";
    /// A comparison mixes value types (int vs string vs bool).
    pub const TYPE_MISMATCH: &str = "BD003";
    /// The rule (or selection) is provably empty: contradictory
    /// equalities or an empty range.
    pub const PROVABLY_EMPTY: &str = "BD004";
    /// A rule's head relation is never read and is not the answer.
    pub const UNUSED_RULE: &str = "BD005";
    /// A named variable occurs exactly once (did you mean `_`?).
    pub const SINGLETON_VAR: &str = "BD006";
    /// A reserved (`sys.*` / internal-prefix) name where a user name is
    /// required.
    pub const RESERVED_NAME: &str = "BD010";
    /// Plan-verifier violation: arity / column resolution / schema flow.
    pub const PLAN_SHAPE: &str = "BD101";
    /// Plan-verifier violation: spill-point accounting disagrees with
    /// the executor's.
    pub const SPILL_POINTS: &str = "BD102";
    /// Program-verifier violation: malformed magic-sets guard.
    pub const MAGIC_GUARD: &str = "BD103";
}

/// Diagnostic severity. Errors reject the program; warnings surface via
/// `Session::lint`, `\lint`, and EXPLAIN annotations but do not block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A structured diagnostic: stable code, severity, human message, and
/// the rule / relation it is anchored to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable `BD0xx` code from [`codes`].
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    /// Where: a rendered rule, a relation name, a plan stage.
    pub context: Option<String>,
}

impl Diagnostic {
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            context: None,
        }
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            context: None,
        }
    }

    /// Attach context (a rendered rule, a relation, a rewrite stage).
    pub fn with_context(mut self, context: impl Into<String>) -> Self {
        self.context = Some(context.into());
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Compact form for embedding inside a [`crate::StorageError`]
    /// message: `[BD002] message (context)`. The severity is implied by
    /// the error variant carrying it.
    pub fn code_message(&self) -> String {
        match &self.context {
            Some(ctx) => format!("[{}] {} (in {ctx})", self.code, self.message),
            None => format!("[{}] {}", self.code, self.message),
        }
    }
}

/// `error[BD002]: message (in rule `...`)` — the lint report form.
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(ctx) = &self.context {
            write!(f, " (in {ctx})")?;
        }
        Ok(())
    }
}

/// The shared BD002 constructor: both the linter and the evaluator's
/// stratification check emit exactly this shape, so the code, the cycle
/// rendering, and the message stay in lockstep.
pub fn unstratifiable(head: &str, negated: &str, cycle: &[&str]) -> Diagnostic {
    let mut loop_names: Vec<&str> = cycle.to_vec();
    loop_names.sort_unstable();
    let mut rendered = loop_names.join(" -> ");
    if let Some(first) = loop_names.first() {
        rendered.push_str(" -> ");
        rendered.push_str(first);
    }
    Diagnostic::error(
        codes::UNSTRATIFIABLE,
        format!(
            "rule for `{head}` negates `{negated}` inside its own recursive component \
             (not stratifiable); cycle: {rendered}"
        ),
    )
}

/// Verifier switch: 0 = default (follow `debug_assertions`), 1 = forced
/// off, 2 = forced on. One relaxed atomic so the disabled check is free.
static VERIFY_MODE: AtomicU8 = AtomicU8::new(0);

/// Force the plan verifier on or off (the shell's `\set verify on|off`).
/// Overrides the build-profile default until [`reset_verify`].
pub fn set_verify(on: bool) {
    VERIFY_MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Return the verifier to its build-profile default (on under
/// `debug_assertions`, off in release).
pub fn reset_verify() {
    VERIFY_MODE.store(0, Ordering::Relaxed);
}

/// Is the plan verifier armed? One relaxed load; never allocates.
#[inline]
pub fn verify_enabled() -> bool {
    match VERIFY_MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => cfg!(debug_assertions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_with_code_and_context() {
        let d = Diagnostic::warning(codes::PROVABLY_EMPTY, "rule derives nothing")
            .with_context("rule `q(x) :- e(x), x = 1, x = 2.`");
        assert_eq!(
            d.to_string(),
            "warning[BD004]: rule derives nothing (in rule `q(x) :- e(x), x = 1, x = 2.`)"
        );
        assert_eq!(
            d.code_message(),
            "[BD004] rule derives nothing (in rule `q(x) :- e(x), x = 1, x = 2.`)"
        );
        assert!(!d.is_error());
        assert!(Diagnostic::error(codes::UNSAFE_RULE, "x").is_error());
    }

    #[test]
    fn unstratifiable_names_the_cycle() {
        let d = unstratifiable("Win", "Win", &["Win"]);
        assert_eq!(d.code, codes::UNSTRATIFIABLE);
        assert!(d.message.contains("cycle: Win -> Win"), "{}", d.message);
        let d = unstratifiable("B", "A", &["B", "A"]);
        assert!(d.message.contains("cycle: A -> B -> A"), "{}", d.message);
    }

    #[test]
    fn verify_flag_round_trips() {
        assert_eq!(verify_enabled(), cfg!(debug_assertions));
        set_verify(true);
        assert!(verify_enabled());
        set_verify(false);
        assert!(!verify_enabled());
        reset_verify();
        assert_eq!(verify_enabled(), cfg!(debug_assertions));
    }
}
