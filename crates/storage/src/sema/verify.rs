//! The plan / program invariant verifier.
//!
//! [`verify_plan`] is an *independent* re-derivation of the invariants a
//! well-formed plan must satisfy — deliberately not a call into
//! [`Plan::arity`], but its own bottom-up walker whose result is then
//! cross-checked against `Plan::arity`. A rewrite bug, an `arity` bug,
//! or drift between the two all surface as a `BD10x` violation at the
//! rewrite stage that introduced them, instead of as a wrong answer
//! three layers downstream.
//!
//! Invariants checked per operator:
//!
//! - **column resolution**: every column reference in a selection
//!   predicate, projection expression, join key, join residual, sort
//!   key, group-by, or aggregate is within its input's arity;
//! - **schema flow**: arities compose (join output = left + right,
//!   anti-join = left, projection = expression count, aggregate =
//!   groups + aggregates, union inputs agree, `Values` rows match the
//!   declared arity);
//! - **spill accounting**: the verifier's own count of materialization
//!   points equals [`crate::exec::spill_points`]' — so an operator
//!   added to the executor but forgotten by the budget splitter (or
//!   vice versa) is caught the first time any plan containing it is
//!   verified.
//!
//! [`verify_magic`] checks magic-sets guard well-formedness at the
//! program level (guard first, guard matches the head's adornment,
//! demand relations defined — see the function docs).

use super::{codes, verify_enabled, Diagnostic};
use crate::catalog::Database;
use crate::datalog::{BodyLit, Program, Rule};
use crate::error::{Result, StorageError};
use crate::exec::spill_points;
use crate::expr::Expr;
use crate::opt::magic::MAGIC_PREFIX;
use crate::plan::Plan;

/// Check every structural invariant of `plan`. `Ok(())` means the plan
/// is well-formed; `Err` carries the first violation as a `BD10x`
/// diagnostic. Pure read-only analysis — never mutates, never panics.
pub fn verify_plan(db: &Database, plan: &Plan) -> std::result::Result<(), Diagnostic> {
    let shape_arity = shape(db, plan)?;
    // Cross-check against the executor-facing validator: the two walkers
    // must agree on both acceptance and arity.
    match plan.arity(db) {
        Ok(a) if a == shape_arity => {}
        Ok(a) => {
            return Err(Diagnostic::error(
                codes::PLAN_SHAPE,
                format!("verifier derives arity {shape_arity} but Plan::arity says {a}"),
            ));
        }
        Err(e) => {
            return Err(Diagnostic::error(
                codes::PLAN_SHAPE,
                format!("verifier accepts the plan but Plan::arity rejects it: {e}"),
            ));
        }
    }
    // Spill accounting: our independent count of materialization points
    // must match the executor's budget splitter.
    let ours = materialization_points(plan);
    let theirs = spill_points(plan);
    if ours != theirs {
        return Err(Diagnostic::error(
            codes::SPILL_POINTS,
            format!(
                "verifier counts {ours} materialization point(s) but the executor budgets \
                 {theirs}"
            ),
        ));
    }
    Ok(())
}

/// Gate + verify in one call: a single relaxed atomic load when the
/// verifier is disabled (zero allocation — guarded by
/// `tests/obs_overhead.rs`), the full [`verify_plan`] walk when armed.
/// Violations come back as a `PlanError` naming the rewrite `stage`.
#[inline]
pub fn verify_plan_if_enabled(db: &Database, plan: &Plan, stage: &'static str) -> Result<()> {
    if !verify_enabled() {
        return Ok(());
    }
    verify_plan(db, plan).map_err(|d| {
        StorageError::PlanError(format!(
            "verifier violation after `{stage}`: {}",
            d.code_message()
        ))
    })
}

/// The independent bottom-up walker: derive the plan's arity while
/// checking column resolution at every operator.
fn shape(db: &Database, plan: &Plan) -> std::result::Result<usize, Diagnostic> {
    let bad = |msg: String| Err(Diagnostic::error(codes::PLAN_SHAPE, msg));
    match plan {
        Plan::Scan { table } => match db.table(table) {
            Ok(t) => Ok(t.schema().arity()),
            Err(_) => match db.virtual_table(table) {
                Some(vt) => Ok(vt.schema().arity()),
                None => bad(format!("scan of unknown relation `{table}`")),
            },
        },
        Plan::Selection { input, predicate } => {
            let a = shape(db, input)?;
            check_expr(predicate, a, "selection predicate")?;
            Ok(a)
        }
        Plan::Projection { input, exprs } => {
            let a = shape(db, input)?;
            for e in exprs {
                check_expr(e, a, "projection expression")?;
            }
            Ok(exprs.len())
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        }
        | Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let la = shape(db, left)?;
            let ra = shape(db, right)?;
            for &(l, r) in on {
                if l >= la || r >= ra {
                    return bad(format!(
                        "join key ({l},{r}) unresolvable against child arities ({la},{ra})"
                    ));
                }
            }
            if let Some(e) = residual {
                check_expr(e, la + ra, "join residual")?;
            }
            // Anti-join filters the left side; join concatenates.
            match plan {
                Plan::AntiJoin { .. } => Ok(la),
                _ => Ok(la + ra),
            }
        }
        Plan::Distinct { input } => shape(db, input),
        Plan::Union { inputs } => {
            let mut arity = None;
            for p in inputs {
                let a = shape(db, p)?;
                match arity {
                    None => arity = Some(a),
                    Some(expect) if expect != a => {
                        return bad(format!(
                            "union mixes arities {expect} and {a} across its inputs"
                        ));
                    }
                    Some(_) => {}
                }
            }
            match arity {
                Some(a) => Ok(a),
                None => bad("union with no inputs".into()),
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let a = shape(db, input)?;
            for &g in group_by {
                if g >= a {
                    return bad(format!("group-by column {g} unresolvable at arity {a}"));
                }
            }
            for agg in aggs {
                if let crate::plan::Agg::Max(c) | crate::plan::Agg::Min(c) = agg {
                    if *c >= a {
                        return bad(format!("aggregate column {c} unresolvable at arity {a}"));
                    }
                }
            }
            Ok(group_by.len() + aggs.len())
        }
        Plan::Values { arity, rows } => {
            for r in rows {
                if r.arity() != *arity {
                    return bad(format!(
                        "values row of arity {} under declared arity {arity}",
                        r.arity()
                    ));
                }
            }
            Ok(*arity)
        }
        Plan::Sort { input, by } => {
            let a = shape(db, input)?;
            for k in by {
                if k.col >= a {
                    return bad(format!("sort key {} unresolvable at arity {a}", k.col));
                }
            }
            Ok(a)
        }
        Plan::Limit { input, .. } => shape(db, input),
    }
}

/// Every column an expression references must resolve at `arity`.
fn check_expr(e: &Expr, arity: usize, what: &str) -> std::result::Result<(), Diagnostic> {
    match e {
        Expr::Col(c) => {
            if *c >= arity {
                return Err(Diagnostic::error(
                    codes::PLAN_SHAPE,
                    format!("{what} references column {c} but input arity is {arity}"),
                ));
            }
            Ok(())
        }
        Expr::Lit(_) => Ok(()),
        Expr::Cmp(_, a, b) => {
            check_expr(a, arity, what)?;
            check_expr(b, arity, what)
        }
        Expr::And(ps) | Expr::Or(ps) => {
            for p in ps {
                check_expr(p, arity, what)?;
            }
            Ok(())
        }
        Expr::Not(inner) => check_expr(inner, arity, what),
    }
}

/// The verifier's own notion of a materialization point, kept in
/// deliberate lockstep with the contract documented on
/// [`crate::exec::spill_points`]: `Sort`, `Aggregate`, `Distinct`,
/// `Join`, and `AntiJoin` each hold state; everything else pipelines.
fn materialization_points(plan: &Plan) -> usize {
    let own = matches!(
        plan,
        Plan::Sort { .. }
            | Plan::Aggregate { .. }
            | Plan::Distinct { .. }
            | Plan::Join { .. }
            | Plan::AntiJoin { .. }
    ) as usize;
    own + plan
        .children()
        .into_iter()
        .map(materialization_points)
        .sum::<usize>()
}

/// Check magic-sets guard well-formedness over a (possibly rewritten)
/// Datalog program. Programs untouched by the rewrite trivially pass.
///
/// Invariants:
///
/// 1. a magic guard in the body of an ordinary (non-magic-head) rule is
///    the **first** body literal — restricted evaluation must start
///    from the demanded keys;
/// 2. that guard names exactly the rule's own head (`R__a` is guarded
///    by `__magic__R__a`), with an adornment drawn from `{b, f}` whose
///    bound-position count equals the guard's arity;
/// 3. magic relations never appear under negation (demand is an
///    over-approximation; negating it would be unsound);
/// 4. every magic relation that is read is defined by some rule (seed
///    or propagation) in the same program.
pub fn verify_magic(program: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let defined: std::collections::BTreeSet<&str> = program
        .rules
        .iter()
        .map(|r| r.head.relation.as_str())
        .collect();
    for rule in &program.rules {
        let magic_head = rule.head.relation.starts_with(MAGIC_PREFIX);
        if magic_head {
            check_adornment(&rule.head.relation, rule.head.terms.len(), rule, &mut out);
        }
        for (i, lit) in rule.body.iter().enumerate() {
            let atom = match lit {
                BodyLit::Pos(a) | BodyLit::Neg(a) => a,
                BodyLit::Cmp(_) | BodyLit::Or(_) => continue,
            };
            if !atom.relation.starts_with(MAGIC_PREFIX) {
                continue;
            }
            if matches!(lit, BodyLit::Neg(_)) {
                out.push(
                    Diagnostic::error(
                        codes::MAGIC_GUARD,
                        format!("magic relation `{}` appears under negation", atom.relation),
                    )
                    .with_context(format!("rule `{rule}`")),
                );
                continue;
            }
            if !defined.contains(atom.relation.as_str()) {
                out.push(
                    Diagnostic::error(
                        codes::MAGIC_GUARD,
                        format!(
                            "demand relation `{}` is read but never derived",
                            atom.relation
                        ),
                    )
                    .with_context(format!("rule `{rule}`")),
                );
            }
            if magic_head {
                // Demand propagation inside seed rules is unrestricted.
                continue;
            }
            // An ordinary rule reading a magic relation is a restricted
            // copy: the guard is first and names the rule's own head.
            if i != 0 {
                out.push(
                    Diagnostic::error(
                        codes::MAGIC_GUARD,
                        format!(
                            "magic guard `{}` must be the first body literal (found at \
                             position {i})",
                            atom.relation
                        ),
                    )
                    .with_context(format!("rule `{rule}`")),
                );
            }
            let target = &atom.relation[MAGIC_PREFIX.len()..];
            if target != rule.head.relation {
                out.push(
                    Diagnostic::error(
                        codes::MAGIC_GUARD,
                        format!(
                            "magic guard `{}` does not match the rule head `{}`",
                            atom.relation, rule.head.relation
                        ),
                    )
                    .with_context(format!("rule `{rule}`")),
                );
            }
            check_adornment(&atom.relation, atom.terms.len(), rule, &mut out);
        }
    }
    out
}

/// A magic relation's name is `__magic__R__a` with `a` over `{b, f}`;
/// its arity is the number of bound (`b`) positions.
fn check_adornment(name: &str, arity: usize, rule: &Rule, out: &mut Vec<Diagnostic>) {
    let adorn = name.rsplit("__").next().unwrap_or("");
    if adorn.is_empty() || !adorn.bytes().all(|b| b == b'b' || b == b'f') {
        out.push(
            Diagnostic::error(
                codes::MAGIC_GUARD,
                format!("magic relation `{name}` has no `{{b,f}}` adornment suffix"),
            )
            .with_context(format!("rule `{rule}`")),
        );
        return;
    }
    let bound = adorn.bytes().filter(|&b| b == b'b').count();
    if bound != arity {
        out.push(
            Diagnostic::error(
                codes::MAGIC_GUARD,
                format!(
                    "magic relation `{name}` carries {arity} argument(s) but its adornment \
                     binds {bound} position(s)"
                ),
            )
            .with_context(format!("rule `{rule}`")),
        );
    }
}

/// Program-level gate used by the magic rewrite: free when the verifier
/// is disabled, first violation as a `DatalogError` otherwise.
#[inline]
pub(crate) fn verify_magic_if_enabled(program: &Program) -> Result<()> {
    if !verify_enabled() {
        return Ok(());
    }
    match verify_magic(program).into_iter().next() {
        None => Ok(()),
        Some(d) => Err(StorageError::DatalogError(d.code_message())),
    }
}
