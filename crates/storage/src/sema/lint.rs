//! The Datalog program linter and the shared contradiction analysis.
//!
//! [`lint_program`] walks a translated program and reports every
//! statically detectable problem as a [`Diagnostic`] — in a fixed,
//! deterministic order (stratification first, then per-rule checks in
//! program order, unused rules last; within a rule, variables in first-
//! occurrence order), so lint output is byte-identical across runs and
//! safe to snapshot in tests.
//!
//! [`expr_contradictory`] is the same conjunctive-constraint analysis
//! applied to plan predicates; `opt::rules::simplify` uses it to fold
//! provably-false selections to an empty `Values`. Both analyses are
//! *sound*, never complete: ignoring a constraint only widens the set
//! of rows they consider satisfiable, so "contradictory" always means
//! "derives zero rows" (the fuzzed property in `tests/sema.rs`).

use super::{codes, unstratifiable, Diagnostic};
use crate::catalog::Database;
use crate::datalog::{head_graph, BodyLit, CmpLit, Program, Rule, Term};
use crate::expr::{CmpOp, Expr};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Lint a Datalog program against `db`. Read-only; diagnostics come
/// back in a deterministic order (see the module docs).
pub fn lint_program(db: &Database, program: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_stratification(program, &mut out);
    for rule in &program.rules {
        lint_rule(db, rule, &mut out);
    }
    lint_unused(program, &mut out);
    out
}

/// BD002: negation through a relation's own recursive component — the
/// same check (and the same diagnostic) the evaluator enforces, caught
/// before evaluation and naming the whole offending cycle.
fn lint_stratification(program: &Program, out: &mut Vec<Diagnostic>) {
    let graph = head_graph(program);
    for comp in graph.sccs() {
        if !graph.component_recursive(&comp) {
            continue;
        }
        let members: BTreeSet<&str> = comp.iter().map(|&i| graph.rels[i].as_str()).collect();
        let cycle: Vec<&str> = members.iter().copied().collect();
        for rule in &program.rules {
            if !members.contains(rule.head.relation.as_str()) {
                continue;
            }
            for lit in &rule.body {
                if let BodyLit::Neg(a) = lit {
                    if members.contains(a.relation.as_str()) {
                        out.push(
                            unstratifiable(&rule.head.relation, &a.relation, &cycle)
                                .with_context(format!("rule `{rule}`")),
                        );
                    }
                }
            }
        }
    }
}

/// BD005: a head relation nothing reads, other than the answer (the
/// last rule's head). One warning per relation, at its first defining
/// rule.
fn lint_unused(program: &Program, out: &mut Vec<Diagnostic>) {
    let Some(answer) = program.rules.last().map(|r| r.head.relation.as_str()) else {
        return;
    };
    let read: BTreeSet<&str> = program
        .rules
        .iter()
        .flat_map(|r| r.body.iter())
        .filter_map(|lit| match lit {
            BodyLit::Pos(a) | BodyLit::Neg(a) => Some(a.relation.as_str()),
            BodyLit::Cmp(_) | BodyLit::Or(_) => None,
        })
        .collect();
    let mut warned: BTreeSet<&str> = BTreeSet::new();
    for rule in &program.rules {
        let head = rule.head.relation.as_str();
        if head != answer && !read.contains(head) && warned.insert(head) {
            out.push(
                Diagnostic::warning(
                    codes::UNUSED_RULE,
                    format!("rule derives `{head}` but no rule reads it and it is not the answer"),
                )
                .with_context(format!("rule `{rule}`")),
            );
        }
    }
}

/// Per-rule checks: safety (BD001), type mismatches (BD003), provable
/// emptiness (BD004), singleton variables (BD006).
fn lint_rule(db: &Database, rule: &Rule, out: &mut Vec<Diagnostic>) {
    let ctx = || format!("rule `{rule}`");

    // Variables bound by a positive body atom — the only binders.
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    for lit in &rule.body {
        if let BodyLit::Pos(a) = lit {
            for t in &a.terms {
                if let Term::Var(v) = t {
                    bound.insert(v.as_str());
                }
            }
        }
    }

    // Every variable in first-occurrence order, with occurrence counts.
    let mut order: Vec<&str> = Vec::new();
    let mut occurrences: BTreeMap<&str, usize> = BTreeMap::new();
    for t in rule_terms(rule) {
        if let Term::Var(v) = t {
            let n = occurrences.entry(v.as_str()).or_insert(0);
            if *n == 0 {
                order.push(v.as_str());
            }
            *n += 1;
        }
    }

    // BD001 — safety / range restriction: head, negation, and
    // comparison variables all need a positive binding.
    let mut flagged: BTreeSet<&str> = BTreeSet::new();
    for t in &rule.head.terms {
        if let Term::Var(v) = t {
            if !bound.contains(v.as_str()) && flagged.insert(v) {
                out.push(
                    Diagnostic::error(
                        codes::UNSAFE_RULE,
                        format!("head variable `{v}` is not bound by any positive body atom"),
                    )
                    .with_context(ctx()),
                );
            }
        }
    }
    for lit in &rule.body {
        let vars: Vec<&str> = match lit {
            BodyLit::Pos(_) => continue,
            BodyLit::Neg(a) => a
                .terms
                .iter()
                .filter_map(|t| match t {
                    Term::Var(v) => Some(v.as_str()),
                    _ => None,
                })
                .collect(),
            BodyLit::Cmp(c) => cmp_vars(c),
            BodyLit::Or(groups) => groups.iter().flatten().flat_map(cmp_vars).collect(),
        };
        let what = match lit {
            BodyLit::Neg(_) => "negated atom",
            _ => "comparison",
        };
        for v in vars {
            if !bound.contains(v) && flagged.insert(v) {
                out.push(
                    Diagnostic::error(
                        codes::UNSAFE_RULE,
                        format!("variable `{v}` in a {what} has no positive binding"),
                    )
                    .with_context(ctx()),
                );
            }
        }
    }

    // BD003 — type evidence per variable: base-table column samples at
    // the positions the variable is bound, plus constants it is
    // compared against. Two distinct kinds is a (dynamically legal but
    // almost surely unintended) mixed-type comparison.
    let mut evidence: BTreeMap<&str, BTreeSet<Kind>> = BTreeMap::new();
    for lit in &rule.body {
        if let BodyLit::Pos(a) = lit {
            for (i, t) in a.terms.iter().enumerate() {
                if let (Term::Var(v), Some(k)) = (t, sample_kind(db, &a.relation, i)) {
                    evidence.entry(v.as_str()).or_default().insert(k);
                }
            }
        }
    }
    for c in rule_cmps(rule) {
        if let (Term::Var(v), Term::Const(k)) | (Term::Const(k), Term::Var(v)) = (&c.left, &c.right)
        {
            if let Some(kind) = Kind::of(k) {
                evidence.entry(v.as_str()).or_default().insert(kind);
            }
        }
        if let (Term::Const(a), Term::Const(b)) = (&c.left, &c.right) {
            if let (Some(ka), Some(kb)) = (Kind::of(a), Kind::of(b)) {
                if ka != kb {
                    out.push(
                        Diagnostic::warning(
                            codes::TYPE_MISMATCH,
                            format!("comparison `{c}` mixes {ka} and {kb}"),
                        )
                        .with_context(ctx()),
                    );
                }
            }
        }
    }
    for v in &order {
        if let Some(kinds) = evidence.get(v) {
            if kinds.len() > 1 {
                let rendered: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
                out.push(
                    Diagnostic::warning(
                        codes::TYPE_MISMATCH,
                        format!(
                            "variable `{v}` is compared against mixed types ({})",
                            rendered.join(", ")
                        ),
                    )
                    .with_context(ctx()),
                );
            }
        }
    }

    // BD004 — provable emptiness from the conjunctive comparisons.
    let mut constraints: BTreeMap<&str, Constraints> = BTreeMap::new();
    let mut always_false: Option<String> = None;
    for lit in &rule.body {
        match lit {
            BodyLit::Cmp(c) => {
                if let Some(reason) = apply_cmp(c, &mut constraints) {
                    always_false.get_or_insert(reason);
                }
            }
            BodyLit::Or(groups) => {
                // A disjunction every branch of which is unsatisfiable
                // (on its own, or against the outer constraints) kills
                // the rule.
                let dead = !groups.is_empty()
                    && groups.iter().all(|conj| {
                        let mut branch = constraints.clone();
                        conj.iter().any(|c| apply_cmp(c, &mut branch).is_some())
                            || branch.values().any(Constraints::contradictory)
                    });
                if dead {
                    always_false.get_or_insert_with(|| {
                        "every branch of the disjunction is unsatisfiable".into()
                    });
                }
            }
            _ => {}
        }
    }
    if let Some(reason) = always_false {
        out.push(
            Diagnostic::warning(
                codes::PROVABLY_EMPTY,
                format!("rule is provably empty: {reason}"),
            )
            .with_context(ctx()),
        );
    } else {
        for v in &order {
            if constraints.get(v).is_some_and(Constraints::contradictory) {
                out.push(
                    Diagnostic::warning(
                        codes::PROVABLY_EMPTY,
                        format!("rule is provably empty: constraints on `{v}` are unsatisfiable"),
                    )
                    .with_context(ctx()),
                );
            }
        }
    }

    // BD006 — singleton variables: named once, used nowhere else.
    // Leading-underscore names are conventionally intentional.
    for v in &order {
        if occurrences[v] == 1 && !v.starts_with('_') {
            out.push(
                Diagnostic::warning(
                    codes::SINGLETON_VAR,
                    format!("variable `{v}` occurs only once; use `_` if unconstrained"),
                )
                .with_context(ctx()),
            );
        }
    }
}

/// Fold one comparison literal into the per-variable constraint sets.
/// Returns `Some(reason)` when the literal itself is statically false.
fn apply_cmp<'a>(
    c: &'a CmpLit,
    constraints: &mut BTreeMap<&'a str, Constraints>,
) -> Option<String> {
    match (&c.left, &c.right) {
        (Term::Var(v), Term::Const(k)) => {
            constraints.entry(v.as_str()).or_default().add(c.op, k);
            None
        }
        (Term::Const(k), Term::Var(v)) => {
            constraints
                .entry(v.as_str())
                .or_default()
                .add(c.op.flip(), k);
            None
        }
        (Term::Const(a), Term::Const(b)) => {
            (!c.op.eval(a, b)).then(|| format!("comparison `{c}` is always false"))
        }
        (Term::Var(a), Term::Var(b)) if a == b => matches!(c.op, CmpOp::Ne | CmpOp::Lt | CmpOp::Gt)
            .then(|| format!("comparison `{c}` relates a variable to itself")),
        _ => None,
    }
}

/// Every term of the rule — head first, then body literals in order.
fn rule_terms(rule: &Rule) -> Vec<&Term> {
    let mut terms: Vec<&Term> = rule.head.terms.iter().collect();
    for lit in &rule.body {
        match lit {
            BodyLit::Pos(a) | BodyLit::Neg(a) => terms.extend(a.terms.iter()),
            BodyLit::Cmp(c) => terms.extend([&c.left, &c.right]),
            BodyLit::Or(groups) => {
                terms.extend(groups.iter().flatten().flat_map(|c| [&c.left, &c.right]));
            }
        }
    }
    terms
}

/// Every comparison literal of the rule, including those inside
/// disjunction groups, in body order.
fn rule_cmps(rule: &Rule) -> Vec<&CmpLit> {
    let mut cmps = Vec::new();
    for lit in &rule.body {
        match lit {
            BodyLit::Cmp(c) => cmps.push(c),
            BodyLit::Or(groups) => cmps.extend(groups.iter().flatten()),
            _ => {}
        }
    }
    cmps
}

fn cmp_vars(c: &CmpLit) -> Vec<&str> {
    let mut vars = Vec::new();
    for t in [&c.left, &c.right] {
        if let Term::Var(v) = t {
            vars.push(v.as_str());
        }
    }
    vars
}

/// The kind of the first value stored at `rel[col]`, when `rel` is a
/// base table with at least one row. Dynamically-typed storage has no
/// declared column types, so a sample is the best static evidence.
fn sample_kind(db: &Database, rel: &str, col: usize) -> Option<Kind> {
    let table = db.table(rel).ok()?;
    let (_, row) = table.iter().next()?;
    Kind::of(row.get(col).ok()?)
}

/// Coarse value kind for mismatch detection. `Null` carries no
/// evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Bool,
    Int,
    Str,
}

impl Kind {
    fn of(v: &Value) -> Option<Kind> {
        match v {
            Value::Null => None,
            Value::Bool(_) => Some(Kind::Bool),
            Value::Int(_) => Some(Kind::Int),
            Value::Str(_) => Some(Kind::Str),
        }
    }
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Kind::Bool => write!(f, "bool"),
            Kind::Int => write!(f, "int"),
            Kind::Str => write!(f, "string"),
        }
    }
}

/// Conjunctive constraints on one variable / column, over the engine's
/// total value order (`Null < Bool < Int < Str`). Exactly mirrors
/// [`CmpOp::eval`], so "contradictory" is sound for real execution.
#[derive(Debug, Default, Clone)]
struct Constraints {
    eq: Option<Value>,
    ne: Vec<Value>,
    lower: Option<(Value, bool)>,
    upper: Option<(Value, bool)>,
    impossible: bool,
}

impl Constraints {
    fn add(&mut self, op: CmpOp, v: &Value) {
        match op {
            CmpOp::Eq => match &self.eq {
                Some(w) if w != v => self.impossible = true,
                _ => self.eq = Some(v.clone()),
            },
            CmpOp::Ne => self.ne.push(v.clone()),
            CmpOp::Lt => self.tighten_upper(v, true),
            CmpOp::Le => self.tighten_upper(v, false),
            CmpOp::Gt => self.tighten_lower(v, true),
            CmpOp::Ge => self.tighten_lower(v, false),
        }
    }

    fn tighten_upper(&mut self, v: &Value, strict: bool) {
        let replace = match &self.upper {
            None => true,
            Some((cur, cur_strict)) => v < cur || (v == cur && strict && !cur_strict),
        };
        if replace {
            self.upper = Some((v.clone(), strict));
        }
    }

    fn tighten_lower(&mut self, v: &Value, strict: bool) {
        let replace = match &self.lower {
            None => true,
            Some((cur, cur_strict)) => v > cur || (v == cur && strict && !cur_strict),
        };
        if replace {
            self.lower = Some((v.clone(), strict));
        }
    }

    /// Provably unsatisfiable? Sound, not complete.
    fn contradictory(&self) -> bool {
        if self.impossible {
            return true;
        }
        if let Some(eq) = &self.eq {
            if self.ne.iter().any(|n| n == eq) {
                return true;
            }
            if let Some((lo, strict)) = &self.lower {
                if eq < lo || (eq == lo && *strict) {
                    return true;
                }
            }
            if let Some((hi, strict)) = &self.upper {
                if eq > hi || (eq == hi && *strict) {
                    return true;
                }
            }
        }
        if let (Some((lo, ls)), Some((hi, hs))) = (&self.lower, &self.upper) {
            if lo > hi || (lo == hi && (*ls || *hs)) {
                return true;
            }
            // The value domain is closed: nothing sits strictly between
            // consecutive integers (strings sort above *all* ints), so
            // the open interval (n, n+1) is empty.
            if *ls && *hs {
                if let (Value::Int(a), Value::Int(b)) = (lo, hi) {
                    if *b == a.saturating_add(1) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Is this predicate provably false for every row? Sound (true ⇒ the
/// selection emits nothing), never complete. The optimizer folds such
/// selections to an empty `Values`.
pub fn expr_contradictory(e: &Expr) -> bool {
    match e {
        Expr::Lit(v) => matches!(v, Value::Bool(false)),
        Expr::Or(ps) => !ps.is_empty() && ps.iter().all(expr_contradictory),
        Expr::And(_) | Expr::Cmp(..) => conjunction_contradictory(e),
        Expr::Col(_) | Expr::Not(_) => false,
    }
}

fn conjunction_contradictory(e: &Expr) -> bool {
    let mut conjuncts = Vec::new();
    flatten_and(e, &mut conjuncts);
    let mut cons: BTreeMap<usize, Constraints> = BTreeMap::new();
    for c in conjuncts {
        match c {
            Expr::Lit(Value::Bool(false)) => return true,
            Expr::Or(_) if expr_contradictory(c) => return true,
            Expr::Cmp(op, a, b) => match (&**a, &**b) {
                (Expr::Col(i), Expr::Lit(v)) => cons.entry(*i).or_default().add(*op, v),
                (Expr::Lit(v), Expr::Col(i)) => cons.entry(*i).or_default().add(op.flip(), v),
                (Expr::Lit(x), Expr::Lit(y)) if !op.eval(x, y) => return true,
                (Expr::Col(i), Expr::Col(j))
                    if i == j && matches!(op, CmpOp::Ne | CmpOp::Lt | CmpOp::Gt) =>
                {
                    return true;
                }
                _ => {}
            },
            _ => {}
        }
    }
    cons.values().any(Constraints::contradictory)
}

fn flatten_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::And(ps) => {
            for p in ps {
                flatten_and(p, out);
            }
        }
        _ => out.push(e),
    }
}
