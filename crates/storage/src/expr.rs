//! Scalar expressions evaluated against rows.
//!
//! Algorithm 1 of the paper produces conditions with nested disjunctions of
//! (in)equalities over temp-table columns — e.g. for a negative subgoal:
//! `(s = '−' ∧ x̄t = x̄) ∨ (s = '+' ∧ ⋁_j x̄t[j] ≠ x̄[j])`. The expression
//! language here is exactly what that translation needs: column references,
//! literals, the six comparison operators, and AND/OR/NOT.

use crate::error::{Result, StorageError};
use crate::row::Row;
use crate::value::Value;
use std::fmt;

/// Comparison operators (the paper's arithmetic predicates, Def. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The operator with its operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression over the columns of a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Value of the column at this position.
    Col(usize),
    /// A literal constant.
    Lit(Value),
    /// Binary comparison; yields a boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction (empty = true).
    And(Vec<Expr>),
    /// Disjunction (empty = false).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// `col_a = col_b`
    pub fn col_eq_col(a: usize, b: usize) -> Expr {
        Expr::cmp(CmpOp::Eq, Expr::Col(a), Expr::Col(b))
    }

    /// `col = literal`
    pub fn col_eq_lit(c: usize, v: impl Into<Value>) -> Expr {
        Expr::cmp(CmpOp::Eq, Expr::Col(c), Expr::lit(v))
    }

    /// Conjunction that collapses trivial cases.
    pub fn and(parts: Vec<Expr>) -> Expr {
        match parts.len() {
            1 => parts.into_iter().next().expect("len checked"),
            _ => Expr::And(parts),
        }
    }

    /// Disjunction that collapses trivial cases.
    pub fn or(parts: Vec<Expr>) -> Expr {
        match parts.len() {
            1 => parts.into_iter().next().expect("len checked"),
            _ => Expr::Or(parts),
        }
    }

    /// Evaluate to a [`Value`].
    pub fn eval(&self, row: &Row) -> Result<Value> {
        Ok(match self {
            Expr::Col(i) => row.get(*i)?.clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, a, b) => Value::Bool(op.eval(&a.eval(row)?, &b.eval(row)?)),
            Expr::And(parts) => {
                for p in parts {
                    if !p.eval_bool(row)? {
                        return Ok(Value::Bool(false));
                    }
                }
                Value::Bool(true)
            }
            Expr::Or(parts) => {
                for p in parts {
                    if p.eval_bool(row)? {
                        return Ok(Value::Bool(true));
                    }
                }
                Value::Bool(false)
            }
            Expr::Not(inner) => Value::Bool(!inner.eval_bool(row)?),
        })
    }

    /// Evaluate as a boolean predicate.
    pub fn eval_bool(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            other => Err(StorageError::TypeError(format!(
                "expected boolean predicate, got `{other}`"
            ))),
        }
    }

    /// Largest column index referenced, if any (for arity validation).
    pub fn max_col(&self) -> Option<usize> {
        match self {
            Expr::Col(i) => Some(*i),
            Expr::Lit(_) => None,
            Expr::Cmp(_, a, b) => a.max_col().into_iter().chain(b.max_col()).max(),
            Expr::And(ps) | Expr::Or(ps) => ps.iter().filter_map(|p| p.max_col()).max(),
            Expr::Not(inner) => inner.max_col(),
        }
    }

    /// Rewrite column references through a mapping (`old index -> new index`).
    /// Used when an operator reorders or offsets its input columns.
    pub fn remap_cols(&self, f: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(f(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::cmp(*op, a.remap_cols(f), b.remap_cols(f)),
            Expr::And(ps) => Expr::And(ps.iter().map(|p| p.remap_cols(f)).collect()),
            Expr::Or(ps) => Expr::Or(ps.iter().map(|p| p.remap_cols(f)).collect()),
            Expr::Not(inner) => Expr::Not(Box::new(inner.remap_cols(f))),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(ps) => {
                if ps.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::Or(ps) => {
                if ps.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::Not(inner) => write!(f, "NOT {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn cmp_ops() {
        let a = Value::int(1);
        let b = Value::int(2);
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &a));
        assert!(CmpOp::Gt.eval(&b, &a));
        assert!(CmpOp::Ge.eval(&b, &b));
        assert!(CmpOp::Eq.eval(&a, &a));
        assert!(CmpOp::Ne.eval(&a, &b));
    }

    #[test]
    fn flip_is_involutive_and_correct() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
            let a = Value::int(1);
            let b = Value::int(2);
            assert_eq!(op.eval(&a, &b), op.flip().eval(&b, &a));
        }
    }

    #[test]
    fn eval_column_and_literal() {
        let r = row!["s1", "crow", 3];
        assert_eq!(Expr::col(1).eval(&r).unwrap(), Value::str("crow"));
        assert_eq!(Expr::lit(7).eval(&r).unwrap(), Value::int(7));
        assert!(Expr::col(9).eval(&r).is_err());
    }

    #[test]
    fn eval_predicates() {
        let r = row!["s1", "crow", 3];
        assert!(Expr::col_eq_lit(1, "crow").eval_bool(&r).unwrap());
        assert!(!Expr::col_eq_lit(1, "raven").eval_bool(&r).unwrap());
        let pred = Expr::and(vec![
            Expr::col_eq_lit(0, "s1"),
            Expr::cmp(CmpOp::Gt, Expr::col(2), Expr::lit(2)),
        ]);
        assert!(pred.eval_bool(&r).unwrap());
        let pred = Expr::or(vec![
            Expr::col_eq_lit(1, "raven"),
            Expr::col_eq_lit(1, "crow"),
        ]);
        assert!(pred.eval_bool(&r).unwrap());
        assert!(!Expr::Not(Box::new(Expr::lit(true))).eval_bool(&r).unwrap());
    }

    #[test]
    fn empty_and_or() {
        let r = row![1];
        assert!(Expr::And(vec![]).eval_bool(&r).unwrap());
        assert!(!Expr::Or(vec![]).eval_bool(&r).unwrap());
    }

    #[test]
    fn eval_bool_rejects_non_bool() {
        let r = row![1];
        assert!(matches!(
            Expr::col(0).eval_bool(&r),
            Err(StorageError::TypeError(_))
        ));
    }

    #[test]
    fn max_col_and_remap() {
        let e = Expr::and(vec![Expr::col_eq_col(1, 4), Expr::col_eq_lit(2, "x")]);
        assert_eq!(e.max_col(), Some(4));
        assert_eq!(Expr::lit(1).max_col(), None);
        let shifted = e.remap_cols(&|i| i + 10);
        assert_eq!(shifted.max_col(), Some(14));
        let r = row![0, "a", "x", 0, "a", 0, 0, 0, 0, 0, 0, "a", "x", 0, "a"];
        assert!(shifted.eval_bool(&r).unwrap());
    }

    #[test]
    fn display_round_trips_structure() {
        let e = Expr::or(vec![
            Expr::and(vec![Expr::col_eq_lit(4, "-"), Expr::col_eq_col(1, 2)]),
            Expr::cmp(CmpOp::Ne, Expr::col(1), Expr::col(2)),
        ]);
        let s = e.to_string();
        assert!(s.contains("OR"));
        assert!(s.contains("AND"));
        assert!(s.contains("<>"));
    }

    #[test]
    fn nested_disjunction_like_algorithm1() {
        // (s = '-' AND u2 = u AND v2 = v) OR (s = '+' AND (u2 <> u OR v2 <> v))
        // over row layout: [u, v, u2, v2, s]
        let cond = Expr::or(vec![
            Expr::and(vec![
                Expr::col_eq_lit(4, "-"),
                Expr::col_eq_col(2, 0),
                Expr::col_eq_col(3, 1),
            ]),
            Expr::and(vec![
                Expr::col_eq_lit(4, "+"),
                Expr::or(vec![
                    Expr::cmp(CmpOp::Ne, Expr::col(2), Expr::col(0)),
                    Expr::cmp(CmpOp::Ne, Expr::col(3), Expr::col(1)),
                ]),
            ]),
        ]);
        // stated negative: matches
        assert!(cond.eval_bool(&row!["c1", "o1", "c1", "o1", "-"]).unwrap());
        // unstated negative: same key, different category
        assert!(cond.eval_bool(&row!["c1", "o1", "c2", "o1", "+"]).unwrap());
        // identical positive: no conflict
        assert!(!cond.eval_bool(&row!["c1", "o1", "c1", "o1", "+"]).unwrap());
        // different negative: not a match
        assert!(!cond.eval_bool(&row!["c1", "o1", "c2", "o1", "-"]).unwrap());
    }
}
