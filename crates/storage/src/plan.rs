//! Logical query plans.
//!
//! The plan language is positional: every operator produces rows of a fixed
//! arity and column references are indexes into those rows. It covers
//! exactly the relational algebra the paper's translation needs —
//! selections, projections, equi/theta joins, anti-joins (for the
//! `not exists` consistency checks of Algorithms 2–4), distinct, union, and
//! MAX/MIN/COUNT aggregation (Algorithm 3's deepest-suffix-state query).

use crate::catalog::Database;
use crate::error::{Result, StorageError};
use crate::expr::Expr;
use crate::row::Row;

/// Aggregate functions.
#[derive(Debug, Clone, PartialEq)]
pub enum Agg {
    /// Number of input rows in the group.
    Count,
    /// Maximum of a column within the group.
    Max(usize),
    /// Minimum of a column within the group.
    Min(usize),
}

/// One sort criterion: a column position plus direction. `usize`
/// converts into an ascending key, so `plan.sort(vec![0, 1])` keeps
/// reading naturally; descending keys come from [`SortKey::desc`]
/// (`ORDER BY ... DESC` in the SQL front-end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub col: usize,
    pub desc: bool,
}

impl SortKey {
    /// Ascending sort on `col`.
    pub fn asc(col: usize) -> SortKey {
        SortKey { col, desc: false }
    }

    /// Descending sort on `col`.
    pub fn desc(col: usize) -> SortKey {
        SortKey { col, desc: true }
    }
}

impl From<usize> for SortKey {
    fn from(col: usize) -> SortKey {
        SortKey::asc(col)
    }
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// All live rows of a named table.
    Scan { table: String },
    /// Rows of `input` satisfying `predicate`.
    Selection { input: Box<Plan>, predicate: Expr },
    /// Each row of `input` mapped through `exprs`.
    Projection { input: Box<Plan>, exprs: Vec<Expr> },
    /// Join: rows `l ++ r` with `l[a] = r[b]` for each `(a, b)` in `on`,
    /// and optionally satisfying `residual` (evaluated over `l ++ r`).
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        on: Vec<(usize, usize)>,
        residual: Option<Expr>,
    },
    /// Anti-join: rows of `left` with *no* matching `right` row, where a
    /// match means all `on` pairs are equal and `residual` (over `l ++ r`)
    /// holds. This implements `NOT EXISTS` subqueries.
    AntiJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        on: Vec<(usize, usize)>,
        residual: Option<Expr>,
    },
    /// Duplicate elimination.
    Distinct { input: Box<Plan> },
    /// Bag union of plans with identical arity.
    Union { inputs: Vec<Plan> },
    /// Hash aggregation. Output row = group-by columns ++ aggregate values.
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<usize>,
        aggs: Vec<Agg>,
    },
    /// A literal relation.
    Values { arity: usize, rows: Vec<Row> },
    /// Sort by the given keys (deterministic output for tests and
    /// reports; `ORDER BY` in the SQL front-end).
    Sort { input: Box<Plan>, by: Vec<SortKey> },
    /// At most `n` rows.
    Limit { input: Box<Plan>, n: usize },
}

impl Plan {
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
        }
    }

    pub fn select(self, predicate: Expr) -> Plan {
        Plan::Selection {
            input: Box::new(self),
            predicate,
        }
    }

    pub fn project(self, exprs: Vec<Expr>) -> Plan {
        Plan::Projection {
            input: Box::new(self),
            exprs,
        }
    }

    /// Convenience: projection by column positions.
    pub fn project_cols(self, cols: &[usize]) -> Plan {
        self.project(cols.iter().map(|&c| Expr::Col(c)).collect())
    }

    pub fn join(self, right: Plan, on: Vec<(usize, usize)>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
            residual: None,
        }
    }

    pub fn join_where(self, right: Plan, on: Vec<(usize, usize)>, residual: Expr) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
            residual: Some(residual),
        }
    }

    pub fn anti_join(self, right: Plan, on: Vec<(usize, usize)>) -> Plan {
        Plan::AntiJoin {
            left: Box::new(self),
            right: Box::new(right),
            on,
            residual: None,
        }
    }

    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    pub fn sort<K: Into<SortKey>>(self, by: Vec<K>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            by: by.into_iter().map(Into::into).collect(),
        }
    }

    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Single-row, zero-column relation — the unit for join chains.
    pub fn unit() -> Plan {
        Plan::Values {
            arity: 0,
            rows: vec![Row::new(vec![])],
        }
    }

    /// Child plans in evaluation order (left before right). Used by the
    /// optimizer's single-pass bottom-up estimation and by `EXPLAIN`.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } | Plan::Values { .. } => Vec::new(),
            Plan::Selection { input, .. }
            | Plan::Projection { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => vec![input],
            Plan::Join { left, right, .. } | Plan::AntiJoin { left, right, .. } => {
                vec![left, right]
            }
            Plan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// Number of output columns, validated against the catalog.
    pub fn arity(&self, db: &Database) -> Result<usize> {
        match self {
            Plan::Scan { table } => match db.table(table) {
                Ok(t) => Ok(t.schema().arity()),
                // Virtual (`sys.*`) relations scan like base tables.
                Err(e) => db
                    .virtual_table(table)
                    .map(|vt| vt.schema().arity())
                    .ok_or(e),
            },
            Plan::Selection { input, predicate } => {
                let a = input.arity(db)?;
                if let Some(m) = predicate.max_col() {
                    if m >= a {
                        return Err(StorageError::PlanError(format!(
                            "selection references column {m} but input arity is {a}"
                        )));
                    }
                }
                Ok(a)
            }
            Plan::Projection { input, exprs } => {
                let a = input.arity(db)?;
                for e in exprs {
                    if let Some(m) = e.max_col() {
                        if m >= a {
                            return Err(StorageError::PlanError(format!(
                                "projection references column {m} but input arity is {a}"
                            )));
                        }
                    }
                }
                Ok(exprs.len())
            }
            Plan::Join {
                left,
                right,
                on,
                residual,
            } => {
                let la = left.arity(db)?;
                let ra = right.arity(db)?;
                for &(l, r) in on {
                    if l >= la || r >= ra {
                        return Err(StorageError::PlanError(format!(
                            "join key ({l},{r}) out of range for arities ({la},{ra})"
                        )));
                    }
                }
                if let Some(m) = residual.as_ref().and_then(|e| e.max_col()) {
                    if m >= la + ra {
                        return Err(StorageError::PlanError(format!(
                            "join residual references column {m} but joined arity is {}",
                            la + ra
                        )));
                    }
                }
                Ok(la + ra)
            }
            Plan::AntiJoin {
                left,
                right,
                on,
                residual,
            } => {
                let la = left.arity(db)?;
                let ra = right.arity(db)?;
                for &(l, r) in on {
                    if l >= la || r >= ra {
                        return Err(StorageError::PlanError(format!(
                            "anti-join key ({l},{r}) out of range for arities ({la},{ra})"
                        )));
                    }
                }
                if let Some(m) = residual.as_ref().and_then(|e| e.max_col()) {
                    if m >= la + ra {
                        return Err(StorageError::PlanError(format!(
                            "anti-join residual references column {m} but joined arity is {}",
                            la + ra
                        )));
                    }
                }
                Ok(la)
            }
            Plan::Distinct { input } => input.arity(db),
            Plan::Union { inputs } => {
                if inputs.is_empty() {
                    return Err(StorageError::PlanError("empty union".into()));
                }
                let a = inputs[0].arity(db)?;
                for p in &inputs[1..] {
                    if p.arity(db)? != a {
                        return Err(StorageError::PlanError("union arity mismatch".into()));
                    }
                }
                Ok(a)
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let a = input.arity(db)?;
                for &g in group_by {
                    if g >= a {
                        return Err(StorageError::PlanError(format!(
                            "group-by column {g} out of range for arity {a}"
                        )));
                    }
                }
                for agg in aggs {
                    if let Agg::Max(c) | Agg::Min(c) = agg {
                        if *c >= a {
                            return Err(StorageError::PlanError(format!(
                                "aggregate column {c} out of range for arity {a}"
                            )));
                        }
                    }
                }
                Ok(group_by.len() + aggs.len())
            }
            Plan::Values { arity, rows } => {
                for r in rows {
                    if r.arity() != *arity {
                        return Err(StorageError::PlanError(format!(
                            "values row arity {} does not match declared {arity}",
                            r.arity()
                        )));
                    }
                }
                Ok(*arity)
            }
            Plan::Sort { input, by } => {
                let a = input.arity(db)?;
                for k in by {
                    let c = k.col;
                    if c >= a {
                        return Err(StorageError::PlanError(format!(
                            "sort column {c} out of range for arity {a}"
                        )));
                    }
                }
                Ok(a)
            }
            Plan::Limit { input, .. } => input.arity(db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::TableSchema;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("Users", &["uid", "name"]))
            .unwrap();
        db.create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
            .unwrap();
        db
    }

    #[test]
    fn arities_compose() {
        let db = db();
        assert_eq!(Plan::scan("Users").arity(&db).unwrap(), 2);
        let j = Plan::scan("Users").join(Plan::scan("E"), vec![(0, 1)]);
        assert_eq!(j.arity(&db).unwrap(), 5);
        let p = j.project_cols(&[4, 1]);
        assert_eq!(p.arity(&db).unwrap(), 2);
        assert_eq!(Plan::unit().arity(&db).unwrap(), 0);
    }

    #[test]
    fn selection_validates_columns() {
        let db = db();
        let bad = Plan::scan("Users").select(Expr::col_eq_lit(5, 1));
        assert!(matches!(bad.arity(&db), Err(StorageError::PlanError(_))));
    }

    #[test]
    fn join_validates_keys_and_residual() {
        let db = db();
        let bad = Plan::scan("Users").join(Plan::scan("E"), vec![(2, 0)]);
        assert!(bad.arity(&db).is_err());
        let bad =
            Plan::scan("Users").join_where(Plan::scan("E"), vec![(0, 1)], Expr::col_eq_lit(7, 1));
        assert!(bad.arity(&db).is_err());
        let ok =
            Plan::scan("Users").join_where(Plan::scan("E"), vec![(0, 1)], Expr::col_eq_lit(4, 1));
        assert_eq!(ok.arity(&db).unwrap(), 5);
    }

    #[test]
    fn anti_join_keeps_left_arity() {
        let db = db();
        let p = Plan::scan("Users").anti_join(Plan::scan("E"), vec![(0, 1)]);
        assert_eq!(p.arity(&db).unwrap(), 2);
    }

    #[test]
    fn union_checks_arity() {
        let db = db();
        let ok = Plan::Union {
            inputs: vec![Plan::scan("Users"), Plan::scan("Users")],
        };
        assert_eq!(ok.arity(&db).unwrap(), 2);
        let bad = Plan::Union {
            inputs: vec![Plan::scan("Users"), Plan::scan("E")],
        };
        assert!(bad.arity(&db).is_err());
        let empty = Plan::Union { inputs: vec![] };
        assert!(empty.arity(&db).is_err());
    }

    #[test]
    fn aggregate_arity() {
        let db = db();
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("E")),
            group_by: vec![0],
            aggs: vec![Agg::Count, Agg::Max(2)],
        };
        assert_eq!(p.arity(&db).unwrap(), 3);
        let bad = Plan::Aggregate {
            input: Box::new(Plan::scan("E")),
            group_by: vec![9],
            aggs: vec![],
        };
        assert!(bad.arity(&db).is_err());
    }

    #[test]
    fn values_validates_rows() {
        let db = db();
        let ok = Plan::Values {
            arity: 2,
            rows: vec![row![1, 2]],
        };
        assert_eq!(ok.arity(&db).unwrap(), 2);
        let bad = Plan::Values {
            arity: 2,
            rows: vec![row![1]],
        };
        assert!(bad.arity(&db).is_err());
    }

    #[test]
    fn unknown_table_is_an_error() {
        let db = db();
        assert!(Plan::scan("Nope").arity(&db).is_err());
    }
}
