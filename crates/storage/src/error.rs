//! Error taxonomy for the storage engine.

use std::fmt;

/// Errors raised by the storage engine.
///
/// Every public fallible operation in this crate returns
/// [`Result<T, StorageError>`](StorageError). The variants are deliberately
/// coarse: callers in `beliefdb-core` either propagate them or treat them as
/// internal invariant violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    NoSuchTable(String),
    /// No column with this name exists in the referenced table.
    NoSuchColumn { table: String, column: String },
    /// A row's arity does not match the table schema.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// Inserting the row would violate the table's primary-key constraint.
    DuplicateKey { table: String, key: String },
    /// An index with this specification already exists.
    IndexExists { table: String, name: String },
    /// No index with this name exists on the table.
    NoSuchIndex { table: String, name: String },
    /// A row id referenced a deleted or out-of-range slot.
    InvalidRowId { table: String, row_id: usize },
    /// An expression referenced a column index beyond the row arity.
    ColumnOutOfRange { index: usize, arity: usize },
    /// An expression was applied to operands of incompatible types.
    TypeError(String),
    /// A query plan is malformed (arity mismatches between operators, etc.).
    PlanError(String),
    /// A Datalog program is malformed (unsafe rule, unknown relation, ...).
    DatalogError(String),
    /// An I/O failure in the durability layer (WAL append, snapshot write,
    /// directory scan). Carries the rendered `std::io::Error` — the error
    /// type itself stays `Clone`/`Eq` for the layers above.
    Io(String),
    /// On-disk state failed validation during recovery (bad magic, CRC
    /// mismatch beyond the torn tail, truncated snapshot, LSN gap).
    Corrupt(String),
    /// The name is reserved for system objects (the `sys.` namespace) or
    /// the operation is not supported on a virtual system table.
    ReservedName(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(name) => write!(f, "table `{name}` already exists"),
            StorageError::NoSuchTable(name) => write!(f, "no such table `{name}`"),
            StorageError::NoSuchColumn { table, column } => {
                write!(f, "no column `{column}` in table `{table}`")
            }
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "arity mismatch for `{table}`: expected {expected} values, got {got}"
                )
            }
            StorageError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in table `{table}`")
            }
            StorageError::IndexExists { table, name } => {
                write!(f, "index `{name}` already exists on table `{table}`")
            }
            StorageError::NoSuchIndex { table, name } => {
                write!(f, "no index `{name}` on table `{table}`")
            }
            StorageError::InvalidRowId { table, row_id } => {
                write!(f, "invalid row id {row_id} for table `{table}`")
            }
            StorageError::ColumnOutOfRange { index, arity } => {
                write!(f, "column index {index} out of range for arity {arity}")
            }
            StorageError::TypeError(msg) => write!(f, "type error: {msg}"),
            StorageError::PlanError(msg) => write!(f, "plan error: {msg}"),
            StorageError::DatalogError(msg) => write!(f, "datalog error: {msg}"),
            StorageError::Io(msg) => write!(f, "io error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
            StorageError::ReservedName(msg) => write!(f, "reserved system name: {msg}"),
        }
    }
}

impl StorageError {
    /// The stable `BD0xx` diagnostic code carried by this error, if the
    /// raising site attached one (rendered as `[BDnnn]` inside the
    /// message — see [`crate::sema::Diagnostic::code_message`]). Tests
    /// and tools match on this instead of message text.
    pub fn code(&self) -> Option<&str> {
        let msg = match self {
            StorageError::TypeError(m)
            | StorageError::PlanError(m)
            | StorageError::DatalogError(m)
            | StorageError::ReservedName(m) => m,
            _ => return None,
        };
        let start = msg.find("[BD")?;
        let rest = &msg[start + 1..];
        let end = rest.find(']')?;
        Some(&rest[..end])
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T, E = StorageError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = StorageError::NoSuchTable("Sightings".into());
        assert_eq!(err.to_string(), "no such table `Sightings`");
        let err = StorageError::ArityMismatch {
            table: "V".into(),
            expected: 5,
            got: 4,
        };
        assert!(err.to_string().contains("expected 5"));
        let err = StorageError::DuplicateKey {
            table: "D".into(),
            key: "Int(3)".into(),
        };
        assert!(err.to_string().contains("duplicate primary key"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(StorageError::TypeError("bad".into()));
    }
}
