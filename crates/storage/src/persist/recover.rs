//! The durability engine: one directory holding a snapshot series and a
//! segmented WAL, with crash recovery stitching the two together.
//!
//! [`PersistEngine::open`] recovers in three steps:
//!
//! 1. [`super::wal::replay`] scans the log, truncating a torn tail /
//!    dropping everything after the first corrupt frame;
//! 2. [`super::snapshot::load_latest`] picks the newest valid snapshot
//!    (corrupt candidates are skipped);
//! 3. log records below the snapshot's high-water mark are discarded,
//!    the rest are returned as the **tail** for the caller to replay
//!    through its normal application code path.
//!
//! The engine itself never interprets payloads — `beliefdb-core` owns
//! the logical record and snapshot encodings.

use super::snapshot;
use super::wal::{self, Wal};
use crate::error::{Result, StorageError};
use std::path::{Path, PathBuf};

/// Tuning knobs for a durable directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistOptions {
    /// Rotate the active WAL segment when it exceeds this many bytes.
    pub segment_limit: u64,
    /// Auto-checkpoint (callers poll [`PersistEngine::needs_checkpoint`])
    /// once the live log exceeds this many bytes.
    pub checkpoint_threshold: u64,
    /// Group commit: fsync (`sync_data`) the active segment once per
    /// appended mutation batch, so an acknowledged mutation survives
    /// power loss — not just a process crash. Off by default: without
    /// it appends only flush to the OS page cache (checkpoint, segment
    /// rotation, and close still fsync), trading the last few records
    /// under power loss for append throughput.
    pub sync_on_commit: bool,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            segment_limit: 1 << 20,        // 1 MiB segments
            checkpoint_threshold: 4 << 20, // checkpoint after 4 MiB of log
            sync_on_commit: false,
        }
    }
}

/// Observable counters for the `\wal` shell command and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Live WAL segment files.
    pub segments: usize,
    /// Valid frames across the live segments.
    pub frames: u64,
    /// Bytes across the live segments (headers included).
    pub wal_bytes: u64,
    /// LSN the next append will receive.
    pub next_lsn: u64,
    /// High-water mark of the newest snapshot (records below it are
    /// covered by the snapshot and no longer needed from the log).
    pub snapshot_hwm: u64,
    /// Checkpoints taken since this engine was opened.
    pub checkpoints: u64,
    /// fsyncs issued since this engine was opened (group commits,
    /// checkpoints, segment rotations).
    pub syncs: u64,
    /// Whether recovery truncated a torn/corrupt log tail on open.
    pub truncated_on_open: bool,
}

/// An open durable directory: appendable WAL plus snapshot bookkeeping.
#[derive(Debug)]
pub struct PersistEngine {
    dir: PathBuf,
    wal: Wal,
    opts: PersistOptions,
    snapshot_hwm: u64,
    checkpoints: u64,
    truncated_on_open: bool,
}

/// What [`PersistEngine::open`] recovered.
#[derive(Debug)]
pub struct Recovered {
    pub engine: PersistEngine,
    /// Payload of the newest valid snapshot, if any was ever written.
    pub snapshot: Option<Vec<u8>>,
    /// Log record payloads to replay on top of the snapshot, in order.
    pub tail: Vec<Vec<u8>>,
}

impl PersistEngine {
    /// Initialize a fresh durable directory. The directory is created if
    /// missing and must not already contain belief-database state.
    pub fn create(dir: &Path, opts: PersistOptions) -> Result<PersistEngine> {
        std::fs::create_dir_all(dir)?;
        if !wal::list_segments(dir)?.is_empty() || !snapshot::list_snapshots(dir)?.is_empty() {
            return Err(StorageError::Io(format!(
                "{} already holds a belief database (use open)",
                dir.display()
            )));
        }
        Ok(PersistEngine {
            dir: dir.to_path_buf(),
            wal: Wal::create(dir, 0, opts.segment_limit)?,
            opts,
            snapshot_hwm: 0,
            checkpoints: 0,
            truncated_on_open: false,
        })
    }

    /// Recover an existing durable directory (see module docs).
    pub fn open(dir: &Path, opts: PersistOptions) -> Result<Recovered> {
        if !dir.is_dir() {
            return Err(StorageError::Io(format!(
                "{} is not a directory",
                dir.display()
            )));
        }
        // The snapshot is consulted *first*: its high-water mark tells
        // the log scan which segments are fully covered (and may be
        // dropped unscanned — corruption inside them must not cascade
        // into valid post-snapshot records), and a directory with
        // neither snapshot nor log is rejected before anything is
        // written into it.
        let loaded = snapshot::load_latest(dir)?;
        let (snapshot_hwm, snapshot) = match loaded {
            Some((hwm, payload)) => (hwm, Some(payload)),
            None => (0, None),
        };
        if snapshot.is_none() && wal::list_segments(dir)?.is_empty() {
            return Err(StorageError::Corrupt(format!(
                "{}: no snapshot and no WAL — not a belief database directory",
                dir.display()
            )));
        }
        let mut replay = wal::replay_covered(dir, snapshot_hwm)?;
        if snapshot.is_none() && replay.segments.is_empty() {
            // Every segment was corrupt and there is no snapshot to
            // fall back to: nothing recoverable remains.
            return Err(StorageError::Corrupt(format!(
                "{}: no valid snapshot and no valid WAL prefix — unrecoverable",
                dir.display()
            )));
        }

        // Keep only the contiguous run of records starting at the
        // high-water mark; anything below is covered by the snapshot,
        // anything after a gap is unreachable without the missing
        // records and must not be applied.
        let mut tail = Vec::new();
        let mut expect = snapshot_hwm;
        for (lsn, payload) in std::mem::take(&mut replay.records) {
            if lsn < expect {
                continue;
            }
            if lsn != expect {
                break;
            }
            tail.push(payload);
            expect += 1;
        }

        let next_lsn = expect.max(replay.next_lsn);
        let wal = if next_lsn > replay.next_lsn || replay.segments.is_empty() {
            // The snapshot outlives the log (its tail was lost, or the
            // directory never had segments): drop the stale segments
            // and restart the log at the high-water mark.
            for (_, path) in wal::list_segments(dir)? {
                std::fs::remove_file(&path)?;
            }
            Wal::create(dir, next_lsn, opts.segment_limit)?
        } else {
            Wal::open_from_replay(dir, &replay, opts.segment_limit)?
        };

        Ok(Recovered {
            engine: PersistEngine {
                dir: dir.to_path_buf(),
                wal,
                opts,
                snapshot_hwm,
                checkpoints: 0,
                truncated_on_open: replay.truncated,
            },
            snapshot,
            tail,
        })
    }

    /// True iff `dir` holds belief-database state (a snapshot or WAL).
    pub fn exists(dir: &Path) -> bool {
        dir.is_dir()
            && (wal::list_segments(dir)
                .map(|s| !s.is_empty())
                .unwrap_or(false)
                || snapshot::list_snapshots(dir)
                    .map(|s| !s.is_empty())
                    .unwrap_or(false))
    }

    /// Append one logical record; returns its LSN. The frame is flushed
    /// to the OS before this returns; with
    /// [`PersistOptions::sync_on_commit`] it is additionally fsynced
    /// (one `sync_data` per appended batch — group commit), making the
    /// record power-loss durable, not just crash durable.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let lsn = self.wal.append(payload)?;
        if self.opts.sync_on_commit {
            self.wal.sync()?;
        }
        Ok(lsn)
    }

    /// Has the live log grown past the auto-checkpoint threshold?
    pub fn needs_checkpoint(&self) -> bool {
        self.wal.bytes() > self.opts.checkpoint_threshold
    }

    /// Write a snapshot covering every record appended so far, then
    /// drop the log segments (and older snapshots) it makes redundant.
    /// Returns the snapshot's high-water mark.
    pub fn checkpoint(&mut self, payload: &[u8]) -> Result<u64> {
        let hwm = self.wal.next_lsn();
        // Everything the snapshot will claim to cover must actually be
        // on disk first (rotation then fsyncs the sealed segment as
        // well), so a post-checkpoint power cut cannot leave a snapshot
        // whose covered records were never durable.
        self.wal.sync()?;
        // Rotate so the active segment starts exactly at the
        // high-water mark; a crash before the snapshot lands leaves an
        // extra (valid, possibly empty) segment, nothing worse.
        self.wal.rotate()?;
        snapshot::write_snapshot(&self.dir, hwm, payload)?;
        // Only after the snapshot is durable do the old segments and
        // snapshots become garbage.
        self.wal.prune_sealed()?;
        snapshot::prune(&self.dir, hwm)?;
        self.snapshot_hwm = hwm;
        self.checkpoints += 1;
        crate::obs::metrics().incr(crate::obs::Metric::WalCheckpoints);
        Ok(hwm)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn options(&self) -> PersistOptions {
        self.opts
    }

    pub fn stats(&self) -> WalStats {
        WalStats {
            segments: self.wal.segments().len(),
            frames: self.wal.frames(),
            wal_bytes: self.wal.bytes(),
            next_lsn: self.wal.next_lsn(),
            snapshot_hwm: self.snapshot_hwm,
            checkpoints: self.checkpoints,
            syncs: self.wal.syncs(),
            truncated_on_open: self.truncated_on_open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "beliefdb-engine-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts() -> PersistOptions {
        PersistOptions {
            segment_limit: 256,
            checkpoint_threshold: 1024,
            sync_on_commit: false,
        }
    }

    #[test]
    fn create_then_open_replays_the_tail() {
        let dir = temp_dir("tail");
        let mut engine = PersistEngine::create(&dir, opts()).unwrap();
        for i in 0..5u8 {
            assert_eq!(engine.append(&[i; 4]).unwrap(), i as u64);
        }
        drop(engine);
        let rec = PersistEngine::open(&dir, opts()).unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.tail, (0..5u8).map(|i| vec![i; 4]).collect::<Vec<_>>());
        assert_eq!(rec.engine.stats().next_lsn, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_covers_prefix_and_prunes() {
        let dir = temp_dir("ckpt");
        let mut engine = PersistEngine::create(&dir, opts()).unwrap();
        for i in 0..4u8 {
            engine.append(&[i; 100]).unwrap();
        }
        assert!(engine.needs_checkpoint() || engine.stats().wal_bytes <= 1024);
        let hwm = engine.checkpoint(b"STATE@4").unwrap();
        assert_eq!(hwm, 4);
        engine.append(&[9; 4]).unwrap();
        engine.append(&[10; 4]).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.snapshot_hwm, 4);
        assert_eq!(stats.checkpoints, 1);
        drop(engine);
        let rec = PersistEngine::open(&dir, opts()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"STATE@4"[..]));
        assert_eq!(rec.tail, vec![vec![9u8; 4], vec![10u8; 4]]);
        assert_eq!(rec.engine.stats().next_lsn, 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_state_and_open_refuses_missing_dir() {
        let dir = temp_dir("guard");
        let _ = PersistEngine::create(&dir, opts()).unwrap();
        assert!(matches!(
            PersistEngine::create(&dir, opts()),
            Err(StorageError::Io(_))
        ));
        assert!(PersistEngine::exists(&dir));
        let missing = dir.join("nope");
        assert!(!PersistEngine::exists(&missing));
        assert!(matches!(
            PersistEngine::open(&missing, opts()),
            Err(StorageError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_survives_total_wal_loss() {
        let dir = temp_dir("walloss");
        let mut engine = PersistEngine::create(&dir, opts()).unwrap();
        for i in 0..3u8 {
            engine.append(&[i]).unwrap();
        }
        engine.checkpoint(b"SNAP").unwrap();
        engine.append(b"post").unwrap();
        drop(engine);
        // Lose every WAL segment.
        for (_, path) in wal::list_segments(&dir).unwrap() {
            std::fs::remove_file(path).unwrap();
        }
        let rec = PersistEngine::open(&dir, opts()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"SNAP"[..]));
        assert!(rec.tail.is_empty());
        // LSNs never run backwards: the fresh log starts at the HWM.
        assert_eq!(rec.engine.stats().next_lsn, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_on_empty_directory_errors_without_writing() {
        // An empty (or wrong) directory must be rejected cleanly; in
        // particular open must not leave a stray WAL segment behind
        // that would poison a later create().
        let dir = temp_dir("emptydir");
        assert!(matches!(
            PersistEngine::open(&dir, opts()),
            Err(StorageError::Corrupt(_))
        ));
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        // The directory is still usable by create().
        let mut engine = PersistEngine::create(&dir, opts()).unwrap();
        engine.append(b"first").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_a_snapshot_covered_segment_does_not_lose_the_tail() {
        // Crash window: checkpoint wrote the snapshot but died before
        // pruning the old segment. If that stale (fully covered)
        // segment later rots, recovery must still keep the valid
        // post-snapshot records instead of cascading the corruption.
        let dir = temp_dir("covered");
        let mut wal = super::super::wal::Wal::create(&dir, 0, 1 << 20).unwrap();
        for i in 0..5u8 {
            wal.append(&[i; 8]).unwrap();
        }
        wal.rotate().unwrap(); // live segment now starts at LSN 5
        for i in 5..8u8 {
            wal.append(&[i; 8]).unwrap();
        }
        drop(wal);
        super::super::snapshot::write_snapshot(&dir, 5, b"SNAP@5").unwrap();
        // Flip a byte inside the stale segment (covers LSNs 0..5).
        let stale = dir.join(super::super::wal::segment_file_name(0));
        let mut bytes = std::fs::read(&stale).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        std::fs::write(&stale, &bytes).unwrap();

        let rec = PersistEngine::open(&dir, opts()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"SNAP@5"[..]));
        assert_eq!(rec.tail, vec![vec![5u8; 8], vec![6u8; 8], vec![7u8; 8]]);
        assert_eq!(rec.engine.stats().next_lsn, 8);
        // The covered segment was dropped unscanned.
        assert!(!stale.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_on_commit_fsyncs_once_per_append() {
        let dir = temp_dir("synccommit");
        let mut engine = PersistEngine::create(
            &dir,
            PersistOptions {
                sync_on_commit: true,
                ..opts()
            },
        )
        .unwrap();
        let before = engine.stats().syncs;
        for i in 0..3u8 {
            engine.append(&[i; 4]).unwrap();
        }
        // One group-commit sync per mutation batch (rotation adds its
        // own when a segment seals).
        assert!(engine.stats().syncs >= before + 3, "{:?}", engine.stats());
        drop(engine);
        let rec = PersistEngine::open(&dir, opts()).unwrap();
        assert_eq!(rec.tail.len(), 3);
        // Default: appends do not fsync; checkpoint does.
        let dir2 = temp_dir("nosync");
        let mut engine = PersistEngine::create(&dir2, opts()).unwrap();
        engine.append(b"x").unwrap();
        assert_eq!(engine.stats().syncs, 0);
        engine.checkpoint(b"S").unwrap();
        assert!(engine.stats().syncs >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn auto_checkpoint_threshold_trips() {
        let dir = temp_dir("auto");
        let mut engine = PersistEngine::create(&dir, opts()).unwrap();
        assert!(!engine.needs_checkpoint());
        while !engine.needs_checkpoint() {
            engine.append(&[0; 64]).unwrap();
        }
        engine.checkpoint(b"auto").unwrap();
        assert!(!engine.needs_checkpoint());
        assert_eq!(wal::list_segments(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
