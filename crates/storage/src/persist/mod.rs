//! Durability: write-ahead logging, snapshots, and crash recovery.
//!
//! The paper's BDMS is a long-lived community database — annotations
//! accumulate over months — yet everything upstream of this module is
//! in-memory. `persist` supplies the missing layer as four pieces:
//!
//! | Module | Responsibility |
//! |---|---|
//! | [`format`] | CRC32 + little-endian codec primitives ([`Value`](crate::Value)/[`Row`](crate::Row) included) |
//! | [`wal`] | segmented, checksummed, length-prefixed log of opaque payloads |
//! | [`snapshot`] | atomically-written full-state images with a WAL high-water mark |
//! | [`recover`] | [`PersistEngine`]: open/create a directory, stitch snapshot + log tail |
//!
//! The engine deliberately treats payloads as opaque bytes: the
//! *logical* record encoding (belief-statement mutations) and the
//! snapshot layout live in `beliefdb-core::persist`, next to the types
//! they serialize. Replaying a logical log through the normal update
//! algorithms reproduces every derived structure (tids, world
//! directory, `V`-slices, optimizer versions) exactly, which is what
//! makes recovery simple enough to trust.
//!
//! See `docs/persistence.md` for the byte-level formats and the
//! recovery invariants, and `tests/persist_recovery.rs` for the
//! fault-injection matrix (torn tails, bit flips, checkpoint races).

pub mod format;
pub mod recover;
pub mod snapshot;
pub mod wal;

pub use format::{crc32, Dec, Enc};
pub use recover::{PersistEngine, PersistOptions, Recovered, WalStats};
pub use wal::{frame_spans, list_segments, segment_file_name, SegmentMeta, WalReplay};
