//! The write-ahead log: segmented, length-prefixed, CRC-checksummed
//! frames of opaque payloads.
//!
//! ## On-disk layout
//!
//! A log is a directory of segment files `wal-<first_lsn:016x>.log`.
//! Each segment starts with a 16-byte header (`b"BDBWAL01"` + the
//! segment's first LSN, little-endian) followed by frames:
//!
//! ```text
//! [payload_len: u32 LE][crc32: u32 LE][lsn: u64 LE][payload bytes]
//! ```
//!
//! The CRC covers the LSN and the payload, so a frame that was torn
//! mid-write (partial tail after a crash) or bit-flipped at rest never
//! decodes as valid. LSNs are assigned densely starting at the
//! segment's `first_lsn`; replay verifies the sequence, so a dropped or
//! duplicated frame is also detected.
//!
//! ## Recovery contract
//!
//! [`replay`] returns the longest valid prefix of the log. The first
//! invalid frame — torn tail or corrupt interior — ends the prefix: the
//! containing segment is truncated at the last valid frame boundary and
//! any later segments are deleted, so a subsequent append continues
//! from a consistent state and corruption is never propagated.
//!
//! ## Durability
//!
//! Appends flush to the OS on every frame (`BufWriter::flush`); real
//! power-loss durability additionally needs an fsync, which the log
//! issues at three points: [`Wal::sync`] (called by the engine after
//! every mutation batch when `sync_on_commit` is on — group commit, one
//! `sync_data` per batch, and at every checkpoint), on segment rotation
//! (the sealed file is `sync_all`ed before its successor opens), and on
//! close (best-effort in `Drop`). Without `sync_on_commit` a power cut
//! can lose frames still in the OS page cache — never tear the log —
//! so the default trades the last few records for append throughput.

use super::format::crc32;
use crate::error::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes starting every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"BDBWAL01";

/// Bytes before the first frame of a segment.
pub const SEGMENT_HEADER_LEN: u64 = 16;

/// Fixed bytes per frame in addition to the payload.
pub const FRAME_HEADER_LEN: u64 = 16;

/// Upper bound on a single frame payload; a corrupt length field must
/// not trigger a giant allocation.
const MAX_FRAME_PAYLOAD: u32 = 1 << 26;

/// File name of the segment whose first record is `first_lsn`.
pub fn segment_file_name(first_lsn: u64) -> String {
    format!("wal-{first_lsn:016x}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Size/location facts about one live segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    pub first_lsn: u64,
    pub frames: u64,
    pub bytes: u64,
}

/// Everything [`replay`] learned from a log directory.
#[derive(Debug)]
pub struct WalReplay {
    /// Valid records in LSN order: `(lsn, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Live segments in LSN order (the last one is the append target).
    pub segments: Vec<SegmentMeta>,
    /// The LSN the next append will receive.
    pub next_lsn: u64,
    /// Whether recovery truncated a torn tail or dropped corrupt frames.
    pub truncated: bool,
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    writer: BufWriter<File>,
    active: SegmentMeta,
    sealed: Vec<SegmentMeta>,
    next_lsn: u64,
    segment_limit: u64,
    /// fsyncs issued (group commits, checkpoints, rotations).
    syncs: u64,
}

impl Wal {
    /// Create a fresh log in `dir` whose first record will be
    /// `start_lsn`. Any existing segment files are left untouched —
    /// callers recover first.
    pub fn create(dir: &Path, start_lsn: u64, segment_limit: u64) -> Result<Wal> {
        let (writer, active) = new_segment(dir, start_lsn)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            writer,
            active,
            sealed: Vec::new(),
            next_lsn: start_lsn,
            segment_limit: segment_limit.max(SEGMENT_HEADER_LEN + FRAME_HEADER_LEN),
            syncs: 0,
        })
    }

    /// Reopen the log after [`replay`]: appends continue in the last
    /// live segment (or a fresh one when the directory has none).
    pub fn open_from_replay(dir: &Path, replay: &WalReplay, segment_limit: u64) -> Result<Wal> {
        let Some((last, sealed)) = replay.segments.split_last() else {
            return Wal::create(dir, replay.next_lsn, segment_limit);
        };
        let file = OpenOptions::new()
            .append(true)
            .open(dir.join(segment_file_name(last.first_lsn)))?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            writer: BufWriter::new(file),
            active: last.clone(),
            sealed: sealed.to_vec(),
            next_lsn: replay.next_lsn,
            segment_limit: segment_limit.max(SEGMENT_HEADER_LEN + FRAME_HEADER_LEN),
            syncs: 0,
        })
    }

    /// Append one payload; returns its LSN. The frame is flushed to the
    /// OS before returning. Rotates to a new segment when the active
    /// one exceeds the segment size limit.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() as u32 > MAX_FRAME_PAYLOAD {
            return Err(StorageError::Io(format!(
                "WAL payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame limit",
                payload.len()
            )));
        }
        if self.active.bytes >= self.segment_limit {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&lsn.to_le_bytes());
        crc_input.extend_from_slice(payload);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&crc_input).to_le_bytes())?;
        self.writer.write_all(&crc_input)?;
        self.writer.flush()?;
        self.next_lsn += 1;
        self.active.frames += 1;
        self.active.bytes += FRAME_HEADER_LEN + payload.len() as u64;
        crate::obs::metrics().incr(crate::obs::Metric::WalAppends);
        Ok(lsn)
    }

    /// Flush buffered frames and `sync_data` the active segment: after
    /// this returns, every appended frame survives power loss. The
    /// engine calls this once per mutation batch when `sync_on_commit`
    /// is on (group commit) and at every checkpoint.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.syncs += 1;
        crate::obs::metrics().incr(crate::obs::Metric::WalSyncs);
        Ok(())
    }

    /// fsyncs issued since this log was opened.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Seal the active segment and start a new one at the current LSN.
    /// The sealed file is fsynced (`sync_all`: its length matters for
    /// replay) before the successor opens, so rotation never leaves a
    /// full segment only in the page cache. A no-op when the active
    /// segment is empty (it already starts at the current LSN, and
    /// sealing it would collide with its successor's file name).
    pub fn rotate(&mut self) -> Result<()> {
        self.writer.flush()?;
        if self.active.frames == 0 {
            return Ok(());
        }
        self.writer.get_ref().sync_all()?;
        self.syncs += 1;
        crate::obs::metrics().incr(crate::obs::Metric::WalSyncs);
        let (writer, active) = new_segment(&self.dir, self.next_lsn)?;
        self.sealed
            .push(std::mem::replace(&mut self.active, active));
        self.writer = writer;
        Ok(())
    }

    /// Delete every sealed segment file (all of whose records are below
    /// the current segment's first LSN). Called after a successful
    /// snapshot has made them redundant.
    pub fn prune_sealed(&mut self) -> Result<usize> {
        let n = self.sealed.len();
        for seg in self.sealed.drain(..) {
            let path = self.dir.join(segment_file_name(seg.first_lsn));
            std::fs::remove_file(&path)?;
        }
        Ok(n)
    }

    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Live segments, oldest first (sealed + active).
    pub fn segments(&self) -> Vec<SegmentMeta> {
        let mut out = self.sealed.clone();
        out.push(self.active.clone());
        out
    }

    /// Total frames across live segments.
    pub fn frames(&self) -> u64 {
        self.sealed.iter().map(|s| s.frames).sum::<u64>() + self.active.frames
    }

    /// Total bytes across live segments (headers included).
    pub fn bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.active.bytes
    }
}

impl Drop for Wal {
    /// Best-effort close-time durability: flush and fsync the active
    /// segment. Errors are ignored (there is no way to report them from
    /// drop); callers needing a guaranteed sync call [`Wal::sync`].
    fn drop(&mut self) {
        let _ = self.writer.flush();
        let _ = self.writer.get_ref().sync_data();
    }
}

fn new_segment(dir: &Path, first_lsn: u64) -> Result<(BufWriter<File>, SegmentMeta)> {
    let path = dir.join(segment_file_name(first_lsn));
    let file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(|e| StorageError::Io(format!("create {}: {e}", path.display())))?;
    let mut writer = BufWriter::new(file);
    writer.write_all(SEGMENT_MAGIC)?;
    writer.write_all(&first_lsn.to_le_bytes())?;
    writer.flush()?;
    // fsync the *directory* so the new segment's entry itself survives
    // power loss — syncing file contents alone does not persist the
    // file's existence on all filesystems.
    File::open(dir)?.sync_all()?;
    Ok((
        writer,
        SegmentMeta {
            first_lsn,
            frames: 0,
            bytes: SEGMENT_HEADER_LEN,
        },
    ))
}

/// List the segment files of `dir` in LSN order.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(lsn) = name.to_str().and_then(parse_segment_name) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Scan the log directory, returning the longest valid record prefix.
/// The segment containing the first invalid frame is truncated at the
/// last valid boundary and all later segments are deleted (see module
/// docs), so the directory is consistent when this returns.
pub fn replay(dir: &Path) -> Result<WalReplay> {
    replay_covered(dir, 0)
}

/// [`replay`], but segments **fully covered** by a snapshot high-water
/// mark (every record below `hwm`) are deleted without being scanned.
/// A stale pre-checkpoint segment — left behind when a crash lands
/// between snapshot write and segment pruning — is redundant by
/// construction, so corruption inside it must not cascade into the
/// valid post-snapshot tail the way an uncovered corrupt frame does.
pub fn replay_covered(dir: &Path, hwm: u64) -> Result<WalReplay> {
    let mut records = Vec::new();
    let mut segments = Vec::new();
    let mut truncated = false;
    let mut expected_lsn: Option<u64> = None;

    let mut listed = list_segments(dir)?;
    // A segment is fully covered when its successor starts at or below
    // the high-water mark (checkpoints rotate first, so the live
    // segment always starts exactly at its snapshot's hwm).
    while listed.len() >= 2 && listed[1].0 <= hwm {
        let (_, path) = listed.remove(0);
        std::fs::remove_file(&path)?;
    }
    let mut stop_at: Option<usize> = None;
    for (i, (first_lsn, path)) in listed.iter().enumerate() {
        // A gap between segments (or a bad header) invalidates this
        // segment and everything after it.
        let contiguous = expected_lsn.is_none_or(|e| e == *first_lsn);
        let scan = if contiguous {
            scan_segment(path, *first_lsn)?
        } else {
            SegmentScan {
                records: Vec::new(),
                valid_bytes: None,
                clean: false,
            }
        };
        match scan.valid_bytes {
            None => {
                // Header invalid: remove the file entirely.
                std::fs::remove_file(path)?;
                truncated = true;
                stop_at = Some(i);
                break;
            }
            Some(valid_bytes) => {
                let frames = scan.records.len() as u64;
                expected_lsn = Some(first_lsn + frames);
                records.extend(scan.records);
                segments.push(SegmentMeta {
                    first_lsn: *first_lsn,
                    frames,
                    bytes: valid_bytes,
                });
                if !scan.clean {
                    // Torn or corrupt tail: cut it off and stop here.
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(valid_bytes)?;
                    file.sync_all()?;
                    truncated = true;
                    stop_at = Some(i);
                    break;
                }
            }
        }
    }
    if let Some(stop) = stop_at {
        for (_, path) in &listed[stop + 1..] {
            std::fs::remove_file(path)?;
            truncated = true;
        }
    }
    let next_lsn = expected_lsn.unwrap_or(0);
    Ok(WalReplay {
        records,
        segments,
        next_lsn,
        truncated,
    })
}

struct SegmentScan {
    records: Vec<(u64, Vec<u8>)>,
    /// Byte length of the valid prefix, or `None` when even the header
    /// is unusable.
    valid_bytes: Option<u64>,
    /// True iff the whole file was valid.
    clean: bool,
}

fn scan_segment(path: &Path, first_lsn: u64) -> Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SEGMENT_HEADER_LEN as usize
        || &bytes[..8] != SEGMENT_MAGIC
        || u64::from_le_bytes(bytes[8..16].try_into().expect("8")) != first_lsn
    {
        return Ok(SegmentScan {
            records: Vec::new(),
            valid_bytes: None,
            clean: false,
        });
    }
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN as usize;
    let mut lsn = first_lsn;
    let mut clean = true;
    while pos < bytes.len() {
        let Some(frame) = decode_frame(&bytes[pos..], lsn) else {
            clean = false;
            break;
        };
        let (payload, frame_len) = frame;
        records.push((lsn, payload));
        lsn += 1;
        pos += frame_len;
    }
    Ok(SegmentScan {
        records,
        valid_bytes: Some(pos as u64),
        clean,
    })
}

/// Decode one frame at the start of `buf`, verifying length, CRC, and
/// the expected LSN. Returns `(payload, frame length)` or `None` when
/// the frame is torn or corrupt.
fn decode_frame(buf: &[u8], expected_lsn: u64) -> Option<(Vec<u8>, usize)> {
    if buf.len() < FRAME_HEADER_LEN as usize {
        return None;
    }
    let payload_len = u32::from_le_bytes(buf[0..4].try_into().expect("4"));
    if payload_len > MAX_FRAME_PAYLOAD {
        return None;
    }
    let total = FRAME_HEADER_LEN as usize + payload_len as usize;
    if buf.len() < total {
        return None;
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4"));
    let body = &buf[8..total];
    if crc32(body) != crc {
        return None;
    }
    let lsn = u64::from_le_bytes(body[..8].try_into().expect("8"));
    if lsn != expected_lsn {
        return None;
    }
    Some((body[8..].to_vec(), total))
}

/// Byte spans `(offset, length)` of the valid frames in a segment file
/// — exposed for fault-injection tests and offline inspection tools.
pub fn frame_spans(path: &Path) -> Result<Vec<(u64, u64)>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SEGMENT_HEADER_LEN as usize || &bytes[..8] != SEGMENT_MAGIC {
        return Err(StorageError::Corrupt(format!(
            "{} is not a WAL segment",
            path.display()
        )));
    }
    let mut lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
    let mut pos = SEGMENT_HEADER_LEN as usize;
    let mut spans = Vec::new();
    while pos < bytes.len() {
        let Some((_, frame_len)) = decode_frame(&bytes[pos..], lsn) else {
            break;
        };
        spans.push((pos as u64, frame_len as u64));
        pos += frame_len;
        lsn += 1;
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "beliefdb-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payloads(replay: &WalReplay) -> Vec<Vec<u8>> {
        replay.records.iter().map(|(_, p)| p.clone()).collect()
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut wal = Wal::create(&dir, 0, 1 << 20).unwrap();
        for i in 0..10u8 {
            let lsn = wal.append(&[i; 5]).unwrap();
            assert_eq!(lsn, i as u64);
        }
        assert_eq!(wal.frames(), 10);
        drop(wal);
        let replay = replay(&dir).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.next_lsn, 10);
        assert_eq!(
            payloads(&replay),
            (0..10u8).map(|i| vec![i; 5]).collect::<Vec<_>>()
        );
        // Reopen and continue.
        let mut wal = Wal::open_from_replay(&dir, &replay, 1 << 20).unwrap();
        assert_eq!(wal.append(b"more").unwrap(), 10);
        let replay = super::replay(&dir).unwrap();
        assert_eq!(replay.records.len(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut() {
        // A log of 3 frames truncated at every byte offset inside the
        // final frame must recover exactly the first two records.
        let dir = temp_dir("torn");
        let mut wal = Wal::create(&dir, 0, 1 << 20).unwrap();
        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
        wal.append(b"gamma").unwrap();
        drop(wal);
        let seg = dir.join(segment_file_name(0));
        let spans = frame_spans(&seg).unwrap();
        assert_eq!(spans.len(), 3);
        let full = std::fs::read(&seg).unwrap();
        let (last_off, last_len) = spans[2];
        for cut in last_off..last_off + last_len {
            std::fs::write(&seg, &full[..cut as usize]).unwrap();
            let replay = replay(&dir).unwrap();
            assert_eq!(
                payloads(&replay),
                vec![b"alpha".to_vec(), b"beta".to_vec()],
                "cut at {cut}"
            );
            assert_eq!(replay.next_lsn, 2);
            if cut > last_off {
                assert!(replay.truncated, "cut at {cut}");
            }
            // Replay repaired the file: a second replay is clean.
            let again = replay_file_len(&seg);
            assert_eq!(again, last_off, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn replay_file_len(path: &Path) -> u64 {
        std::fs::metadata(path).unwrap().len()
    }

    #[test]
    fn corrupt_interior_frame_ends_the_prefix() {
        let dir = temp_dir("flip");
        let mut wal = Wal::create(&dir, 0, 1 << 20).unwrap();
        for i in 0..5u8 {
            wal.append(&[i; 8]).unwrap();
        }
        drop(wal);
        let seg = dir.join(segment_file_name(0));
        let spans = frame_spans(&seg).unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip one payload byte of frame 2.
        let (off, _) = spans[2];
        bytes[(off + FRAME_HEADER_LEN) as usize] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        let replay = replay(&dir).unwrap();
        assert!(replay.truncated);
        assert_eq!(payloads(&replay), vec![vec![0u8; 8], vec![1u8; 8]]);
        assert_eq!(replay.next_lsn, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_later_corruption_drops_them() {
        let dir = temp_dir("rotate");
        // Tiny limit: every append rotates after the first.
        let mut wal = Wal::create(&dir, 0, 48).unwrap();
        for i in 0..6u8 {
            wal.append(&[i; 16]).unwrap();
        }
        assert!(wal.segments().len() >= 3, "{:?}", wal.segments());
        drop(wal);
        let replay1 = replay(&dir).unwrap();
        assert_eq!(replay1.records.len(), 6);
        assert_eq!(replay1.segments.len(), list_segments(&dir).unwrap().len());
        // Corrupt the second segment's first frame: later segments die.
        let (second_lsn, second_path) = list_segments(&dir).unwrap()[1].clone();
        let mut bytes = std::fs::read(&second_path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&second_path, &bytes).unwrap();
        let replay2 = replay(&dir).unwrap();
        assert!(replay2.truncated);
        assert!(replay2.next_lsn < 6);
        assert!(replay2.records.iter().all(|(lsn, _)| *lsn < 6));
        // Only segments up to the corruption survive on disk.
        let live = list_segments(&dir).unwrap();
        assert!(live.iter().all(|(lsn, _)| *lsn <= second_lsn));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_counts_and_keeps_the_log_replayable() {
        let dir = temp_dir("sync");
        let mut wal = Wal::create(&dir, 0, 1 << 20).unwrap();
        assert_eq!(wal.syncs(), 0);
        wal.append(b"one").unwrap();
        wal.sync().unwrap();
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.syncs(), 2);
        // Rotation fsyncs the sealed segment too.
        wal.rotate().unwrap();
        assert_eq!(wal.syncs(), 3);
        drop(wal);
        let replay = replay(&dir).unwrap();
        assert!(!replay.truncated);
        assert_eq!(payloads(&replay), vec![b"one".to_vec(), b"two".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_sealed_removes_old_segments() {
        let dir = temp_dir("prune");
        let mut wal = Wal::create(&dir, 0, 48).unwrap();
        for i in 0..5u8 {
            wal.append(&[i; 16]).unwrap();
        }
        let before = list_segments(&dir).unwrap().len();
        assert!(before > 1);
        let pruned = wal.prune_sealed().unwrap();
        assert_eq!(pruned, before - 1);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        // The survivor still replays.
        drop(wal);
        let replay = replay(&dir).unwrap();
        assert!(!replay.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_kills_the_segment() {
        let dir = temp_dir("header");
        let mut wal = Wal::create(&dir, 0, 1 << 20).unwrap();
        wal.append(b"x").unwrap();
        drop(wal);
        let seg = dir.join(segment_file_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[0] = b'X';
        std::fs::write(&seg, &bytes).unwrap();
        let replay = replay(&dir).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.truncated);
        assert!(list_segments(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
