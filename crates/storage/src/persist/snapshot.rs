//! Snapshots: atomically-written, checksummed full-state images.
//!
//! A snapshot file `snapshot-<lsn:016x>.snap` holds an opaque payload
//! (the serialized store, produced by the layer above) plus the WAL
//! high-water mark: every log record with `lsn < hwm` is covered by the
//! snapshot, recovery replays only records at or above it.
//!
//! ```text
//! [b"BDBSNAP1"][hwm: u64 LE][payload_len: u64 LE][crc32: u32 LE][payload]
//! ```
//!
//! Writes go to a `.tmp` file, are fsynced, and renamed into place, so
//! a crash mid-snapshot leaves the previous snapshot untouched and at
//! most a stray temp file (ignored and cleaned on the next write).
//! Readers walk candidates from the highest LSN down and skip invalid
//! files, so a corrupt latest snapshot falls back to the previous one.

use super::format::crc32;
use crate::error::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const SNAPSHOT_MAGIC: &[u8; 8] = b"BDBSNAP1";
const SNAPSHOT_HEADER_LEN: usize = 28;

/// File name of the snapshot with high-water mark `hwm`.
pub fn snapshot_file_name(hwm: u64) -> String {
    format!("snapshot-{hwm:016x}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snapshot-")?.strip_suffix(".snap")?;
    u64::from_str_radix(hex, 16).ok()
}

/// List snapshot files in `dir`, highest LSN first.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
    Ok(out)
}

/// Atomically write a snapshot with high-water mark `hwm`.
pub fn write_snapshot(dir: &Path, hwm: u64, payload: &[u8]) -> Result<PathBuf> {
    let final_path = dir.join(snapshot_file_name(hwm));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(hwm)));
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)?;
        file.write_all(SNAPSHOT_MAGIC)?;
        file.write_all(&hwm.to_le_bytes())?;
        file.write_all(&(payload.len() as u64).to_le_bytes())?;
        file.write_all(&crc32(payload).to_le_bytes())?;
        file.write_all(payload)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    // fsync the directory so the rename itself is durable.
    File::open(dir)?.sync_all()?;
    Ok(final_path)
}

/// Read and validate one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<(u64, Vec<u8>)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SNAPSHOT_HEADER_LEN || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StorageError::Corrupt(format!(
            "{}: bad snapshot header",
            path.display()
        )));
    }
    let hwm = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
    let len = u64::from_le_bytes(bytes[16..24].try_into().expect("8")) as usize;
    let crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4"));
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    if payload.len() != len {
        return Err(StorageError::Corrupt(format!(
            "{}: payload is {} bytes, header says {len}",
            path.display(),
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(StorageError::Corrupt(format!(
            "{}: snapshot checksum mismatch",
            path.display()
        )));
    }
    Ok((hwm, payload.to_vec()))
}

/// Load the newest valid snapshot, skipping corrupt candidates.
pub fn load_latest(dir: &Path) -> Result<Option<(u64, Vec<u8>)>> {
    for (_, path) in list_snapshots(dir)? {
        if let Ok(loaded) = read_snapshot(&path) {
            return Ok(Some(loaded));
        }
    }
    Ok(None)
}

/// Delete every snapshot older than `keep_hwm`, and any stray `.tmp`
/// files from interrupted writes. Returns the number of files removed.
pub fn prune(dir: &Path, keep_hwm: u64) -> Result<usize> {
    let mut removed = 0;
    for (lsn, path) in list_snapshots(dir)? {
        if lsn < keep_hwm {
            std::fs::remove_file(&path)?;
            removed += 1;
        }
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let is_tmp = name
            .to_str()
            .is_some_and(|n| n.starts_with("snapshot-") && n.ends_with(".tmp"));
        if is_tmp {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "beliefdb-snap-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_round_trip_and_latest_wins() {
        let dir = temp_dir("rt");
        write_snapshot(&dir, 3, b"old state").unwrap();
        write_snapshot(&dir, 9, b"new state").unwrap();
        let (hwm, payload) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(hwm, 9);
        assert_eq!(payload, b"new state");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        write_snapshot(&dir, 3, b"good").unwrap();
        let newest = write_snapshot(&dir, 9, b"going bad").unwrap();
        // Flip a payload byte: CRC mismatch.
        let mut bytes = std::fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 1;
        std::fs::write(&newest, &bytes).unwrap();
        let (hwm, payload) = load_latest(&dir).unwrap().unwrap();
        assert_eq!((hwm, payload.as_slice()), (3, &b"good"[..]));
        // Truncated file is also skipped.
        std::fs::write(&newest, &bytes[..10]).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap().0, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = temp_dir("empty");
        assert!(load_latest(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_removes_old_and_tmp() {
        let dir = temp_dir("prune");
        write_snapshot(&dir, 1, b"a").unwrap();
        write_snapshot(&dir, 5, b"b").unwrap();
        write_snapshot(&dir, 9, b"c").unwrap();
        std::fs::write(dir.join("snapshot-ffff.snap.tmp"), b"stray").unwrap();
        let removed = prune(&dir, 9).unwrap();
        assert_eq!(removed, 3);
        let left = list_snapshots(&dir).unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
