//! Binary encoding primitives for the durability layer: CRC32, a
//! little-endian writer/reader pair, and [`Value`]/[`Row`] codecs.
//!
//! Everything on disk is built from these: WAL frames length-prefix and
//! checksum their payload (see [`super::wal`]), snapshots checksum the
//! serialized store (see [`super::snapshot`]), and `beliefdb-core`
//! encodes its logical log records with the same primitives so the
//! format is defined in exactly one place.

use crate::error::{Result, StorageError};
use crate::row::Row;
use crate::value::Value;

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum zlib/ethernet use. Implemented in-tree because the build
/// environment has no network access for a crc crate.
///
/// Uses the slicing-by-8 technique: eight derived lookup tables let the
/// hot loop consume 8 bytes per iteration instead of 1 — the WAL and
/// the executor's spill files checksum every frame, so this is on the
/// per-row write path.
pub fn crc32(data: &[u8]) -> u32 {
    const fn tables() -> [[u32; 256]; 8] {
        let mut t = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[0][i] = c;
            i += 1;
        }
        let mut j = 1;
        while j < 8 {
            let mut i = 0;
            while i < 256 {
                t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
                i += 1;
            }
            j += 1;
        }
        t
    }
    static T: [[u32; 256]; 8] = tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().expect("4")) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().expect("4"));
        crc = T[7][(lo & 0xFF) as usize]
            ^ T[6][((lo >> 8) & 0xFF) as usize]
            ^ T[5][((lo >> 16) & 0xFF) as usize]
            ^ T[4][((lo >> 24) & 0xFF) as usize]
            ^ T[3][(hi & 0xFF) as usize]
            ^ T[2][((hi >> 8) & 0xFF) as usize]
            ^ T[1][((hi >> 16) & 0xFF) as usize]
            ^ T[0][((hi >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = T[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

/// Little-endian append-only byte writer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Clear the buffer for reuse (hot encoders — e.g. spill-file
    /// writers — keep one `Enc` instead of allocating per record).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Overwrite a previously written `u32` at byte offset `pos`
    /// (length/count fields that are only known after the payload is
    /// encoded — e.g. the row count of a streaming spill block).
    ///
    /// # Panics
    /// Panics if `pos + 4` exceeds the encoded length.
    pub fn patch_u32(&mut self, pos: usize, v: u32) {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_le_bytes());
    }

    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed (u32) byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_u8(*b as u8);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
        }
    }

    pub fn put_row(&mut self, row: &Row) {
        self.put_u32(row.arity() as u32);
        for v in row.values() {
            self.put_value(v);
        }
    }
}

/// Little-endian cursor over an encoded byte slice. Every read is
/// bounds-checked and surfaces [`StorageError::Corrupt`] on truncation,
/// so a decoder never panics on hostile input.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn need(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(StorageError::Corrupt(format!(
                "truncated record: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.need(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.need(4)?.try_into().expect("4")))
    }

    pub fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.need(8)?.try_into().expect("8")))
    }

    pub fn take_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.need(8)?.try_into().expect("8")))
    }

    pub fn take_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.take_u32()? as usize;
        self.need(n)
    }

    pub fn take_str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.take_bytes()?)
            .map_err(|_| StorageError::Corrupt("invalid UTF-8 in string field".into()))
    }

    pub fn take_value(&mut self) -> Result<Value> {
        Ok(match self.take_u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.take_u8()? != 0),
            2 => Value::Int(self.take_i64()?),
            3 => Value::str(self.take_str()?),
            t => {
                return Err(StorageError::Corrupt(format!(
                    "unknown value tag {t} at offset {}",
                    self.pos - 1
                )))
            }
        })
    }

    pub fn take_row(&mut self) -> Result<Row> {
        let n = self.take_u32()? as usize;
        if n > self.remaining() {
            // Each value costs at least one byte; reject absurd arities
            // before allocating.
            return Err(StorageError::Corrupt(format!(
                "row arity {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.take_value()?);
        }
        Ok(Row::new(vals))
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the record was fully consumed (decoders call this last, so
    /// trailing garbage is detected instead of silently ignored).
    pub fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StorageError::Corrupt(format!(
                "{} trailing bytes after record",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn scalar_round_trips() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 1);
        e.put_i64(-42);
        e.put_str("crow");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.take_i64().unwrap(), -42);
        assert_eq!(d.take_str().unwrap(), "crow");
        assert_eq!(d.take_bytes().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn value_and_row_round_trip() {
        let r = row![Value::Null, true, -7, "bald eagle"];
        let mut e = Enc::new();
        e.put_row(&r);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.take_row().unwrap(), r);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_corrupt_not_panics() {
        let mut e = Enc::new();
        e.put_row(&row![1, "x"]);
        let bytes = e.into_bytes();
        // Every strict prefix fails with Corrupt.
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(
                matches!(d.take_row(), Err(StorageError::Corrupt(_))),
                "prefix of {cut} bytes must be corrupt"
            );
        }
        // Trailing garbage is caught by finish().
        let mut with_garbage = bytes.clone();
        with_garbage.push(0xFF);
        let mut d = Dec::new(&with_garbage);
        d.take_row().unwrap();
        assert!(matches!(d.finish(), Err(StorageError::Corrupt(_))));
        // Unknown value tag.
        let mut d = Dec::new(&[9]);
        assert!(matches!(d.take_value(), Err(StorageError::Corrupt(_))));
        // Absurd arity rejected before allocation.
        let mut e = Enc::new();
        e.put_u32(u32::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.take_row(), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut e = Enc::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.take_str(), Err(StorageError::Corrupt(_))));
    }
}
