//! Rows (tuples) of values.

use crate::error::{Result, StorageError};
use crate::value::Value;
use std::fmt;

/// An immutable tuple of [`Value`]s.
///
/// Rows are the unit of storage and of query results. They are stored as a
/// boxed slice to keep the in-memory footprint at two words plus payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row(Box<[Value]>);

impl Row {
    /// Build a row from any iterable of values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Row(values.into_iter().collect())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Borrow the value at `idx`, or an error if out of range.
    pub fn get(&self, idx: usize) -> Result<&Value> {
        self.0.get(idx).ok_or(StorageError::ColumnOutOfRange {
            index: idx,
            arity: self.0.len(),
        })
    }

    /// Borrow all values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Build a new row keeping only the columns at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Result<Row> {
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            out.push(self.get(i)?.clone());
        }
        Ok(Row::new(out))
    }

    /// [`Row::project`] without the per-column range check. Callers must
    /// have validated `indices` against this row's arity up front (plan
    /// arity validation does exactly that); prefer [`Projector`] for
    /// repeated projections on a hot path.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn project_unchecked(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate two rows (used by join operators).
    pub fn concat(&self, other: &Row) -> Row {
        let mut out = Vec::with_capacity(self.arity() + other.arity());
        out.extend_from_slice(&self.0);
        out.extend_from_slice(&other.0);
        Row::new(out)
    }

    /// Extract the sub-row `[at..]` — the complement of a prefix.
    pub fn suffix(&self, at: usize) -> Row {
        Row::new(self.0[at..].iter().cloned())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v.into_boxed_slice())
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

/// A column projection validated once against an input arity, then applied
/// infallibly per row.
///
/// `Row::project` re-checks bounds and threads a `Result` through every
/// inner-loop call; a `Projector` front-loads that validation so the
/// executor's per-row (or per-chunk) work is a plain clone loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projector {
    indices: Vec<usize>,
}

impl Projector {
    /// Validate `indices` against `input_arity` once. Errors on the first
    /// out-of-range column, exactly like `Row::project` would per row.
    pub fn new(indices: impl Into<Vec<usize>>, input_arity: usize) -> Result<Projector> {
        let indices = indices.into();
        for &i in &indices {
            if i >= input_arity {
                return Err(StorageError::ColumnOutOfRange {
                    index: i,
                    arity: input_arity,
                });
            }
        }
        Ok(Projector { indices })
    }

    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.indices.len()
    }

    /// The validated column indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Project a row. Infallible: bounds were checked at construction
    /// (rows narrower than the validated arity would still panic, as
    /// [`Row::project_unchecked`] does).
    pub fn apply(&self, row: &Row) -> Row {
        row.project_unchecked(&self.indices)
    }
}

/// Build a [`Row`] from a heterogeneous list of literals.
///
/// ```
/// use beliefdb_storage::{row, Value};
/// let r = row!["s1", "Carol", "bald eagle", 614, true];
/// assert_eq!(r.arity(), 5);
/// assert_eq!(r[0], Value::str("s1"));
/// assert_eq!(r[3], Value::int(614));
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Row {
        Row::new(vec![
            Value::str("s1"),
            Value::str("Carol"),
            Value::int(2008),
        ])
    }

    #[test]
    fn arity_and_get() {
        let r = sample();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(0).unwrap(), &Value::str("s1"));
        assert_eq!(r.get(2).unwrap(), &Value::int(2008));
        assert!(matches!(
            r.get(3),
            Err(StorageError::ColumnOutOfRange { index: 3, arity: 3 })
        ));
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let r = sample();
        let p = r.project(&[2, 0, 0]).unwrap();
        assert_eq!(
            p,
            Row::new(vec![Value::int(2008), Value::str("s1"), Value::str("s1")])
        );
        assert!(r.project(&[5]).is_err());
    }

    #[test]
    fn project_unchecked_matches_checked() {
        let r = sample();
        assert_eq!(
            r.project_unchecked(&[2, 0, 0]),
            r.project(&[2, 0, 0]).unwrap()
        );
        assert_eq!(r.project_unchecked(&[]), Row::new(vec![]));
    }

    #[test]
    fn projector_validates_once_then_applies_infallibly() {
        let p = Projector::new(vec![2, 0], 3).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.indices(), &[2, 0]);
        let r = sample();
        assert_eq!(p.apply(&r), r.project(&[2, 0]).unwrap());
        assert!(matches!(
            Projector::new(vec![0, 3], 3),
            Err(StorageError::ColumnOutOfRange { index: 3, arity: 3 })
        ));
    }

    #[test]
    fn concat_joins_rows() {
        let a = Row::new(vec![Value::int(1)]);
        let b = Row::new(vec![Value::int(2), Value::int(3)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c[0], Value::int(1));
        assert_eq!(c[2], Value::int(3));
    }

    #[test]
    fn suffix_slices() {
        let r = sample();
        assert_eq!(r.suffix(1).arity(), 2);
        assert_eq!(r.suffix(1)[0], Value::str("Carol"));
        assert_eq!(r.suffix(3).arity(), 0);
    }

    #[test]
    fn display_and_macro() {
        let r = row!["a", 1];
        assert_eq!(r.to_string(), "(a, 1)");
        let empty = Row::new(vec![]);
        assert_eq!(empty.to_string(), "()");
    }

    #[test]
    fn rows_hash_and_compare() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(sample());
        set.insert(sample());
        assert_eq!(set.len(), 1);
        assert!(row![1] < row![2]);
        assert!(row![1] < row![1, 0]);
    }
}
