//! Greedy cardinality-ordered join reordering.
//!
//! A maximal tree of [`Plan::Join`] nodes is flattened into its leaf
//! relations, equality edges (the `on` pairs), and residual predicates,
//! all expressed over *global* column positions (the columns of the
//! original join output, left to right). The chain is then rebuilt
//! left-deep: start from the leaf with the smallest estimated
//! cardinality, and repeatedly join the connected leaf whose addition has
//! the smallest estimated result — preferring leaves the executor can
//! probe through an index (a scan, or a selection over a scan, whose join
//! columns are covered by the primary key or a secondary hash index). A
//! final projection restores the original column order, so the rewrite is
//! bag-equivalent to the input plan.

use super::rules::{cols_of, join_and, split_and};
use super::stats::{estimate, RelEstimate, StatsCatalog};
use crate::catalog::Database;
use crate::error::Result;
use crate::expr::Expr;
use crate::plan::Plan;

/// A flattened join chain over global column positions.
struct Chain {
    /// Leaf plans in original order.
    leaves: Vec<Plan>,
    /// Global column offset of each leaf.
    offsets: Vec<usize>,
    /// Arity of each leaf.
    arities: Vec<usize>,
    /// Equality edges `(global_col, global_col)` from `on` lists.
    eqs: Vec<(usize, usize)>,
    /// Residual conjuncts over global columns.
    preds: Vec<Expr>,
    /// Total output arity.
    total: usize,
}

fn flatten(db: &Database, plan: Plan, start: usize, chain: &mut Chain) -> Result<usize> {
    match plan {
        // A residual that is not boolean-shaped could raise a TypeError if
        // re-evaluated at a different point in the chain; keep such joins
        // intact as leaves.
        Plan::Join {
            left,
            right,
            on,
            residual,
        } if residual
            .as_ref()
            .is_none_or(super::rules::is_boolean_shaped) =>
        {
            let la = flatten(db, *left, start, chain)?;
            let ra = flatten(db, *right, start + la, chain)?;
            for &(lc, rc) in &on {
                chain.eqs.push((start + lc, start + la + rc));
            }
            if let Some(r) = residual {
                for c in split_and(&r.remap_cols(&|i| i + start)) {
                    chain.preds.push(c);
                }
            }
            Ok(la + ra)
        }
        leaf => {
            let arity = leaf.arity(db)?;
            chain.leaves.push(leaf);
            chain.offsets.push(start);
            chain.arities.push(arity);
            Ok(arity)
        }
    }
}

/// Rows held inline in `Values` leaves anywhere under `plan` — the rows
/// a restoring projection would force column pruning to re-materialize.
fn values_rows(plan: &Plan) -> usize {
    let own = match plan {
        Plan::Values { rows, .. } => rows.len(),
        _ => 0,
    };
    own + plan.children().into_iter().map(values_rows).sum::<usize>()
}

/// True iff the executor's index-nested-loop join could probe this plan:
/// a base-table access whose given columns are covered by the primary key
/// or a secondary index.
fn index_probeable(db: &Database, plan: &Plan, cols: &[usize]) -> bool {
    let table = match plan {
        Plan::Scan { table } => table,
        Plan::Selection { input, .. } => match input.as_ref() {
            Plan::Scan { table } => table,
            _ => return false,
        },
        _ => return false,
    };
    if cols.is_empty() {
        return false;
    }
    let Ok(t) = db.table(table) else { return false };
    (t.schema().key_column() == Some(0) && cols == [0]) || t.find_index_for(cols).is_some()
}

/// Reorder every maximal join chain in the plan. Recurses into non-join
/// operators and into the join leaves themselves.
pub fn reorder_joins(db: &Database, catalog: &StatsCatalog, plan: Plan) -> Result<Plan> {
    match plan {
        Plan::Join { .. } => reorder_chain(db, catalog, plan),
        Plan::Scan { .. } | Plan::Values { .. } => Ok(plan),
        Plan::Selection { input, predicate } => Ok(Plan::Selection {
            input: Box::new(reorder_joins(db, catalog, *input)?),
            predicate,
        }),
        Plan::Projection { input, exprs } => Ok(Plan::Projection {
            input: Box::new(reorder_joins(db, catalog, *input)?),
            exprs,
        }),
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => Ok(Plan::AntiJoin {
            left: Box::new(reorder_joins(db, catalog, *left)?),
            right: Box::new(reorder_joins(db, catalog, *right)?),
            on,
            residual,
        }),
        Plan::Distinct { input } => Ok(Plan::Distinct {
            input: Box::new(reorder_joins(db, catalog, *input)?),
        }),
        Plan::Union { inputs } => Ok(Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| reorder_joins(db, catalog, p))
                .collect::<Result<_>>()?,
        }),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Ok(Plan::Aggregate {
            input: Box::new(reorder_joins(db, catalog, *input)?),
            group_by,
            aggs,
        }),
        Plan::Sort { input, by } => Ok(Plan::Sort {
            input: Box::new(reorder_joins(db, catalog, *input)?),
            by,
        }),
        Plan::Limit { input, n } => Ok(Plan::Limit {
            input: Box::new(reorder_joins(db, catalog, *input)?),
            n,
        }),
    }
}

/// Reorder *inside* a chain leaf. A leaf can itself be a `Join` when
/// [`flatten`] kept it intact (its residual is not boolean-shaped and
/// must not be re-evaluated elsewhere); re-entering [`reorder_joins`] on
/// that node would flatten it to a single leaf again and recurse
/// forever, so only its inputs are reordered.
fn reorder_leaf(db: &Database, catalog: &StatsCatalog, leaf: Plan) -> Result<Plan> {
    match leaf {
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => Ok(Plan::Join {
            left: Box::new(reorder_joins(db, catalog, *left)?),
            right: Box::new(reorder_joins(db, catalog, *right)?),
            on,
            residual,
        }),
        other => reorder_joins(db, catalog, other),
    }
}

fn reorder_chain(db: &Database, catalog: &StatsCatalog, plan: Plan) -> Result<Plan> {
    let mut chain = Chain {
        leaves: Vec::new(),
        offsets: Vec::new(),
        arities: Vec::new(),
        eqs: Vec::new(),
        preds: Vec::new(),
        total: 0,
    };
    chain.total = flatten(db, plan, 0, &mut chain)?;

    // Reorder inside each leaf first (nested chains under e.g. a distinct).
    for leaf in &mut chain.leaves {
        let taken = std::mem::replace(leaf, Plan::unit());
        *leaf = reorder_leaf(db, catalog, taken)?;
    }
    let n = chain.leaves.len();
    if n < 2 {
        return Ok(chain
            .leaves
            .pop()
            .expect("join chain has at least one leaf"));
    }

    let ests: Vec<RelEstimate> = chain.leaves.iter().map(|l| estimate(catalog, l)).collect();

    // Map a global column to its owning leaf and local position.
    let owner = |g: usize| -> (usize, usize) {
        for i in (0..n).rev() {
            if g >= chain.offsets[i] {
                return (i, g - chain.offsets[i]);
            }
        }
        unreachable!("column before first offset")
    };

    // --- greedy ordering ---------------------------------------------------
    // Score of joining `cand` onto an accumulator covering `placed` with
    // `acc_rows` estimated rows: estimated output cardinality over the
    // available equality edges, discounted when the executor can turn
    // the join into index probes. Shared by the greedy search and the
    // whole-order costing below so the two are never inconsistent.
    let step_score = |placed: &[bool], acc_rows: f64, cand: usize| -> (f64, bool) {
        let mut sel = 1.0f64;
        let mut join_cols: Vec<usize> = Vec::new();
        for &(a, b) in &chain.eqs {
            let (oa, ca) = owner(a);
            let (ob, cb) = owner(b);
            let (acc_side, cand_col) = if placed[oa] && ob == cand {
                (a, cb)
            } else if placed[ob] && oa == cand {
                (b, ca)
            } else {
                continue;
            };
            let (acc_owner, acc_local) = owner(acc_side);
            let d_acc = ests[acc_owner]
                .distinct
                .get(acc_local)
                .copied()
                .unwrap_or(ests[acc_owner].rows);
            let d_cand = ests[cand]
                .distinct
                .get(cand_col)
                .copied()
                .unwrap_or(ests[cand].rows);
            sel /= d_acc.max(d_cand).max(1.0);
            join_cols.push(cand_col);
        }
        let connected = !join_cols.is_empty();
        join_cols.sort_unstable();
        join_cols.dedup();
        let mut score = acc_rows * ests[cand].rows * sel;
        if connected && index_probeable(db, &chain.leaves[cand], &join_cols) {
            // The executor can turn this join into index probes.
            score *= 0.9;
        }
        (score, connected)
    };

    let mut placed = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // Start with the smallest leaf (ties: original order).
    let first = (0..n)
        .min_by(|&a, &b| {
            ests[a]
                .rows
                .partial_cmp(&ests[b].rows)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        })
        .expect("n >= 2");
    placed[first] = true;
    order.push(first);
    let mut acc_rows = ests[first].rows;

    while order.len() < n {
        // Candidate score: estimated rows after joining the accumulator
        // with the candidate over the available equality edges.
        let mut best: Option<(f64, usize)> = None;
        let connected_exists = (0..n).any(|i| {
            !placed[i]
                && chain.eqs.iter().any(|&(a, b)| {
                    let (oa, _) = owner(a);
                    let (ob, _) = owner(b);
                    (placed[oa] && ob == i) || (placed[ob] && oa == i)
                })
        });
        for cand in 0..n {
            if placed[cand] {
                continue;
            }
            let (score, connected) = step_score(&placed, acc_rows, cand);
            if connected_exists && !connected {
                continue; // never introduce a cross product early
            }
            match best {
                Some((bs, bi)) if bs < score || (bs == score && bi < cand) => {}
                _ => best = Some((score, cand)),
            }
        }
        let (score, next) = best.expect("unplaced leaf exists");
        placed[next] = true;
        order.push(next);
        acc_rows = score.max(1.0);
    }

    // --- keep the written order unless the reorder is strictly cheaper ----
    // The greedy search minimizes each step locally; it can land on an
    // order that is no cheaper than the one the query was written in —
    // and a changed order is not free: the restoring projection rebuilds
    // every output row, and the later column-pruning pass physically
    // re-materializes any `Values` leaves (the Datalog temp tables) the
    // projection pushes into. Cost both orders with the same per-step
    // metric and charge the rewrite those two costs explicitly; on a tie
    // the written order wins (the `qj3_first` regression: a chain whose
    // selective subgoal was already written first kept being rewritten).
    let cost_of = |order: &[usize]| -> (f64, f64) {
        let mut placed = vec![false; n];
        placed[order[0]] = true;
        let mut acc = ests[order[0]].rows;
        let mut total = 0.0;
        for &cand in &order[1..] {
            let (score, _) = step_score(&placed, acc, cand);
            total += score;
            acc = score.max(1.0);
            placed[cand] = true;
        }
        (total, acc)
    };
    /// Per-output-row cost of the restoring projection relative to
    /// producing a join row (a projection clone is far cheaper than a
    /// probe + concat).
    const PROJECTION_COST_PER_ROW: f64 = 0.05;
    /// Per-row cost of re-materializing a `Values` leaf when column
    /// pruning pushes the restoring projection into it.
    const VALUES_REMAT_COST_PER_ROW: f64 = 1.0;
    let written: Vec<usize> = (0..n).collect();
    let order = if order == written {
        order
    } else {
        let (greedy_cost, greedy_out) = cost_of(&order);
        let (written_cost, _) = cost_of(&written);
        let remat: f64 = chain.leaves.iter().map(|l| values_rows(l) as f64).sum();
        let penalty = PROJECTION_COST_PER_ROW * greedy_out + VALUES_REMAT_COST_PER_ROW * remat;
        if greedy_cost + penalty < written_cost {
            order
        } else {
            written
        }
    };

    // --- rebuild left-deep -------------------------------------------------
    // Global column -> position in the accumulator output.
    let mut pos: Vec<Option<usize>> = vec![None; chain.total];
    let mut remaining_eqs = chain.eqs.clone();
    let mut remaining_preds = chain.preds.clone();
    let mut acc: Option<Plan> = None;
    let mut acc_arity = 0usize;

    // Each leaf is consumed exactly once (order is a permutation): take
    // the leaves out of the chain so they move instead of cloning
    // materialized rows (`owner` keeps borrowing chain.offsets).
    let mut leaves = std::mem::take(&mut chain.leaves);
    for &leaf_idx in &order {
        let leaf = std::mem::replace(&mut leaves[leaf_idx], Plan::unit());
        let arity = chain.arities[leaf_idx];
        let offset = chain.offsets[leaf_idx];
        match acc {
            None => {
                for c in 0..arity {
                    pos[offset + c] = Some(c);
                }
                acc = Some(leaf);
                acc_arity = arity;
            }
            Some(prev) => {
                // Every equality edge with one endpoint placed and the
                // other in this leaf becomes a hash key.
                let mut on: Vec<(usize, usize)> = Vec::new();
                let mut intra: Vec<(usize, usize)> = Vec::new();
                remaining_eqs.retain(|&(a, b)| {
                    let (oa, ca) = owner(a);
                    let (ob, cb) = owner(b);
                    if oa == leaf_idx && ob == leaf_idx {
                        intra.push((ca, cb));
                        false
                    } else if ob == leaf_idx {
                        if let Some(p) = pos[a] {
                            on.push((p, cb));
                            false
                        } else {
                            true
                        }
                    } else if oa == leaf_idx {
                        if let Some(p) = pos[b] {
                            on.push((p, ca));
                            false
                        } else {
                            true
                        }
                    } else {
                        true
                    }
                });
                on.sort_unstable();
                on.dedup();
                // Equalities between two columns of the same leaf become a
                // selection on the leaf itself.
                let leaf = if intra.is_empty() {
                    leaf
                } else {
                    let conj: Vec<Expr> =
                        intra.iter().map(|&(a, b)| Expr::col_eq_col(a, b)).collect();
                    leaf.select(join_and(conj))
                };
                for c in 0..arity {
                    pos[offset + c] = Some(acc_arity + c);
                }
                acc = Some(Plan::Join {
                    left: Box::new(prev),
                    right: Box::new(leaf),
                    on,
                    residual: None,
                });
                acc_arity += arity;
            }
        }
        // Attach residual predicates whose columns are all available.
        let mut attach: Vec<Expr> = Vec::new();
        remaining_preds.retain(|p| {
            if cols_of(p).iter().all(|&c| pos[c].is_some()) {
                attach.push(p.remap_cols(&|c| pos[c].expect("checked")));
                false
            } else {
                true
            }
        });
        if !attach.is_empty() {
            acc = Some(
                acc.take()
                    .expect("accumulator built")
                    .select(join_and(attach)),
            );
        }
    }
    debug_assert!(remaining_eqs.is_empty(), "unplaced equality edges");
    debug_assert!(remaining_preds.is_empty(), "unplaced residual predicates");

    let acc = acc.expect("n >= 2 leaves placed");
    // Restore original column order.
    let exprs: Vec<Expr> = (0..chain.total)
        .map(|g| Expr::Col(pos[g].expect("all columns placed")))
        .collect();
    let identity = exprs
        .iter()
        .enumerate()
        .all(|(i, e)| matches!(e, Expr::Col(c) if *c == i));
    Ok(if identity { acc } else { acc.project(exprs) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::row;
    use crate::row::Row;
    use crate::schema::TableSchema;

    /// Big `V`, small `Probe`, medium keyed `R` — enough skew that greedy
    /// ordering matters.
    fn db() -> Database {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid", "s"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..400i64 {
            v.insert(row![i % 20, i % 100, if i % 2 == 0 { "+" } else { "-" }])
                .unwrap();
        }
        let r = db
            .create_table(TableSchema::with_key("R", &["tid", "val"]))
            .unwrap();
        for i in 0..100i64 {
            r.insert(row![i, format!("v{i}").as_str()]).unwrap();
        }
        let probe = db
            .create_table(TableSchema::keyless("Probe", &["w"]))
            .unwrap();
        probe.insert(row![3]).unwrap();
        probe.insert(row![7]).unwrap();
        db
    }

    fn assert_equivalent(db: &Database, original: &Plan, rewritten: &Plan) {
        let mut a = execute(db, original).unwrap();
        let mut b = execute(db, rewritten).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "reorder changed semantics");
    }

    #[test]
    fn big_join_small_gets_swapped() {
        let db = db();
        let catalog = StatsCatalog::snapshot(&db);
        // V ⋈ Probe written big-first; greedy starts from Probe.
        let original = Plan::scan("V").join(Plan::scan("Probe"), vec![(0, 0)]);
        let reordered = reorder_joins(&db, &catalog, original.clone()).unwrap();
        // Output column order restored by a projection.
        let Plan::Projection { input, .. } = &reordered else {
            panic!("expected restoring projection, got {reordered:?}");
        };
        let Plan::Join { left, .. } = input.as_ref() else {
            panic!("expected join, got {input:?}");
        };
        assert_eq!(left.as_ref(), &Plan::scan("Probe"));
        assert_equivalent(&db, &original, &reordered);
    }

    #[test]
    fn three_way_chain_starts_small_and_follows_edges() {
        let db = db();
        let catalog = StatsCatalog::snapshot(&db);
        // (V ⋈ R) ⋈ Probe — the greedy order should be Probe, V (indexed
        // on wid), then R.
        let original = Plan::scan("V")
            .join(Plan::scan("R"), vec![(1, 0)])
            .join(Plan::scan("Probe"), vec![(0, 0)]);
        let reordered = reorder_joins(&db, &catalog, original.clone()).unwrap();
        fn leftmost(p: &Plan) -> &Plan {
            match p {
                Plan::Join { left, .. } => leftmost(left),
                Plan::Projection { input, .. } | Plan::Selection { input, .. } => leftmost(input),
                other => other,
            }
        }
        assert_eq!(leftmost(&reordered), &Plan::scan("Probe"));
        assert_equivalent(&db, &original, &reordered);
    }

    #[test]
    fn residuals_and_cross_joins_survive() {
        let db = db();
        let catalog = StatsCatalog::snapshot(&db);
        let original = Plan::scan("Probe").join_where(
            Plan::scan("R"),
            vec![],
            Expr::cmp(crate::expr::CmpOp::Lt, Expr::Col(0), Expr::Col(1)),
        );
        let reordered = reorder_joins(&db, &catalog, original.clone()).unwrap();
        assert_equivalent(&db, &original, &reordered);
    }

    #[test]
    fn reorder_is_deterministic() {
        let db = db();
        let catalog = StatsCatalog::snapshot(&db);
        let original = Plan::scan("V")
            .join(Plan::scan("R"), vec![(1, 0)])
            .join(Plan::scan("Probe"), vec![(0, 0)]);
        let a = reorder_joins(&db, &catalog, original.clone()).unwrap();
        let b = reorder_joins(&db, &catalog, original).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn qj3_first_written_order_is_kept_when_not_strictly_cheaper() {
        // The opt_onoff `qj3_first` regression: the selective subgoal is
        // *already written first* and the remaining wide subgoals tie on
        // estimated cost. The greedy search used to rewrite the chain
        // anyway (starting from whichever wide leaf estimated smaller),
        // paying a restoring projection and — because Datalog temp
        // tables are `Values` leaves — a physical re-materialization in
        // the pruning pass, for a plan that was not strictly cheaper.
        // The written order must now survive untouched.
        let db = db();
        let catalog = StatsCatalog::snapshot(&db);
        let wide1: Vec<Row> = (0..90i64).map(|i| row![i % 30, i]).collect();
        let wide2: Vec<Row> = (0..80i64).map(|i| row![i % 30, i + 1000]).collect();
        let original = Plan::Values {
            arity: 2,
            rows: wide1,
        }
        .join(
            Plan::Values {
                arity: 2,
                rows: wide2,
            },
            vec![(0, 0)],
        );
        let reordered = reorder_joins(&db, &catalog, original.clone()).unwrap();
        assert_eq!(
            reordered, original,
            "written order must be kept when the reorder is not strictly cheaper"
        );
        assert_equivalent(&db, &original, &reordered);
    }

    #[test]
    fn equal_cost_scan_chains_keep_the_written_order() {
        // Two keyless scans with no usable index: both directions of the
        // join cost the same, so the rewrite (with its restoring
        // projection) must not happen even though the right leaf has the
        // smaller estimate.
        let mut db = Database::new();
        let big = db
            .create_table(TableSchema::keyless("Big", &["k", "x"]))
            .unwrap();
        for i in 0..100i64 {
            big.insert(row![i % 25, i]).unwrap();
        }
        let small = db
            .create_table(TableSchema::keyless("Small", &["k", "y"]))
            .unwrap();
        for i in 0..80i64 {
            small.insert(row![i % 25, i]).unwrap();
        }
        let catalog = StatsCatalog::snapshot(&db);
        let original = Plan::scan("Big").join(Plan::scan("Small"), vec![(0, 0)]);
        let reordered = reorder_joins(&db, &catalog, original.clone()).unwrap();
        assert_eq!(reordered, original);
    }

    #[test]
    fn nested_chains_under_barriers_reorder_too() {
        let db = db();
        let catalog = StatsCatalog::snapshot(&db);
        let inner = Plan::scan("V")
            .join(Plan::scan("Probe"), vec![(0, 0)])
            .distinct();
        let reordered = reorder_joins(&db, &catalog, inner.clone()).unwrap();
        let Plan::Distinct { input } = &reordered else {
            panic!("expected distinct, got {reordered:?}");
        };
        assert!(matches!(input.as_ref(), Plan::Projection { .. }));
        assert_equivalent(&db, &inner, &reordered);
    }
}
