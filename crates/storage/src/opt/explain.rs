//! `EXPLAIN`: a stable, deterministic rendering of a physical plan tree,
//! annotated with estimated cardinalities, the access path the executor
//! will pick (primary-key lookup, secondary-index probe, or scan), and
//! whether each operator pipelines rows or materializes its input under
//! the streaming executor ([`crate::exec::stream`]).
//!
//! Estimates are computed in **one bottom-up pass** shared with the
//! rendering ([`EstTree`]): every node — in particular every sampled
//! `Values` leaf — is estimated exactly once, so rendering is linear in
//! plan size instead of quadratic.

use super::stats::{combine, RelEstimate, StatsCatalog};
use crate::catalog::Database;
use crate::exec::{
    access_path_note, selection_kernel_label, spill_points, BATCH_SIZE, SPILL_PARTITIONS,
};
use crate::plan::{Agg, Plan};

/// Render a plan as an indented tree. Deterministic: node order follows
/// the plan structure, estimates are integers, and no hash-map iteration
/// is involved.
pub fn render(db: &Database, catalog: &StatsCatalog, plan: &Plan) -> String {
    render_with_budget(db, catalog, plan, None)
}

/// [`render`] under a per-query memory budget: every materialization
/// point (sort, aggregate, distinct, hash-join build) additionally
/// carries a `[spill budget=… partitions=…]` tag showing its share of
/// the budget and the partition fan-out a spill would use. With `None`
/// the output is byte-identical to [`render`].
pub fn render_with_budget(
    db: &Database,
    catalog: &StatsCatalog,
    plan: &Plan,
    budget: Option<usize>,
) -> String {
    let est = EstTree::build(catalog, plan);
    let spill_tag = budget
        .map(|b| {
            let per_point = b / spill_points(plan).max(1);
            format!(" [spill budget={per_point} partitions={SPILL_PARTITIONS}]")
        })
        .unwrap_or_default();
    let mut out = String::new();
    render_node(db, plan, &est, 0, &spill_tag, &mut out);
    out
}

/// Render with a fresh statistics snapshot.
pub fn render_with_snapshot(db: &Database, plan: &Plan) -> String {
    render(db, &StatsCatalog::snapshot(db), plan)
}

/// Per-node estimates memoized in plan shape: children mirror
/// [`Plan::children`] order.
struct EstTree {
    est: RelEstimate,
    children: Vec<EstTree>,
}

impl EstTree {
    fn build(catalog: &StatsCatalog, plan: &Plan) -> EstTree {
        let children: Vec<EstTree> = plan
            .children()
            .into_iter()
            .map(|c| EstTree::build(catalog, c))
            .collect();
        let child_ests: Vec<RelEstimate> = children.iter().map(|c| c.est.clone()).collect();
        EstTree {
            est: combine(catalog, plan, &child_ests),
            children,
        }
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn est_note(est: &EstTree) -> String {
    format!(" (est={})", est.est.rows.round().max(0.0) as u64)
}

/// How the streaming executor evaluates this operator: forwarding rows
/// one at a time, or consuming its whole input first. Joins and
/// anti-joins pipeline their probe (left) side while the build (right)
/// side is materialized into the hash table.
fn exec_note(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. }
        | Plan::Values { .. }
        | Plan::Selection { .. }
        | Plan::Projection { .. }
        | Plan::Union { .. }
        | Plan::Distinct { .. }
        | Plan::Limit { .. } => " [pipeline]",
        Plan::Join { .. } | Plan::AntiJoin { .. } => " [pipeline; build=right]",
        Plan::Aggregate { .. } | Plan::Sort { .. } => " [materialize]",
    }
}

/// The vectorization annotation: pipelined operators exchange chunks of
/// up to [`BATCH_SIZE`] rows. Aggregate and Sort consume chunks but
/// emit materialized output, so they carry no tag of their own; the
/// `Selection` kernel annotation is handled in [`render_node`] because
/// it depends on the access path (an index-served selection runs no
/// filter kernel at all).
fn vectorized_note(plan: &Plan) -> String {
    match plan {
        Plan::Scan { .. }
        | Plan::Values { .. }
        | Plan::Selection { .. }
        | Plan::Projection { .. }
        | Plan::Union { .. }
        | Plan::Distinct { .. }
        | Plan::Limit { .. }
        | Plan::Join { .. }
        | Plan::AntiJoin { .. } => format!(" [vectorized batch={BATCH_SIZE}]"),
        Plan::Aggregate { .. } | Plan::Sort { .. } => String::new(),
    }
}

fn on_note(on: &[(usize, usize)]) -> String {
    if on.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = on.iter().map(|(l, r)| format!("#{l}=#{r}")).collect();
    format!(" on [{}]", pairs.join(", "))
}

/// The `[spill …]` tag for this node, or empty when it is not a
/// materialization point (pipelined operators never spill).
fn spill_note<'s>(plan: &Plan, tag: &'s str) -> &'s str {
    match plan {
        Plan::Sort { .. } | Plan::Aggregate { .. } | Plan::Distinct { .. } => tag,
        Plan::Join { on, .. } if !on.is_empty() => tag,
        _ => "",
    }
}

fn render_node(
    db: &Database,
    plan: &Plan,
    est: &EstTree,
    depth: usize,
    spill_tag: &str,
    out: &mut String,
) {
    indent(depth, out);
    let exec = format!(
        "{}{}{}",
        exec_note(plan),
        vectorized_note(plan),
        spill_note(plan, spill_tag)
    );
    match plan {
        Plan::Scan { table } => {
            let rows = db.table(table).map(|t| t.len()).unwrap_or(0);
            out.push_str(&format!("Scan {table} (rows={rows}){exec}\n"));
        }
        Plan::Selection { input, predicate } => {
            let access = match input.as_ref() {
                Plan::Scan { table } => access_path_note(db, table, predicate),
                _ => None,
            };
            // The filter kernel only runs when no index serves the
            // selection — an access-path hit fetches pre-filtered rows
            // and never evaluates the kernel, so report one or the
            // other, not both.
            let exec = match &access {
                Some(_) => exec.clone(),
                None => {
                    let kernel =
                        selection_kernel_label(predicate).unwrap_or_else(|| "rowwise".to_string());
                    format!(
                        "{} [vectorized batch={BATCH_SIZE} kernel={kernel}]",
                        exec_note(plan)
                    )
                }
            };
            let access = access.map(|a| format!(" [{a}]")).unwrap_or_default();
            out.push_str(&format!(
                "Select {predicate}{access}{}{exec}\n",
                est_note(est)
            ));
            render_node(db, input, &est.children[0], depth + 1, spill_tag, out);
        }
        Plan::Projection { input, exprs } => {
            let cols: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
            out.push_str(&format!(
                "Project [{}]{}{exec}\n",
                cols.join(", "),
                est_note(est)
            ));
            render_node(db, input, &est.children[0], depth + 1, spill_tag, out);
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let res = residual
                .as_ref()
                .map(|r| format!(" where {r}"))
                .unwrap_or_default();
            let probe = join_probe_note(db, right, on);
            out.push_str(&format!(
                "Join{}{res}{probe}{}{exec}\n",
                on_note(on),
                est_note(est)
            ));
            render_node(db, left, &est.children[0], depth + 1, spill_tag, out);
            render_node(db, right, &est.children[1], depth + 1, spill_tag, out);
        }
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let res = residual
                .as_ref()
                .map(|r| format!(" where {r}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "AntiJoin{}{res}{}{exec}\n",
                on_note(on),
                est_note(est)
            ));
            render_node(db, left, &est.children[0], depth + 1, spill_tag, out);
            render_node(db, right, &est.children[1], depth + 1, spill_tag, out);
        }
        Plan::Distinct { input } => {
            out.push_str(&format!("Distinct{}{exec}\n", est_note(est)));
            render_node(db, input, &est.children[0], depth + 1, spill_tag, out);
        }
        Plan::Union { inputs } => {
            out.push_str(&format!("Union{}{exec}\n", est_note(est)));
            for (p, e) in inputs.iter().zip(&est.children) {
                render_node(db, p, e, depth + 1, spill_tag, out);
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let aggs: Vec<String> = aggs
                .iter()
                .map(|a| match a {
                    Agg::Count => "count".to_string(),
                    Agg::Max(c) => format!("max(#{c})"),
                    Agg::Min(c) => format!("min(#{c})"),
                })
                .collect();
            let groups: Vec<String> = group_by.iter().map(|g| format!("#{g}")).collect();
            out.push_str(&format!(
                "Aggregate group=[{}] aggs=[{}]{}{exec}\n",
                groups.join(", "),
                aggs.join(", "),
                est_note(est)
            ));
            render_node(db, input, &est.children[0], depth + 1, spill_tag, out);
        }
        Plan::Values { arity, rows } => {
            out.push_str(&format!("Values {}x{arity}{exec}\n", rows.len()));
        }
        Plan::Sort { input, by } => {
            let by: Vec<String> = by.iter().map(|c| format!("#{c}")).collect();
            out.push_str(&format!("Sort by [{}]{exec}\n", by.join(", ")));
            render_node(db, input, &est.children[0], depth + 1, spill_tag, out);
        }
        Plan::Limit { input, n } => {
            out.push_str(&format!("Limit {n}{exec}\n"));
            render_node(db, input, &est.children[0], depth + 1, spill_tag, out);
        }
    }
}

/// Annotation when the executor's index-nested-loop join can probe the
/// right side of a join through an index instead of materializing it.
fn join_probe_note(db: &Database, right: &Plan, on: &[(usize, usize)]) -> String {
    if on.is_empty() {
        return String::new();
    }
    let table = match right {
        Plan::Scan { table } => table,
        Plan::Selection { input, .. } => match input.as_ref() {
            Plan::Scan { table } => table,
            _ => return String::new(),
        },
        _ => return String::new(),
    };
    let Ok(t) = db.table(table) else {
        return String::new();
    };
    let rcols: Vec<usize> = on.iter().map(|&(_, rc)| rc).collect();
    if t.schema().key_column() == Some(0) && rcols == [0] {
        return format!(" [probe {table}.pk]");
    }
    if let Some((name, _)) = t.find_index_for(&rcols) {
        return format!(" [probe {table}.{name}]");
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::row;
    use crate::schema::TableSchema;

    fn db() -> Database {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid", "s"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..50i64 {
            v.insert(row![i % 5, i, "+"]).unwrap();
        }
        let r = db
            .create_table(TableSchema::with_key("R", &["tid", "val"]))
            .unwrap();
        r.insert(row![1, "x"]).unwrap();
        db
    }

    #[test]
    fn renders_tree_with_estimates() {
        let db = db();
        let plan = Plan::scan("V")
            .select(Expr::col_eq_lit(0, 3i64))
            .join(Plan::scan("R"), vec![(1, 0)])
            .project_cols(&[1, 4]);
        let text = render_with_snapshot(&db, &plan);
        assert!(text.contains("Project"), "{text}");
        assert!(text.contains("Join on [#1=#0]"), "{text}");
        assert!(text.contains("Scan V (rows=50)"), "{text}");
        assert!(text.contains("est="), "{text}");
        // Indentation encodes the tree.
        assert!(text.lines().any(|l| l.starts_with("    ")), "{text}");
    }

    #[test]
    fn annotates_index_and_pk_access() {
        let db = db();
        // Selection pinning the indexed column.
        let sel = Plan::scan("V").select(Expr::col_eq_lit(0, 3i64));
        let text = render_with_snapshot(&db, &sel);
        assert!(text.contains("index"), "{text}");
        // Join probing the primary key.
        let join = Plan::scan("V").join(Plan::scan("R"), vec![(1, 0)]);
        let text = render_with_snapshot(&db, &join);
        assert!(text.contains("[probe R.pk]"), "{text}");
        // Join probing a secondary index.
        let join = Plan::Values {
            arity: 1,
            rows: vec![row![1]],
        }
        .join(Plan::scan("V"), vec![(0, 0)]);
        let text = render_with_snapshot(&db, &join);
        assert!(text.contains("[probe V.by_wid]"), "{text}");
    }

    #[test]
    fn annotates_pipeline_vs_materialization() {
        let db = db();
        let plan = Plan::scan("V")
            .select(Expr::col_eq_lit(2, "+"))
            .join(Plan::scan("R"), vec![(1, 0)])
            .sort(vec![0])
            .limit(3);
        let text = render_with_snapshot(&db, &plan);
        assert!(text.contains("Limit 3 [pipeline]"), "{text}");
        assert!(text.contains("Sort by [#0] [materialize]"), "{text}");
        assert!(text.contains("[pipeline; build=right]"), "{text}");
        assert!(text.contains("Scan R (rows=1) [pipeline]"), "{text}");
        let agg = Plan::Aggregate {
            input: Box::new(Plan::scan("V")),
            group_by: vec![0],
            aggs: vec![Agg::Count],
        };
        let text = render_with_snapshot(&db, &agg);
        assert!(text.contains("[materialize]"), "{text}");
    }

    #[test]
    fn annotates_vectorized_operators_and_batch_size() {
        let db = db();
        let plan = Plan::scan("V")
            .select(Expr::col_eq_lit(1, 3i64))
            .project_cols(&[1])
            .sort(vec![0])
            .limit(3);
        let text = render_with_snapshot(&db, &plan);
        // Pipelined operators carry the batch size; the int-equality
        // selection reports its specialized kernel.
        assert!(
            text.contains("Limit 3 [pipeline] [vectorized batch=1024]"),
            "{text}"
        );
        assert!(text.contains("kernel=eq:int"), "{text}");
        // Materialization points carry no vectorized tag.
        assert!(
            !text.contains("Sort by [#0] [materialize] [vectorized"),
            "{text}"
        );
        // An AND of col-op-lit comparisons fuses into a sequence of
        // kernel passes — and the tag lists them in conjunct order.
        // (Cols 1 and 2 are not covered by any index, so no access path
        // fires.)
        let fused = Plan::scan("V").select(Expr::and(vec![
            Expr::col_eq_lit(1, 2i64),
            Expr::col_eq_lit(2, "+"),
        ]));
        let text = render_with_snapshot(&db, &fused);
        assert!(text.contains("kernel=and[eq:int,eq:str]"), "{text}");
        // Deterministic.
        assert_eq!(text, render_with_snapshot(&db, &fused));
        // A predicate the kernel compiler rejects falls back to the
        // row-wise interpreter — and says so.
        let fallback = Plan::scan("V").select(Expr::or(vec![
            Expr::col_eq_lit(1, 2i64),
            Expr::col_eq_lit(2, "+"),
        ]));
        let text = render_with_snapshot(&db, &fallback);
        assert!(text.contains("kernel=rowwise"), "{text}");
        // An AND with a non-compilable conjunct also falls back.
        let mixed = Plan::scan("V").select(Expr::and(vec![
            Expr::col_eq_lit(1, 2i64),
            Expr::col_eq_col(1, 2),
        ]));
        let text = render_with_snapshot(&db, &mixed);
        assert!(text.contains("kernel=rowwise"), "{text}");
        // An index-served selection runs no filter kernel: the access
        // note and the kernel note are mutually exclusive.
        let indexed = Plan::scan("V").select(Expr::col_eq_lit(0, 3i64));
        let text = render_with_snapshot(&db, &indexed);
        assert!(text.contains("[access=index:by_wid]"), "{text}");
        assert!(!text.contains("kernel="), "{text}");
        assert!(text.contains("[vectorized batch=1024]"), "{text}");
    }

    #[test]
    fn estimates_match_the_recursive_estimator() {
        // The memoized bottom-up pass must agree with `stats::estimate`
        // node-for-node (same formulas, evaluated once each).
        let db = db();
        let catalog = StatsCatalog::snapshot(&db);
        let plan = Plan::scan("V")
            .select(Expr::col_eq_lit(0, 3i64))
            .join(Plan::scan("R"), vec![(1, 0)])
            .distinct();
        let tree = EstTree::build(&catalog, &plan);
        fn walk(catalog: &StatsCatalog, plan: &Plan, tree: &EstTree) {
            assert_eq!(tree.est, super::super::stats::estimate(catalog, plan));
            for (c, t) in plan.children().into_iter().zip(&tree.children) {
                walk(catalog, c, t);
            }
        }
        walk(&catalog, &plan, &tree);
    }

    #[test]
    fn budget_tags_materialization_points_only() {
        let db = db();
        let plan = Plan::scan("V")
            .join(Plan::scan("R"), vec![(1, 0)])
            .distinct()
            .sort(vec![0])
            .limit(3);
        let catalog = StatsCatalog::snapshot(&db);
        // Three spill points (join build, distinct, sort): each gets a
        // third of the budget, and the fan-out is reported.
        let text = render_with_budget(&db, &catalog, &plan, Some(3 * 4096));
        assert_eq!(text.matches("[spill budget=4096 partitions=16]").count(), 3);
        assert!(
            !text
                .lines()
                .any(|l| l.contains("Limit") && l.contains("spill")),
            "{text}"
        );
        assert!(
            !text
                .lines()
                .any(|l| l.contains("Scan") && l.contains("spill")),
            "{text}"
        );
        // No budget: byte-identical to the plain rendering.
        assert_eq!(
            render_with_budget(&db, &catalog, &plan, None),
            render(&db, &catalog, &plan)
        );
    }

    #[test]
    fn output_is_deterministic() {
        let db = db();
        let plan = Plan::scan("V")
            .join(Plan::scan("R"), vec![(1, 0)])
            .distinct();
        let a = render_with_snapshot(&db, &plan);
        let b = render_with_snapshot(&db, &plan);
        assert_eq!(a, b);
    }
}
